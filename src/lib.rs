//! # optimus-maximus
//!
//! A from-scratch Rust implementation of *"To Index or Not to Index:
//! Optimizing Exact Maximum Inner Product Search"* (Abuzaid, Sethi, Bailis,
//! Zaharia — ICDE 2019), including every system the paper builds on:
//!
//! | Piece | What it is | Crate |
//! |---|---|---|
//! | Engine | request/response serving facade with pluggable backends | [`core::engine`] |
//! | BMM | hardware-efficient brute force (blocked GEMM + heap top-k) | [`core::bmm`] |
//! | MAXIMUS | the paper's clustered, bound-sorted exact index | [`core::maximus`] |
//! | OPTIMUS | the online sample-based optimizer, now the engine's planner | [`core::optimus`] |
//! | LEMP | baseline index of Teflioudi et al. (SIGMOD'15) | [`lemp`] |
//! | FEXIPRO | baseline index of Li et al. (SIGMOD'17) | [`fexipro`] |
//! | substrates | BLAS-like kernels, k-means, top-k heaps, t-tests, MF trainers | [`linalg`], [`clustering`], [`topk`], [`stats`], [`data`] |
//! | front door | std-only HTTP/1.1 serving layer: deadlines, admission control, hot swap (feature `net`, on by default) | `net` |
//!
//! ## Quickstart
//!
//! Assemble an [`Engine`](core::engine::Engine) from a model and a set of
//! backends, then serve [`QueryRequest`](core::engine::QueryRequest)s. The
//! first request at each `k` runs the OPTIMUS planner and caches the
//! winning backend; later requests reuse the decision.
//!
//! ```
//! use optimus_maximus::prelude::*;
//! use std::sync::Arc;
//!
//! // A small synthetic matrix-factorization model (users × f, items × f).
//! let model = Arc::new(synth_model(&SynthConfig {
//!     num_users: 200,
//!     num_items: 500,
//!     num_factors: 16,
//!     ..SynthConfig::default()
//! }));
//!
//! // Engine = model + registered backends (+ serving options).
//! let engine = EngineBuilder::new()
//!     .model(Arc::clone(&model))
//!     .with_default_backends()
//!     .build()?;
//!
//! // Top-5 for everyone; the planner picks the backend.
//! let all = engine.execute(&QueryRequest::top_k(5))?;
//! assert_eq!(all.results.len(), 200);
//! assert_eq!(all.results[0].len(), 5);
//!
//! // Top-3 for two specific users, excluding an already-rated item.
//! let response = engine.execute(
//!     &QueryRequest::top_k(3)
//!         .users(vec![7, 42])
//!         .exclude(ExclusionSet::from_pairs([(7usize, 10u32)])),
//! )?;
//! assert!(!response.results[0].items.contains(&10));
//!
//! // Malformed requests are typed errors, never panics.
//! assert!(engine.execute(&QueryRequest::top_k(0)).is_err());
//! # Ok::<(), MipsError>(())
//! ```
//!
//! The `examples/` directory walks through a trained movie recommender, a
//! word-embedding similarity search, and an optimizer tour across
//! contrasting workloads; `crates/bench` regenerates every table and figure
//! of the paper's evaluation (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mips_clustering as clustering;
pub use mips_core as core;
pub use mips_data as data;
pub use mips_fexipro as fexipro;
pub use mips_lemp as lemp;
pub use mips_linalg as linalg;
#[cfg(feature = "net")]
pub use mips_net as net;
pub use mips_sparse as sparse;
pub use mips_stats as stats;
pub use mips_topk as topk;

/// The most common imports, bundled.
pub mod prelude {
    pub use mips_core::engine::{
        BackendRegistry, BmmFactory, Engine, EngineBuilder, EngineOptions, ExclusionSet,
        FexiproFactory, FnFactory, LempFactory, MaximusFactory, MipsError, PreparedPlan,
        QueryRequest, QueryResponse, QueryVector, SolverFactory, SparseFactory, UserSelection,
        VectorQueryRequest,
    };
    pub use mips_core::maximus::{MaximusConfig, MaximusIndex};
    pub use mips_core::optimus::{Optimus, OptimusConfig, OptimusOutcome};
    pub use mips_core::parallel::par_query_all;
    pub use mips_core::serve::{
        LatencySnapshot, MipsServer, ResponseHandle, ServeOptions, ServerBuilder, ServerMetrics,
        ShardMetrics,
    };
    pub use mips_core::solver::{MipsSolver, Strategy};
    pub use mips_core::verify::{check_all_topk, check_user_topk};
    pub use mips_core::{BmmSolver, FexiproSolver, LempSolver, SparseSolver};
    pub use mips_data::catalog::{reference_models, ModelSpec};
    pub use mips_data::sparse::{SparseVec, SparsityStats};
    pub use mips_data::synth::{synth_model, SynthConfig};
    pub use mips_data::{MfModel, ModelError, RatingsData};
    pub use mips_fexipro::FexiproConfig;
    pub use mips_lemp::LempConfig;
    #[cfg(feature = "net")]
    pub use mips_net::{HttpServer, HttpServerBuilder, NetConfig, NetMetrics};
    pub use mips_sparse::{InvertedIndex, SparseConfig};
    pub use mips_topk::TopKList;
}
