//! # optimus-maximus
//!
//! A from-scratch Rust implementation of *"To Index or Not to Index:
//! Optimizing Exact Maximum Inner Product Search"* (Abuzaid, Sethi, Bailis,
//! Zaharia — ICDE 2019), including every system the paper builds on:
//!
//! | Piece | What it is | Crate |
//! |---|---|---|
//! | BMM | hardware-efficient brute force (blocked GEMM + heap top-k) | [`core::bmm`] |
//! | MAXIMUS | the paper's clustered, bound-sorted exact index | [`core::maximus`] |
//! | OPTIMUS | the online sample-based strategy optimizer | [`core::optimus`] |
//! | LEMP | baseline index of Teflioudi et al. (SIGMOD'15) | [`lemp`] |
//! | FEXIPRO | baseline index of Li et al. (SIGMOD'17) | [`fexipro`] |
//! | substrates | BLAS-like kernels, k-means, top-k heaps, t-tests, MF trainers | [`linalg`], [`clustering`], [`topk`], [`stats`], [`data`] |
//!
//! ## Quickstart
//!
//! ```
//! use optimus_maximus::prelude::*;
//! use std::sync::Arc;
//!
//! // A small synthetic matrix-factorization model (users × f, items × f).
//! let model = Arc::new(synth_model(&SynthConfig {
//!     num_users: 200,
//!     num_items: 500,
//!     num_factors: 16,
//!     ..SynthConfig::default()
//! }));
//!
//! // Let OPTIMUS choose between brute force and the MAXIMUS index, then
//! // serve the top-5 items for every user.
//! let optimus = Optimus::new(OptimusConfig::default());
//! let outcome = optimus.run(&model, 5, &[Strategy::Maximus(MaximusConfig::default())]);
//! println!("OPTIMUS chose {}", outcome.chosen);
//! assert_eq!(outcome.results.len(), 200);
//! assert_eq!(outcome.results[0].len(), 5);
//! ```
//!
//! The `examples/` directory walks through a trained movie recommender, a
//! word-embedding similarity search, and an optimizer tour across
//! contrasting workloads; `crates/bench` regenerates every table and figure
//! of the paper's evaluation (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mips_clustering as clustering;
pub use mips_core as core;
pub use mips_data as data;
pub use mips_fexipro as fexipro;
pub use mips_lemp as lemp;
pub use mips_linalg as linalg;
pub use mips_stats as stats;
pub use mips_topk as topk;

/// The most common imports, bundled.
pub mod prelude {
    pub use mips_core::maximus::{MaximusConfig, MaximusIndex};
    pub use mips_core::optimus::{Optimus, OptimusConfig, OptimusOutcome};
    pub use mips_core::parallel::par_query_all;
    pub use mips_core::solver::{MipsSolver, Strategy};
    pub use mips_core::verify::{check_all_topk, check_user_topk};
    pub use mips_core::{BmmSolver, FexiproSolver, LempSolver};
    pub use mips_data::catalog::{reference_models, ModelSpec};
    pub use mips_data::synth::{synth_model, SynthConfig};
    pub use mips_data::{MfModel, ModelError, RatingsData};
    pub use mips_fexipro::FexiproConfig;
    pub use mips_lemp::LempConfig;
    pub use mips_topk::TopKList;
}
