//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal benchmark harness with criterion's API shape: `criterion_group!`
//! / `criterion_main!`, benchmark groups, per-input benchmarks with IDs and
//! throughput annotations, and an adaptive timing loop. Output is a
//! plain-text line per benchmark (median of the sample means) instead of
//! criterion's full statistical report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration annotation used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id that is only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    mean_seconds: f64,
}

impl Bencher {
    /// Times `routine`, adaptively choosing the per-sample iteration count
    /// so each sample runs long enough for the clock to resolve.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up and iteration-count calibration: grow until one batch
        // takes >= 2 ms (or a growth cap is hit).
        let mut iters: u64 = 1;
        let per_iter;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                per_iter = elapsed.as_secs_f64() / iters as f64;
                break;
            }
            iters *= 4;
        }

        // Measurement: `samples` batches, mean of batch means.
        let mut total = 0.0;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            total += start.elapsed().as_secs_f64() / iters as f64;
        }
        self.mean_seconds = if self.samples > 0 {
            total / self.samples as f64
        } else {
            per_iter
        };
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn report(group: &str, id: &str, mean_seconds: f64, throughput: Option<Throughput>) {
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean_seconds > 0.0 => {
            format!("  ({:.3} Melem/s)", n as f64 / mean_seconds / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean_seconds > 0.0 => {
            format!(
                "  ({:.3} MiB/s)",
                n as f64 / mean_seconds / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{name:<50} time: {}{}", fmt_time(mean_seconds), rate);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `routine` with a shared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean_seconds: 0.0,
        };
        routine(&mut bencher, input);
        report(&self.name, &id.id, bencher.mean_seconds, self.throughput);
        self
    }

    /// Benchmarks `routine`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean_seconds: 0.0,
        };
        routine(&mut bencher);
        report(&self.name, &id.id, bencher.mean_seconds, self.throughput);
        self
    }

    /// Ends the group (report lines are printed eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            samples: 10,
            mean_seconds: 0.0,
        };
        routine(&mut bencher);
        report("", &id.id, bencher.mean_seconds, None);
        self
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
