//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Every acquire, release, and notify is a scheduler yield point. Data is
//! stored behind uncontended `std` primitives (the model-level ownership
//! flags plus the single-active-thread discipline guarantee they are
//! never blocked on), so this module needs no `unsafe`.
//!
//! Lock results are always `Ok`: the model never poisons — any panic
//! aborts the whole execution and is reported as a model failure instead.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{
    LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};
use std::time::Duration;

use crate::scheduler::{Blocked, Scheduler};

pub mod atomic;

/// A mutual-exclusion primitive checked by the model scheduler.
pub struct Mutex<T> {
    id: OnceLock<u64>,
    /// Model-level ownership flag; `data` is locked only by the model
    /// owner, so the std mutex below is never contended.
    held: StdMutex<bool>,
    data: StdMutex<T>,
}

/// RAII guard for [`Mutex`]; releasing is a scheduler yield point.
pub struct MutexGuard<'a, T> {
    data: Option<StdMutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new model-checked mutex.
    pub const fn new(t: T) -> Self {
        Mutex {
            id: OnceLock::new(),
            held: StdMutex::new(false),
            data: StdMutex::new(t),
        }
    }

    fn id(&self, sched: &Scheduler) -> u64 {
        *self.id.get_or_init(|| sched.resource_id())
    }

    /// Acquires the mutex, yielding to the scheduler before the attempt
    /// and blocking (in the model) while another task holds it.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (sched, me) = Scheduler::current();
        let id = self.id(&sched);
        sched.switch(me, Blocked::Ready);
        loop {
            {
                let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
                if !*held {
                    *held = true;
                    break;
                }
            }
            sched.switch(me, Blocked::Mutex(id));
        }
        Ok(MutexGuard {
            data: Some(self.data.lock().unwrap_or_else(|e| e.into_inner())),
            lock: self,
        })
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner().unwrap_or_else(|e| e.into_inner()))
    }

    fn release(&self) {
        *self.held.lock().unwrap_or_else(|e| e.into_inner()) = false;
        if let Some((sched, me)) = Scheduler::try_current() {
            let id = self.id(&sched);
            sched.unblock_where(|b| b == Blocked::Mutex(id));
            sched.yield_point(me);
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard data taken")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().expect("guard data taken")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.data.take());
        self.lock.release();
    }
}

/// The result of a timed condvar wait (the std type cannot be
/// constructed outside `std`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the model's timeout rule fired
    /// (nothing else could make progress) rather than by notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable checked by the model scheduler.
///
/// Releasing the mutex and parking happen atomically with respect to
/// scheduling, exactly like the std contract, so a notify between the
/// two cannot be lost *by the model itself* — lost wakeups the checker
/// reports are real protocol bugs.
pub struct Condvar {
    id: OnceLock<u64>,
}

impl Condvar {
    /// Creates a new model-checked condition variable.
    pub const fn new() -> Self {
        Condvar {
            id: OnceLock::new(),
        }
    }

    fn id(&self, sched: &Scheduler) -> u64 {
        *self.id.get_or_init(|| sched.resource_id())
    }

    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        let (sched, me) = Scheduler::current();
        let cv = self.id(&sched);
        let lock = guard.lock;
        let mid = lock.id(&sched);
        // Dismantle the guard by hand: drop the data guard, defuse the
        // RAII release (we release + park atomically below instead).
        let mut guard = guard;
        drop(guard.data.take());
        std::mem::forget(guard);
        // Release the mutex and park in one scheduler step: no other
        // task can run between the two, so no notify slips through.
        *lock.held.lock().unwrap_or_else(|e| e.into_inner()) = false;
        sched.unblock_where(|b| b == Blocked::Mutex(mid));
        sched.switch(me, Blocked::Condvar { cv, timed });
        let timed_out = sched.take_timed_out(me);
        // Reacquire.
        loop {
            {
                let mut held = lock.held.lock().unwrap_or_else(|e| e.into_inner());
                if !*held {
                    *held = true;
                    break;
                }
            }
            sched.switch(me, Blocked::Mutex(mid));
        }
        (
            MutexGuard {
                data: Some(lock.data.lock().unwrap_or_else(|e| e.into_inner())),
                lock,
            },
            timed_out,
        )
    }

    /// Parks the calling task until notified, releasing the mutex while
    /// parked and reacquiring it before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        Ok(self.wait_inner(guard, false).0)
    }

    /// Like [`Condvar::wait`], but the park may also end via the model's
    /// maximal-progress timeout rule; the duration itself is ignored.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (guard, timed_out) = self.wait_inner(guard, true);
        Ok((guard, WaitTimeoutResult { timed_out }))
    }

    /// Wakes every task parked on this condvar (they still race to
    /// reacquire the mutex, like std).
    pub fn notify_all(&self) {
        let (sched, me) = Scheduler::current();
        let cv = self.id(&sched);
        sched.unblock_where(|b| matches!(b, Blocked::Condvar { cv: c, .. } if c == cv));
        sched.switch(me, Blocked::Ready);
    }

    /// Wakes the lowest-id task parked on this condvar (deterministic
    /// approximation of the std "at least one" contract).
    pub fn notify_one(&self) {
        let (sched, me) = Scheduler::current();
        let cv = self.id(&sched);
        sched.unblock_first(|b| matches!(b, Blocked::Condvar { cv: c, .. } if c == cv));
        sched.switch(me, Blocked::Ready);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Model-level reader/writer accounting for [`RwLock`].
#[derive(Default)]
struct RwState {
    readers: usize,
    writer: bool,
}

/// A reader-writer lock checked by the model scheduler.
pub struct RwLock<T> {
    id: OnceLock<u64>,
    rw: StdMutex<RwState>,
    data: StdRwLock<T>,
}

/// RAII shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    data: Option<StdRwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

/// RAII exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    data: Option<StdRwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new model-checked reader-writer lock.
    pub const fn new(t: T) -> Self {
        RwLock {
            id: OnceLock::new(),
            rw: StdMutex::new(RwState {
                readers: 0,
                writer: false,
            }),
            data: StdRwLock::new(t),
        }
    }

    fn id(&self, sched: &Scheduler) -> u64 {
        *self.id.get_or_init(|| sched.resource_id())
    }

    /// Acquires shared access.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        let (sched, me) = Scheduler::current();
        let id = self.id(&sched);
        sched.switch(me, Blocked::Ready);
        loop {
            {
                let mut rw = self.rw.lock().unwrap_or_else(|e| e.into_inner());
                if !rw.writer {
                    rw.readers += 1;
                    break;
                }
            }
            sched.switch(me, Blocked::RwRead(id));
        }
        Ok(RwLockReadGuard {
            data: Some(self.data.read().unwrap_or_else(|e| e.into_inner())),
            lock: self,
        })
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        let (sched, me) = Scheduler::current();
        let id = self.id(&sched);
        sched.switch(me, Blocked::Ready);
        loop {
            {
                let mut rw = self.rw.lock().unwrap_or_else(|e| e.into_inner());
                if !rw.writer && rw.readers == 0 {
                    rw.writer = true;
                    break;
                }
            }
            sched.switch(me, Blocked::RwWrite(id));
        }
        Ok(RwLockWriteGuard {
            data: Some(self.data.write().unwrap_or_else(|e| e.into_inner())),
            lock: self,
        })
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner().unwrap_or_else(|e| e.into_inner()))
    }

    fn release_read(&self) {
        let now_free = {
            let mut rw = self.rw.lock().unwrap_or_else(|e| e.into_inner());
            rw.readers -= 1;
            rw.readers == 0
        };
        if let Some((sched, me)) = Scheduler::try_current() {
            let id = self.id(&sched);
            if now_free {
                sched.unblock_where(|b| b == Blocked::RwWrite(id));
            }
            sched.yield_point(me);
        }
    }

    fn release_write(&self) {
        self.rw.lock().unwrap_or_else(|e| e.into_inner()).writer = false;
        if let Some((sched, me)) = Scheduler::try_current() {
            let id = self.id(&sched);
            sched.unblock_where(|b| b == Blocked::RwRead(id) || b == Blocked::RwWrite(id));
            sched.yield_point(me);
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard data taken")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.data.take());
        self.lock.release_read();
    }
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard data taken")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().expect("guard data taken")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.data.take());
        self.lock.release_write();
    }
}
