//! The cooperative deterministic scheduler behind [`crate::model`].
//!
//! Every execution spawns real OS threads, but exactly one is ever
//! *active*: all others are parked on the scheduler's condvar. An active
//! thread runs until it reaches a yield point (`switch`), where the
//! scheduler records a decision — which runnable thread continues — and
//! transfers the activity token. Forcing a recorded decision sequence
//! (the *script*) replays an interleaving exactly.

use std::cell::{Cell, RefCell};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once};

pub(crate) type TaskId = usize;

/// Why a task is not currently runnable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Blocked {
    /// Runnable (or currently active).
    Ready,
    /// Waiting for the mutex with this resource id to be released.
    Mutex(u64),
    /// Waiting for shared access to the rwlock with this resource id.
    RwRead(u64),
    /// Waiting for exclusive access to the rwlock with this resource id.
    RwWrite(u64),
    /// Parked on a condvar; `timed` waiters may be woken by the
    /// maximal-progress timeout rule when nothing else can run.
    Condvar {
        /// Resource id of the condvar.
        cv: u64,
        /// Whether this is a `wait_timeout` park.
        timed: bool,
    },
    /// Waiting for another task to finish.
    Join(TaskId),
    /// Finished (normally or by unwinding).
    Done,
}

struct Task {
    blocked: Blocked,
    /// Set when the task was woken by the timeout rule rather than a
    /// notification; consumed by `wait_timeout`.
    timed_out: bool,
    name: String,
}

/// One recorded branch point: `options` tasks were runnable, the one at
/// index `chosen` (task id `task`) ran. Single-option points are not
/// recorded — they carry no information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Decision {
    pub(crate) chosen: u32,
    pub(crate) options: u32,
    pub(crate) task: TaskId,
}

struct State {
    tasks: Vec<Task>,
    active: Option<TaskId>,
    decisions: Vec<Decision>,
    /// Forced choices for the leading branch points of this execution.
    script: Vec<u32>,
    step: usize,
    preemptions: u32,
    preemption_bound: u32,
    failure: Option<String>,
    /// When set, every task unwinds with the [`Abort`] payload and no
    /// further scheduling happens; the execution is being torn down.
    abort: bool,
    next_resource: u64,
    os_threads: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

/// Panic payload used to unwind model threads during teardown.
struct Abort;

fn abort_unwind() -> ! {
    panic::panic_any(Abort)
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, TaskId)>> = const { RefCell::new(None) };
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// Suppress default panic output from inside model threads: seeded-bug
/// suites and teardown unwinds panic on purpose, hundreds of times.
fn install_quiet_panic_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(Cell::get) {
                return;
            }
            default(info);
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Scheduler {
    pub(crate) fn new(preemption_bound: u32, script: Vec<u32>) -> Arc<Self> {
        Arc::new(Scheduler {
            state: Mutex::new(State {
                tasks: Vec::new(),
                active: None,
                decisions: Vec::new(),
                script,
                step: 0,
                preemptions: 0,
                preemption_bound,
                failure: None,
                abort: false,
                next_resource: 0,
                os_threads: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The scheduler and task id of the calling model thread.
    pub(crate) fn current() -> (Arc<Scheduler>, TaskId) {
        Self::try_current().expect("loom sync primitive used outside loom::model")
    }

    /// Like [`Scheduler::current`], but `None` outside a model run.
    pub(crate) fn try_current() -> Option<(Arc<Scheduler>, TaskId)> {
        CURRENT.with(|c| c.borrow().clone())
    }

    /// A fresh id for a mutex/rwlock/condvar. Ids are assigned lazily at
    /// first use; execution order is deterministic, so ids are too.
    pub(crate) fn resource_id(&self) -> u64 {
        let mut st = self.lock();
        st.next_resource += 1;
        st.next_resource
    }

    /// Yield point: record the calling task entering `blocked`, pick the
    /// next task to run, and return once the caller is scheduled again.
    /// Unwinds with [`Abort`] if the execution is being torn down — unless
    /// the calling thread is already unwinding (a panic mid-`Drop` would
    /// abort the process), in which case it returns immediately and the
    /// original unwind continues.
    pub(crate) fn switch(&self, me: TaskId, blocked: Blocked) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            if std::thread::panicking() {
                return;
            }
            abort_unwind();
        }
        st.tasks[me].blocked = blocked;
        self.schedule_next(&mut st, Some(me));
        if st.tasks[me].blocked == Blocked::Done {
            return;
        }
        while !(st.active == Some(me) && st.tasks[me].blocked == Blocked::Ready) {
            if st.abort {
                drop(st);
                if std::thread::panicking() {
                    return;
                }
                abort_unwind();
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Yield point used from `Drop` impls (lock releases). Identical to
    /// `switch(me, Ready)`; kept separate for intent — the
    /// `thread::panicking()` escape in [`Scheduler::switch`] is what makes
    /// this safe during unwinds.
    pub(crate) fn yield_point(&self, me: TaskId) {
        self.switch(me, Blocked::Ready);
    }

    /// Flip every non-finished task whose blocked state satisfies `pred`
    /// back to runnable. Does not transfer control.
    pub(crate) fn unblock_where(&self, pred: impl Fn(Blocked) -> bool) {
        let mut st = self.lock();
        for t in st.tasks.iter_mut() {
            if t.blocked != Blocked::Done && t.blocked != Blocked::Ready && pred(t.blocked) {
                t.blocked = Blocked::Ready;
            }
        }
    }

    /// Flip the lowest-id task matching `pred` back to runnable
    /// (deterministic `notify_one`).
    pub(crate) fn unblock_first(&self, pred: impl Fn(Blocked) -> bool) {
        let mut st = self.lock();
        for t in st.tasks.iter_mut() {
            if t.blocked != Blocked::Done && t.blocked != Blocked::Ready && pred(t.blocked) {
                t.blocked = Blocked::Ready;
                return;
            }
        }
    }

    /// Read and clear the calling task's timed-out flag.
    pub(crate) fn take_timed_out(&self, me: TaskId) -> bool {
        let mut st = self.lock();
        std::mem::take(&mut st.tasks[me].timed_out)
    }

    /// Whether `task` has finished.
    pub(crate) fn is_done(&self, task: TaskId) -> bool {
        self.lock().tasks[task].blocked == Blocked::Done
    }

    /// Record a failure (first one wins) and begin teardown.
    fn fail(st: &mut State, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.abort = true;
    }

    /// Pick the next task to run and hand it the activity token. Called
    /// with the state lock held, from a task yielding (`from = Some`) or
    /// finishing (`from = None`).
    fn schedule_next(&self, st: &mut MutexGuard<'_, State>, from: Option<TaskId>) {
        let mut options: Vec<TaskId> = (0..st.tasks.len())
            .filter(|&i| st.tasks[i].blocked == Blocked::Ready)
            .collect();
        if options.is_empty() {
            // Maximal-progress timeout rule: timed condvar waiters wake
            // (as timed out) only when nothing else can run.
            let timed: Vec<TaskId> = (0..st.tasks.len())
                .filter(|&i| matches!(st.tasks[i].blocked, Blocked::Condvar { timed: true, .. }))
                .collect();
            if timed.is_empty() {
                if st.tasks.iter().all(|t| t.blocked == Blocked::Done) {
                    // Execution complete; wake the driver.
                    st.active = None;
                    self.cv.notify_all();
                    return;
                }
                let report = Self::deadlock_report(st);
                Self::fail(st, report);
                self.cv.notify_all();
                return;
            }
            for &t in &timed {
                st.tasks[t].blocked = Blocked::Ready;
                st.tasks[t].timed_out = true;
            }
            options = timed;
        }
        // The yielding task, if still runnable, goes first: choice 0
        // means "continue without preempting".
        if let Some(me) = from {
            if let Some(pos) = options.iter().position(|&t| t == me) {
                options.remove(pos);
                options.insert(0, me);
                if st.preemptions >= st.preemption_bound {
                    options.truncate(1);
                }
            }
        }
        let idx = if options.len() == 1 {
            0
        } else {
            let forced = if st.step < st.script.len() {
                (st.script[st.step] as usize).min(options.len() - 1)
            } else {
                0
            };
            st.decisions.push(Decision {
                chosen: forced as u32,
                options: options.len() as u32,
                task: options[forced],
            });
            st.step += 1;
            forced
        };
        let next = options[idx];
        if let Some(me) = from {
            if next != me && st.tasks[me].blocked == Blocked::Ready {
                st.preemptions += 1;
            }
        }
        st.active = Some(next);
        self.cv.notify_all();
    }

    fn deadlock_report(st: &State) -> String {
        let mut lines = vec!["deadlock: no thread can make progress".to_string()];
        for t in st.tasks.iter() {
            if t.blocked != Blocked::Done {
                lines.push(format!("  thread '{}' blocked on {:?}", t.name, t.blocked));
            }
        }
        lines.join("\n")
    }

    /// Register a new task and spawn its OS thread. The task becomes
    /// schedulable at the spawner's next yield point.
    pub(crate) fn spawn_task(
        self: &Arc<Self>,
        name: String,
        f: Box<dyn FnOnce() + Send>,
    ) -> TaskId {
        install_quiet_panic_hook();
        let id;
        let name = {
            let mut st = self.lock();
            if st.abort {
                drop(st);
                abort_unwind();
            }
            id = st.tasks.len();
            assert!(id < 16, "loom model: too many threads (max 16)");
            let name = if name.is_empty() {
                format!("t{id}")
            } else {
                name
            };
            st.tasks.push(Task {
                blocked: Blocked::Ready,
                timed_out: false,
                name: name.clone(),
            });
            name
        };
        let sched = Arc::clone(self);
        let os = std::thread::Builder::new()
            .name(format!("loom-{name}"))
            .spawn(move || {
                IN_MODEL.with(|f| f.set(true));
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), id)));
                // Park until scheduled for the first time.
                let run = {
                    let mut st = sched.lock();
                    loop {
                        if st.abort {
                            break false;
                        }
                        if st.active == Some(id) && st.tasks[id].blocked == Blocked::Ready {
                            break true;
                        }
                        st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                };
                if run {
                    if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                        if payload.downcast_ref::<Abort>().is_none() {
                            let msg = panic_message(payload.as_ref());
                            let mut st = sched.lock();
                            let message =
                                format!("thread '{}' panicked: {}", st.tasks[id].name, msg);
                            Self::fail(&mut st, message);
                        }
                    }
                }
                sched.finish(id);
            })
            .expect("spawn loom model thread");
        self.lock().os_threads.push(os);
        id
    }

    /// Mark `id` finished, wake its joiners, and pass the token on.
    fn finish(self: &Arc<Self>, id: TaskId) {
        let mut st = self.lock();
        st.tasks[id].blocked = Blocked::Done;
        for t in st.tasks.iter_mut() {
            if t.blocked == Blocked::Join(id) {
                t.blocked = Blocked::Ready;
            }
        }
        if st.abort {
            self.cv.notify_all();
            return;
        }
        self.schedule_next(&mut st, None);
    }

    /// Run one execution to completion: spawn the root task, hand it the
    /// token, wait for every task to finish, reap the OS threads, and
    /// return the recorded branch decisions plus any failure.
    pub(crate) fn run(
        self: &Arc<Self>,
        root: Box<dyn FnOnce() + Send>,
    ) -> (Vec<Decision>, Option<String>) {
        let root_id = self.spawn_task("main".to_string(), root);
        {
            let mut st = self.lock();
            st.active = Some(root_id);
            self.cv.notify_all();
        }
        let (decisions, failure, os) = {
            let mut st = self.lock();
            while !st.tasks.iter().all(|t| t.blocked == Blocked::Done) {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            (
                std::mem::take(&mut st.decisions),
                st.failure.take(),
                std::mem::take(&mut st.os_threads),
            )
        };
        for h in os {
            let _ = h.join();
        }
        (decisions, failure)
    }
}
