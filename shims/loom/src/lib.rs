//! Offline stand-in for the `loom` crate: a deterministic concurrency
//! model checker.
//!
//! The build environment has no network access, so this workspace vendors
//! a minimal, std-only model checker in the spirit of `loom 0.7`. It is
//! consumed through the `mips-core` `sync` facade: under
//! `--cfg mips_model_check` the facade re-exports the instrumented
//! `Mutex`/`RwLock`/`Condvar`/atomics/`thread` types from this crate
//! instead of `std`, and concurrency tests wrap their bodies in
//! [`model`].
//!
//! # How it works
//!
//! [`model`] runs the closure repeatedly, once per *schedule*. Each run
//! spawns real OS threads, but a cooperative scheduler lets exactly one
//! run at a time: every instrumented operation (lock, unlock, atomic
//! access, notify, spawn, join) is a *yield point* where the scheduler
//! picks which thread continues. The sequence of picks is explored
//! exhaustively, depth-first, under a *preemption bound* (CHESS-style:
//! only schedules with at most `preemption_bound` involuntary context
//! switches are visited, which is where the overwhelming majority of
//! concurrency bugs live). A failed assertion, panic, or deadlock aborts
//! the run and reports the exact decision sequence — the *trace seed* —
//! which replays the same interleaving deterministically via [`replay`]
//! or the `MIPS_MODEL_REPLAY` environment variable.
//!
//! Blocked [`sync::Condvar::wait_timeout`] waiters are woken (as timed
//! out) only when no other thread can make progress — the standard
//! "maximal progress" abstraction of real time — and a state where no
//! thread is runnable and no waiter is timed is reported as a deadlock.
//!
//! # Model limitations
//!
//! * Atomics are modeled as **sequentially consistent** regardless of the
//!   `Ordering` argument. Relaxed/acquire/release reorderings are *not*
//!   explored; the checker proves interleaving-level correctness, while
//!   the ThreadSanitizer CI leg covers the memory-model axis.
//! * `Condvar::notify_one` deterministically wakes the lowest-id waiter
//!   rather than branching over all waiters.
//! * All shared state must be created **inside** the closure passed to
//!   [`model`]; state captured from outside leaks between schedules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod scheduler;

pub mod sync;
pub mod thread;

pub use model::{explore, model, model_with, replay, Config, Failure, Report};
