//! Instrumented atomics.
//!
//! Every access is a scheduler yield point; values live behind an
//! uncontended mutex. All orderings are modeled as sequentially
//! consistent — the checker explores interleavings, not weak-memory
//! reorderings (the ThreadSanitizer CI leg covers that axis).

use std::sync::Mutex as StdMutex;

pub use std::sync::atomic::Ordering;

use crate::scheduler::{Blocked, Scheduler};

/// Yield to the scheduler before an atomic access. Outside a model run
/// the access silently degrades to a plain mutex-protected operation.
fn point() {
    if let Some((sched, me)) = Scheduler::try_current() {
        sched.switch(me, Blocked::Ready);
    }
}

macro_rules! atomic_int {
    ($(#[$doc:meta])* $name:ident, $t:ty) => {
        $(#[$doc])*
        #[derive(Default)]
        pub struct $name {
            v: StdMutex<$t>,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $t) -> Self {
                Self { v: StdMutex::new(v) }
            }

            fn with<R>(&self, f: impl FnOnce(&mut $t) -> R) -> R {
                point();
                f(&mut self.v.lock().unwrap_or_else(|e| e.into_inner()))
            }

            /// Loads the value.
            pub fn load(&self, _order: Ordering) -> $t {
                self.with(|v| *v)
            }

            /// Stores a value.
            pub fn store(&self, val: $t, _order: Ordering) {
                self.with(|v| *v = val)
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, val: $t, _order: Ordering) -> $t {
                self.with(|v| std::mem::replace(v, val))
            }

            /// Adds to the value (wrapping), returning the previous one.
            pub fn fetch_add(&self, val: $t, _order: Ordering) -> $t {
                self.with(|v| {
                    let prev = *v;
                    *v = prev.wrapping_add(val);
                    prev
                })
            }

            /// Subtracts from the value (wrapping), returning the
            /// previous one.
            pub fn fetch_sub(&self, val: $t, _order: Ordering) -> $t {
                self.with(|v| {
                    let prev = *v;
                    *v = prev.wrapping_sub(val);
                    prev
                })
            }

            /// Stores the maximum of the value and `val`, returning the
            /// previous value.
            pub fn fetch_max(&self, val: $t, _order: Ordering) -> $t {
                self.with(|v| {
                    let prev = *v;
                    *v = prev.max(val);
                    prev
                })
            }

            /// Stores the minimum of the value and `val`, returning the
            /// previous value.
            pub fn fetch_min(&self, val: $t, _order: Ordering) -> $t {
                self.with(|v| {
                    let prev = *v;
                    *v = prev.min(val);
                    prev
                })
            }

            /// Compare-and-exchange: stores `new` if the value equals
            /// `current`.
            pub fn compare_exchange(
                &self,
                current: $t,
                new: $t,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$t, $t> {
                self.with(|v| {
                    if *v == current {
                        *v = new;
                        Ok(current)
                    } else {
                        Err(*v)
                    }
                })
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $t {
                self.v.into_inner().unwrap_or_else(|e| e.into_inner())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }
    };
}

atomic_int!(
    /// Model-checked stand-in for `std::sync::atomic::AtomicU64`.
    AtomicU64,
    u64
);
atomic_int!(
    /// Model-checked stand-in for `std::sync::atomic::AtomicUsize`.
    AtomicUsize,
    usize
);
atomic_int!(
    /// Model-checked stand-in for `std::sync::atomic::AtomicU32`.
    AtomicU32,
    u32
);

/// Model-checked stand-in for `std::sync::atomic::AtomicBool`.
#[derive(Default)]
pub struct AtomicBool {
    v: StdMutex<bool>,
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub const fn new(v: bool) -> Self {
        Self {
            v: StdMutex::new(v),
        }
    }

    fn with<R>(&self, f: impl FnOnce(&mut bool) -> R) -> R {
        point();
        f(&mut self.v.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Loads the value.
    pub fn load(&self, _order: Ordering) -> bool {
        self.with(|v| *v)
    }

    /// Stores a value.
    pub fn store(&self, val: bool, _order: Ordering) {
        self.with(|v| *v = val)
    }

    /// Swaps the value, returning the previous one.
    pub fn swap(&self, val: bool, _order: Ordering) -> bool {
        self.with(|v| std::mem::replace(v, val))
    }

    /// Logical-or with `val`, returning the previous value.
    pub fn fetch_or(&self, val: bool, _order: Ordering) -> bool {
        self.with(|v| {
            let prev = *v;
            *v = prev || val;
            prev
        })
    }

    /// Compare-and-exchange: stores `new` if the value equals `current`.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        self.with(|v| {
            if *v == current {
                *v = new;
                Ok(current)
            } else {
                Err(*v)
            }
        })
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicBool").finish_non_exhaustive()
    }
}
