//! Instrumented thread spawn/join.
//!
//! Spawned closures run on real OS threads, but only when the model
//! scheduler hands them the activity token. `spawn` and `join` are yield
//! points.

use std::sync::{Arc, Mutex as StdMutex};

use crate::scheduler::{Blocked, Scheduler, TaskId};

/// Handle to a model thread; joining is a scheduler yield point.
pub struct JoinHandle<T> {
    id: TaskId,
    sched: Arc<Scheduler>,
    result: Arc<StdMutex<Option<T>>>,
}

/// Builder mirroring `std::thread::Builder` (name only).
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a new builder.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Names the thread; the name appears in model failure reports.
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns a model thread. Never fails (the `io::Result` mirrors the
    /// std signature).
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (sched, me) = Scheduler::current();
        let result = Arc::new(StdMutex::new(None));
        let slot = Arc::clone(&result);
        // An empty name tells the scheduler to substitute "t<task-id>".
        let id = sched.spawn_task(
            self.name.unwrap_or_default(),
            Box::new(move || {
                let v = f();
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
            }),
        );
        // The new task becomes schedulable at this yield point.
        sched.switch(me, Blocked::Ready);
        Ok(JoinHandle { id, sched, result })
    }
}

/// Spawns an unnamed model thread (see [`Builder::spawn`]).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("loom spawn cannot fail")
}

/// Yields to the scheduler (a pure scheduling point).
pub fn yield_now() {
    if let Some((sched, me)) = Scheduler::try_current() {
        sched.switch(me, Blocked::Ready);
    } else {
        std::thread::yield_now();
    }
}

impl<T> JoinHandle<T> {
    /// Blocks (in the model) until the thread finishes, returning its
    /// value. A thread that panicked aborts the whole execution, so the
    /// `Err` arm is only observed during teardown.
    pub fn join(self) -> std::thread::Result<T> {
        let (sched, me) = Scheduler::current();
        // Single-active discipline: between the check and the park no
        // other task can finish, so the park cannot miss the wakeup.
        while !self.sched.is_done(self.id) {
            sched.switch(me, Blocked::Join(self.id));
        }
        match self.result.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(v) => Ok(v),
            None => Err(Box::new("loom: joined thread did not complete".to_string())),
        }
    }
}
