//! Exploration driver: depth-first search over scheduling decisions.

use std::sync::Arc;

use crate::scheduler::{Decision, Scheduler};

/// Exploration settings.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum number of involuntary context switches per schedule
    /// (CHESS-style preemption bound). Schedules needing more are not
    /// explored; 2 catches the overwhelming majority of real races.
    pub preemption_bound: u32,
    /// Hard cap on explored schedules; exceeding it fails the check
    /// (an exploration that silently stops early proves nothing).
    pub max_schedules: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: 2,
            max_schedules: 500_000,
        }
    }
}

/// A failing interleaving.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The panic message or deadlock report.
    pub message: String,
    /// The trace seed: dot-separated branch choices, replayable with
    /// [`replay`] or `MIPS_MODEL_REPLAY`.
    pub trace: String,
    /// Human-readable thread schedule at the recorded branch points.
    pub schedule: String,
    /// 1-based index of the failing schedule in exploration order.
    pub schedule_index: usize,
}

/// The outcome of an exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of schedules executed.
    pub schedules: usize,
    /// The first failing interleaving, if any.
    pub failure: Option<Failure>,
}

fn encode_trace(decisions: &[Decision]) -> String {
    decisions
        .iter()
        .map(|d| d.chosen.to_string())
        .collect::<Vec<_>>()
        .join(".")
}

fn encode_schedule(decisions: &[Decision]) -> String {
    decisions
        .iter()
        .map(|d| format!("t{}", d.task))
        .collect::<Vec<_>>()
        .join(" ")
}

/// The next DFS script: increment the last branch decision that still
/// has an unexplored alternative, truncating everything after it.
fn next_script(decisions: &[Decision]) -> Option<Vec<u32>> {
    for i in (0..decisions.len()).rev() {
        if decisions[i].chosen + 1 < decisions[i].options {
            let mut script: Vec<u32> = decisions[..i].iter().map(|d| d.chosen).collect();
            script.push(decisions[i].chosen + 1);
            return Some(script);
        }
    }
    None
}

fn run_once(
    config: &Config,
    script: Vec<u32>,
    f: &Arc<dyn Fn() + Send + Sync>,
) -> (Vec<Decision>, Option<String>) {
    let sched = Scheduler::new(config.preemption_bound, script);
    let g = Arc::clone(f);
    sched.run(Box::new(move || g()))
}

fn failure_from(decisions: &[Decision], message: String, schedule_index: usize) -> Failure {
    Failure {
        message,
        trace: encode_trace(decisions),
        schedule: encode_schedule(decisions),
        schedule_index,
    }
}

/// Exhaustively explores schedules of `f` under `config`, stopping at
/// the first failure. Never panics on model failures — callers that
/// want a panic use [`model`]/[`model_with`].
pub fn explore<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut script: Vec<u32> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let (decisions, failure) = run_once(&config, script, &f);
        schedules += 1;
        if let Some(message) = failure {
            return Report {
                schedules,
                failure: Some(failure_from(&decisions, message, schedules)),
            };
        }
        match next_script(&decisions) {
            Some(next) => script = next,
            None => {
                return Report {
                    schedules,
                    failure: None,
                }
            }
        }
        if schedules >= config.max_schedules {
            return Report {
                schedules,
                failure: Some(failure_from(
                    &decisions,
                    format!(
                        "exploration exceeded max_schedules ({}) before exhausting the \
                         interleaving space; shrink the test or raise the bound",
                        config.max_schedules
                    ),
                    schedules,
                )),
            };
        }
    }
}

/// Runs exactly one schedule of `f`, forced by a trace seed previously
/// printed in a failure report.
pub fn replay<F>(trace: &str, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let script: Vec<u32> = trace
        .split('.')
        .filter(|s| !s.is_empty())
        .map(|s| s.trim().parse::<u32>().expect("malformed trace seed"))
        .collect();
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let (decisions, failure) = run_once(&Config::default(), script, &f);
    Report {
        schedules: 1,
        failure: failure.map(|message| failure_from(&decisions, message, 1)),
    }
}

/// Model-checks `f` with the default [`Config`], panicking with a
/// replayable report on the first failing interleaving.
///
/// If `MIPS_MODEL_REPLAY` is set, runs only that traced schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f)
}

/// Like [`model`], with explicit exploration settings.
pub fn model_with<F>(config: Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    if let Ok(trace) = std::env::var("MIPS_MODEL_REPLAY") {
        let report = replay(&trace, f);
        match report.failure {
            Some(failure) => panic!(
                "model check failed on replayed schedule\n{}\nschedule: {}\ntrace seed: {}",
                failure.message, failure.schedule, failure.trace
            ),
            None => return,
        }
    }
    let report = explore(config, f);
    if let Some(failure) = report.failure {
        panic!(
            "model check failed on schedule {} of {}\n{}\nschedule: {}\ntrace seed: {}\n\
             replay just this interleaving with MIPS_MODEL_REPLAY={}",
            failure.schedule_index,
            report.schedules,
            failure.message,
            failure.schedule,
            failure.trace,
            failure.trace
        );
    }
}
