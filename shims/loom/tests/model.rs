//! Self-tests for the vendored model checker.
//!
//! These run in every normal build (no special cfg): they prove the
//! scheduler explores real interleavings, catches planted races and
//! deadlocks, respects the preemption bound, and replays failure traces
//! deterministically.

use std::sync::Arc;

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Condvar, Mutex};
use loom::thread;
use loom::{explore, model, replay, Config};

/// Two threads incrementing under a mutex: correct in every schedule,
/// and the exploration must actually branch (more than one schedule).
#[test]
fn mutex_guarded_increments_pass_and_explore_branches() {
    let report = explore(Config::default(), || {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let mut v = counter.lock().unwrap();
                    *v += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 2);
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
    assert!(
        report.schedules > 1,
        "exploration never branched: {} schedule(s)",
        report.schedules
    );
}

/// A torn read-modify-write (load, then store) across two threads: the
/// checker must find the interleaving where one increment is lost.
#[test]
fn torn_increment_race_is_caught() {
    let report = explore(Config::default(), || {
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                thread::spawn(move || {
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost increment");
    });
    let failure = report.failure.expect("planted race not found");
    assert!(
        failure.message.contains("lost increment"),
        "{}",
        failure.message
    );
}

/// The same planted race is invisible without preemptions: a bound of 0
/// only explores cooperative schedules, where each thread's
/// load-then-store runs intact.
#[test]
fn preemption_bound_zero_hides_the_torn_increment() {
    let report = explore(
        Config {
            preemption_bound: 0,
            ..Config::default()
        },
        || {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let v = counter.load(Ordering::SeqCst);
                        counter.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        },
    );
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// A condvar wait that nobody will ever notify is a deadlock, and the
/// checker reports it as such instead of hanging.
#[test]
fn missed_notify_is_reported_as_deadlock() {
    let report = explore(Config::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            })
        };
        // The flag is set without ever notifying — classic dropped
        // notify. The waiter can park after the store and sleep forever.
        {
            let (lock, _cv) = &*pair;
            *lock.lock().unwrap() = true;
        }
        waiter.join().unwrap();
    });
    // Some schedules pass (waiter observes the flag before parking); the
    // checker must find the one that deadlocks.
    let failure = report.failure.expect("dropped notify not found");
    assert!(failure.message.contains("deadlock"), "{}", failure.message);
}

/// The correct flag+notify handshake passes in every schedule.
#[test]
fn notify_handshake_has_no_lost_wakeup() {
    let report = explore(Config::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            })
        };
        {
            let (lock, cv) = &*pair;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// `wait_timeout` waiters wake via the maximal-progress timeout rule
/// when nothing else can run, reporting `timed_out()`.
#[test]
fn wait_timeout_fires_only_when_nothing_else_runs() {
    let report = explore(Config::default(), || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            thread::spawn(move || {
                let (lock, cv) = &*pair;
                let guard = lock.lock().unwrap();
                let (_guard, result) = cv
                    .wait_timeout(guard, std::time::Duration::from_millis(5))
                    .unwrap();
                assert!(result.timed_out(), "woken without a notifier");
            })
        };
        waiter.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

/// Failure traces are deterministic (same exploration → same trace) and
/// replayable (the seed alone reproduces the failure).
#[test]
fn failure_traces_are_deterministic_and_replayable() {
    fn planted() -> impl Fn() + Send + Sync + 'static {
        || {
            let counter = Arc::new(AtomicUsize::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        let v = counter.load(Ordering::SeqCst);
                        counter.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(counter.load(Ordering::SeqCst), 2);
        }
    }
    let first = explore(Config::default(), planted())
        .failure
        .expect("race not found");
    let second = explore(Config::default(), planted())
        .failure
        .expect("race not found");
    assert_eq!(first.trace, second.trace);
    assert_eq!(first.schedule, second.schedule);
    assert_eq!(first.schedule_index, second.schedule_index);

    let replayed = replay(&first.trace, planted())
        .failure
        .expect("trace seed did not reproduce the failure");
    assert_eq!(replayed.trace, first.trace);
}

/// Join returns the thread's value, and `model` itself passes a clean
/// closure without panicking.
#[test]
fn join_values_and_clean_model() {
    model(|| {
        let h = thread::spawn(|| 41 + 1);
        assert_eq!(h.join().unwrap(), 42);
    });
}

/// RwLock: a writer is exclusive with readers — readers can never
/// observe the writer's intermediate state.
#[test]
fn rwlock_readers_never_see_intermediate_writes() {
    let report = explore(Config::default(), || {
        let lock = Arc::new(loom::sync::RwLock::new(0u64));
        let writer = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                let mut v = lock.write().unwrap();
                *v = 1; // intermediate (odd)
                *v = 2; // final (even)
            })
        };
        let reader = {
            let lock = Arc::clone(&lock);
            thread::spawn(move || {
                let v = lock.read().unwrap();
                assert!(*v % 2 == 0, "observed intermediate write");
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    });
    assert!(report.failure.is_none(), "{:?}", report.failure);
}
