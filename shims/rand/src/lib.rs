//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, deterministic implementation of the `rand 0.8` API surface the
//! repository actually uses: `StdRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range` and `Rng::gen_bool`. The generator is SplitMix64 —
//! statistically solid for simulation workloads, not cryptographic.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word from the generator.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn from_rng(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn from_rng(rng: &mut dyn RngCore) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn from_rng(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws a uniform value from the range. Panics on empty ranges, like
    /// the real `rand`.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::from_rng(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::from_rng(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f64, f32);

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws one value of an inferable [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&w));
            let x = rng.gen_range(0usize..=4);
            assert!(x <= 4);
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
