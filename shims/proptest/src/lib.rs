//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this repository's test suites
//! use: the [`proptest!`] macro, range / tuple / `Just` / `vec` strategies,
//! `prop_map` / `prop_flat_map`, and the `prop_assert*` macros. Cases are
//! generated from a seed derived from the test's module path and name, so
//! every failure reproduces deterministically. There is no shrinking: the
//! first failing case is reported as-is.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` returns
        /// for it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    range_strategies!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8, f64, f32);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// An inclusive size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "vec size range must be non-empty");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "vec size range must be non-empty");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;

    /// Generates `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rand::Rng::gen(rng)
        }
    }
}

pub mod test_runner {
    //! Run configuration.

    /// Configuration for a `proptest!` block (subset: case count).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// FNV-1a, used to derive a deterministic per-test seed from its name.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `body` against `cases` generated inputs. Used by [`proptest!`];
/// not part of the public proptest API.
pub fn run_cases(name: &str, cases: u32, mut body: impl FnMut(&mut StdRng, u32)) {
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    for case in 0..cases {
        body(&mut rng, case);
    }
}

/// The proptest entry macro: wraps `fn name(binding in strategy, ...)` test
/// definitions into plain `#[test]` functions that loop over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.cases,
                    |__proptest_rng, __proptest_case| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat),
                                __proptest_rng,
                            );
                        )+
                        let _ = __proptest_case;
                        $body
                    },
                );
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs((a, b) in (0usize..10, 5u64..6),
                           v in crate::collection::vec(-1.0f64..1.0, 0..20),
                           flag in crate::bool::ANY) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
            let _ = flag;
        }

        #[test]
        fn flat_map_dependent(len in (1usize..8).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0i32..100, n))
        })) {
            let (n, v) = len;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_for("a::x"), crate::seed_for("a::y"));
    }
}
