//! Cross-crate integration tests: the full pipeline from data generation
//! and training through every solver and the optimizer.

use optimus_maximus::core::optimus::oracle::oracle_choice;
use optimus_maximus::core::parallel::par_query_all;
use optimus_maximus::data::sgd::{train_sgd, SgdConfig};
use optimus_maximus::prelude::*;
use std::sync::Arc;

/// Small versions of a few catalog models spanning all four dataset
/// families.
fn small_catalog() -> Vec<Arc<MfModel>> {
    reference_models()
        .into_iter()
        .filter(|s| {
            (s.dataset == "Netflix" && s.training == "DSGD" && s.f == 10)
                || (s.dataset == "R2" && s.training == "NOMAD" && s.f == 10)
                || (s.dataset == "KDD" && s.training == "REF")
                || (s.dataset == "GloVe" && s.f == 50)
        })
        .map(|s| Arc::new(s.build(0.05)))
        .collect()
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Bmm,
        Strategy::Maximus(MaximusConfig {
            num_clusters: 4,
            block_size: 32,
            ..MaximusConfig::default()
        }),
        Strategy::Lemp(LempConfig::default()),
        Strategy::FexiproSi,
        Strategy::FexiproSir,
    ]
}

#[test]
fn all_solvers_exact_on_all_dataset_families() {
    for model in small_catalog() {
        for strategy in strategies() {
            let solver = strategy.build(&model);
            for k in [1usize, 10] {
                let results = solver.query_all(k);
                check_all_topk(&model, k, &results, 1e-9).unwrap_or_else(|msg| {
                    panic!("{} on {}: {msg}", strategy.name(), model.name())
                });
            }
        }
    }
}

#[test]
fn solvers_agree_item_for_item() {
    let model = small_catalog().remove(0);
    let reference = Strategy::Bmm.build(&model).query_all(5);
    for strategy in strategies() {
        let results = strategy.build(&model).query_all(5);
        for u in (0..model.num_users()).step_by(13) {
            assert_eq!(
                results[u].items,
                reference[u].items,
                "{} disagrees with BMM for user {u} on {}",
                strategy.name(),
                model.name()
            );
        }
    }
}

#[test]
fn optimus_serves_exact_results_and_valid_choice() {
    let model = small_catalog().remove(1);
    let optimus = Optimus::new(OptimusConfig {
        sample_fraction: 0.05,
        ..OptimusConfig::default()
    });
    let outcome = optimus.run(
        &model,
        5,
        &[
            Strategy::Maximus(MaximusConfig {
                num_clusters: 4,
                block_size: 32,
                ..MaximusConfig::default()
            }),
            Strategy::Lemp(LempConfig::default()),
        ],
    );
    assert!(["Blocked MM", "Maximus", "LEMP"].contains(&outcome.chosen.as_str()));
    check_all_topk(&model, 5, &outcome.results, 1e-9).expect("OPTIMUS output is exact");
    // Estimates exist for every candidate and are finite.
    assert_eq!(outcome.estimates.len(), 3);
    for e in &outcome.estimates {
        assert!(e.estimated_total_seconds.is_finite() && e.estimated_total_seconds > 0.0);
    }
}

#[test]
fn parallel_serving_matches_sequential_everywhere() {
    let model = small_catalog().remove(2);
    for strategy in strategies() {
        let solver = strategy.build(&model);
        let seq = solver.query_all(4);
        let par = par_query_all(solver.as_ref(), 4, 4);
        assert_eq!(seq, par, "{} parallel mismatch", strategy.name());
    }
}

#[test]
fn end_to_end_train_then_serve() {
    // Ratings → SGD training → exact serving, the full Fig. 1 pipeline.
    let truth = synth_model(&SynthConfig {
        num_users: 120,
        num_items: 90,
        num_factors: 6,
        seed: 3,
        ..SynthConfig::default()
    });
    let ratings = RatingsData::from_ground_truth(&truth, 25, 0.1, 5);
    let trained = train_sgd(
        &ratings,
        &SgdConfig {
            num_factors: 8,
            epochs: 15,
            ..SgdConfig::default()
        },
    );
    let model = Arc::new(
        MfModel::new("trained", trained.users().clone(), trained.items().clone()).unwrap(),
    );
    for strategy in strategies() {
        let results = strategy.build(&model).query_all(3);
        check_all_topk(&model, 3, &results, 1e-9)
            .unwrap_or_else(|msg| panic!("{}: {msg}", strategy.name()));
    }
}

#[test]
fn oracle_and_optimus_usually_agree() {
    // Not a strict guarantee (timing noise on shared machines), but on a
    // model with a wide BMM-vs-index gap both should land on the same side.
    let spec = reference_models()
        .into_iter()
        .find(|s| s.dataset == "Netflix" && s.training == "BPR" && s.f == 25)
        .unwrap();
    let model = Arc::new(spec.build(0.15));
    let strategies = [Strategy::Bmm, Strategy::FexiproSir];
    let (best, _) = oracle_choice(&model, 1, &strategies);
    let optimus = Optimus::new(OptimusConfig {
        sample_fraction: 0.05,
        ..OptimusConfig::default()
    });
    let outcome = optimus.run(&model, 1, &[Strategy::FexiproSir]);
    // BPR models are BMM-friendly by construction; a diffuse-user model with
    // flat norms gives indexes nothing to prune.
    assert_eq!(strategies[best].name(), "Blocked MM");
    assert_eq!(outcome.chosen, "Blocked MM");
}

#[test]
fn model_validation_rejects_bad_input() {
    use optimus_maximus::linalg::Matrix;
    // NaN users.
    let mut users = Matrix::<f64>::zeros(2, 3);
    users.set(0, 0, f64::NAN);
    let items = Matrix::<f64>::from_fn(4, 3, |r, c| (r + c) as f64);
    assert!(matches!(
        MfModel::new("bad", users, items.clone()),
        Err(ModelError::InvalidMatrix(_))
    ));
    // Mismatched factor counts.
    let users = Matrix::<f64>::from_fn(2, 5, |r, c| (r * c) as f64);
    assert!(matches!(
        MfModel::new("bad", users, items.clone()),
        Err(ModelError::FactorMismatch { .. })
    ));
    // Empty matrices.
    let users = Matrix::<f64>::zeros(0, 3);
    assert!(MfModel::new("bad", users, items).is_err());
}

#[test]
fn duplicate_and_degenerate_vectors_are_served_exactly() {
    use optimus_maximus::linalg::Matrix;
    // Model with duplicate items, a zero item, a zero user, and duplicate
    // users — every degenerate case at once.
    let users = Matrix::from_rows(&[
        vec![1.0, 2.0, -1.0],
        vec![0.0, 0.0, 0.0],
        vec![1.0, 2.0, -1.0],
        vec![-3.0, 0.5, 2.0],
    ])
    .unwrap();
    let mut item_rows = vec![
        vec![0.0, 0.0, 0.0],
        vec![1.0, 1.0, 1.0],
        vec![1.0, 1.0, 1.0],
        vec![-2.0, 0.0, 1.0],
    ];
    for j in 0..20 {
        item_rows.push(vec![j as f64 * 0.1, 1.0 - j as f64 * 0.05, 0.5]);
    }
    let items = Matrix::from_rows(&item_rows).unwrap();
    let model = Arc::new(MfModel::new("degenerate", users, items).unwrap());
    let reference = Strategy::Bmm.build(&model).query_all(6);
    for strategy in strategies() {
        let results = strategy.build(&model).query_all(6);
        for u in 0..model.num_users() {
            assert_eq!(
                results[u].items,
                reference[u].items,
                "{} user {u}",
                strategy.name()
            );
        }
    }
}
