//! Cross-crate integration tests: the full pipeline from data generation
//! and training through the serving engine, every backend, and the planner.

use optimus_maximus::core::optimus::oracle::oracle_choice;
use optimus_maximus::core::parallel::par_query_all;
use optimus_maximus::data::sgd::{train_sgd, SgdConfig};
use optimus_maximus::prelude::*;
use std::sync::Arc;

/// Small versions of a few catalog models spanning all four dataset
/// families.
fn small_catalog() -> Vec<Arc<MfModel>> {
    reference_models()
        .into_iter()
        .filter(|s| {
            (s.dataset == "Netflix" && s.training == "DSGD" && s.f == 10)
                || (s.dataset == "R2" && s.training == "NOMAD" && s.f == 10)
                || (s.dataset == "KDD" && s.training == "REF")
                || (s.dataset == "GloVe" && s.f == 50)
        })
        .map(|s| Arc::new(s.build(0.05)))
        .collect()
}

fn engine_for(model: &Arc<MfModel>) -> Engine {
    EngineBuilder::new()
        .model(Arc::clone(model))
        .register(BmmFactory)
        .register(MaximusFactory::new(MaximusConfig {
            num_clusters: 4,
            block_size: 32,
            ..MaximusConfig::default()
        }))
        .register(LempFactory::default())
        .register(FexiproFactory::si())
        .register(FexiproFactory::sir())
        .build()
        .expect("engine assembles")
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy::Bmm,
        Strategy::Maximus(MaximusConfig {
            num_clusters: 4,
            block_size: 32,
            ..MaximusConfig::default()
        }),
        Strategy::Lemp(LempConfig::default()),
        Strategy::FexiproSi,
        Strategy::FexiproSir,
    ]
}

#[test]
fn all_backends_exact_on_all_dataset_families() {
    for model in small_catalog() {
        let engine = engine_for(&model);
        for key in engine.backend_keys() {
            for k in [1usize, 10] {
                let response = engine
                    .execute_with(key, &QueryRequest::top_k(k))
                    .expect("valid request");
                check_all_topk(&model, k, &response.results, 1e-9)
                    .unwrap_or_else(|msg| panic!("{key} on {}: {msg}", model.name()));
            }
        }
    }
}

#[test]
fn backends_agree_item_for_item() {
    let model = small_catalog().remove(0);
    let engine = engine_for(&model);
    let reference = engine
        .execute_with("bmm", &QueryRequest::top_k(5))
        .expect("valid request");
    for key in engine.backend_keys() {
        let response = engine
            .execute_with(key, &QueryRequest::top_k(5))
            .expect("valid request");
        for u in (0..model.num_users()).step_by(13) {
            assert_eq!(
                response.results[u].items,
                reference.results[u].items,
                "{key} disagrees with BMM for user {u} on {}",
                model.name()
            );
        }
    }
}

#[test]
fn planner_serves_exact_results_and_reuses_the_decision() {
    let model = small_catalog().remove(1);
    let engine = EngineBuilder::new()
        .model(Arc::clone(&model))
        .register(BmmFactory)
        .register(MaximusFactory::new(MaximusConfig {
            num_clusters: 4,
            block_size: 32,
            ..MaximusConfig::default()
        }))
        .register(LempFactory::default())
        .optimus(OptimusConfig {
            sample_fraction: 0.05,
            ..OptimusConfig::default()
        })
        .build()
        .expect("engine assembles");

    let first = engine
        .execute(&QueryRequest::top_k(5))
        .expect("valid request");
    assert!(first.planned);
    check_all_topk(&model, 5, &first.results, 1e-9).expect("planned serving is exact");

    // The plan carries an estimate per candidate, all finite.
    let plan = engine.prepare(5).expect("cached");
    assert_eq!(plan.estimates().len(), 3);
    for e in plan.estimates() {
        assert!(e.estimated_total_seconds.is_finite() && e.estimated_total_seconds > 0.0);
    }

    // Re-serving at the same k reuses the decision without re-sampling.
    let second = engine
        .execute(&QueryRequest::top_k(5).users_range(0..model.num_users() / 2))
        .expect("valid request");
    assert_eq!(engine.planner_runs(), 1);
    assert_eq!(second.backend, first.backend);
    for (u, list) in second.results.iter().enumerate() {
        assert_eq!(list.items, first.results[u].items, "user {u}");
    }
}

#[test]
fn engine_threads_match_sequential_everywhere() {
    let model = small_catalog().remove(2);
    let sequential = engine_for(&model);
    let threaded = EngineBuilder::new()
        .model(Arc::clone(&model))
        .register(BmmFactory)
        .register(MaximusFactory::new(MaximusConfig {
            num_clusters: 4,
            block_size: 32,
            ..MaximusConfig::default()
        }))
        .register(LempFactory::default())
        .register(FexiproFactory::si())
        .register(FexiproFactory::sir())
        .threads(4)
        .build()
        .expect("engine assembles");
    for key in sequential.backend_keys() {
        let seq = sequential
            .execute_with(key, &QueryRequest::top_k(4))
            .expect("valid request");
        let par = threaded
            .execute_with(key, &QueryRequest::top_k(4))
            .expect("valid request");
        assert_eq!(seq.results, par.results, "{key} parallel mismatch");
    }
}

#[test]
#[allow(deprecated)] // the compat path stays covered until it is removed
fn legacy_strategy_and_par_query_all_still_work() {
    // The Strategy enum remains as a compatibility shim over registry keys.
    let model = small_catalog().remove(2);
    for strategy in strategies() {
        let solver = strategy.build(&model);
        let seq = solver.query_all(4);
        let par = par_query_all(solver.as_ref(), 4, 4);
        assert_eq!(seq, par, "{} parallel mismatch", strategy.name());
    }
}

#[test]
fn end_to_end_train_then_serve() {
    // Ratings → SGD training → exact serving, the full Fig. 1 pipeline.
    let truth = synth_model(&SynthConfig {
        num_users: 120,
        num_items: 90,
        num_factors: 6,
        seed: 3,
        ..SynthConfig::default()
    });
    let ratings = RatingsData::from_ground_truth(&truth, 25, 0.1, 5);
    let trained = train_sgd(
        &ratings,
        &SgdConfig {
            num_factors: 8,
            epochs: 15,
            ..SgdConfig::default()
        },
    );
    let model = Arc::new(
        MfModel::new("trained", trained.users().clone(), trained.items().clone()).unwrap(),
    );
    let engine = engine_for(&model);
    for key in engine.backend_keys() {
        let response = engine
            .execute_with(key, &QueryRequest::top_k(3))
            .expect("valid request");
        check_all_topk(&model, 3, &response.results, 1e-9)
            .unwrap_or_else(|msg| panic!("{key}: {msg}"));
    }

    // The recommender path: exclude every rated item per user, then check
    // nothing rated comes back.
    let watched =
        ExclusionSet::from_pairs(ratings.triples.iter().map(|&(u, i, _)| (u as usize, i)));
    let filtered = engine
        .execute(&QueryRequest::top_k(3).exclude(watched.clone()))
        .expect("valid request");
    for (u, list) in filtered.results.iter().enumerate() {
        for (item, _) in list.iter() {
            assert!(
                !watched.for_user(u).contains(&item),
                "user {u} was served already-rated item {item}"
            );
        }
    }
}

#[test]
fn oracle_and_planner_usually_agree() {
    // Not a strict guarantee (timing noise on shared machines), but on a
    // model with a wide BMM-vs-index gap both should land on the same side.
    let spec = reference_models()
        .into_iter()
        .find(|s| s.dataset == "Netflix" && s.training == "BPR" && s.f == 25)
        .unwrap();
    let model = Arc::new(spec.build(0.15));
    let backends: [Arc<dyn SolverFactory>; 2] =
        [Arc::new(BmmFactory), Arc::new(FexiproFactory::sir())];
    let (best, runtimes) = oracle_choice(&model, 1, &backends);
    let engine = EngineBuilder::new()
        .model(Arc::clone(&model))
        .register(BmmFactory)
        .register(FexiproFactory::sir())
        .optimus(OptimusConfig {
            sample_fraction: 0.05,
            ..OptimusConfig::default()
        })
        .build()
        .expect("engine assembles");
    let plan = engine.prepare(1).expect("planner runs");
    // BPR models are BMM-friendly by construction; a diffuse-user model with
    // flat norms gives indexes nothing to prune.
    assert_eq!(runtimes[best].name, "Blocked MM");
    assert_eq!(plan.backend_name(), "Blocked MM");
}

#[test]
fn model_validation_rejects_bad_input() {
    use optimus_maximus::linalg::Matrix;
    // NaN users.
    let mut users = Matrix::<f64>::zeros(2, 3);
    users.set(0, 0, f64::NAN);
    let items = Matrix::<f64>::from_fn(4, 3, |r, c| (r + c) as f64);
    assert!(matches!(
        MfModel::new("bad", users, items.clone()),
        Err(ModelError::InvalidMatrix(_))
    ));
    // Mismatched factor counts.
    let users = Matrix::<f64>::from_fn(2, 5, |r, c| (r * c) as f64);
    assert!(matches!(
        MfModel::new("bad", users, items.clone()),
        Err(ModelError::FactorMismatch { .. })
    ));
    // Empty matrices.
    let users = Matrix::<f64>::zeros(0, 3);
    assert!(MfModel::new("bad", users, items).is_err());
}

#[test]
fn malformed_requests_fail_with_typed_errors_on_every_backend() {
    let model = small_catalog().remove(0);
    let engine = engine_for(&model);
    let n_items = model.num_items();
    let n_users = model.num_users();
    for key in engine.backend_keys() {
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(0))
                .unwrap_err(),
            MipsError::InvalidK {
                k: 0,
                num_items: n_items
            }
        );
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(n_items + 1))
                .unwrap_err(),
            MipsError::InvalidK {
                k: n_items + 1,
                num_items: n_items
            }
        );
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(1).users(vec![n_users]))
                .unwrap_err(),
            MipsError::UserOutOfRange {
                user: n_users,
                num_users: n_users
            }
        );
        assert_eq!(
            engine
                .execute_with(key, &QueryRequest::top_k(1).users(Vec::new()))
                .unwrap_err(),
            MipsError::EmptyUserList
        );
    }
}

#[test]
fn duplicate_and_degenerate_vectors_are_served_exactly() {
    use optimus_maximus::linalg::Matrix;
    // Model with duplicate items, a zero item, a zero user, and duplicate
    // users — every degenerate case at once.
    let users = Matrix::from_rows(&[
        vec![1.0, 2.0, -1.0],
        vec![0.0, 0.0, 0.0],
        vec![1.0, 2.0, -1.0],
        vec![-3.0, 0.5, 2.0],
    ])
    .unwrap();
    let mut item_rows = vec![
        vec![0.0, 0.0, 0.0],
        vec![1.0, 1.0, 1.0],
        vec![1.0, 1.0, 1.0],
        vec![-2.0, 0.0, 1.0],
    ];
    for j in 0..20 {
        item_rows.push(vec![j as f64 * 0.1, 1.0 - j as f64 * 0.05, 0.5]);
    }
    let items = Matrix::from_rows(&item_rows).unwrap();
    let model = Arc::new(MfModel::new("degenerate", users, items).unwrap());
    let engine = engine_for(&model);
    let reference = engine
        .execute_with("bmm", &QueryRequest::top_k(6))
        .expect("valid request");
    for key in engine.backend_keys() {
        let response = engine
            .execute_with(key, &QueryRequest::top_k(6))
            .expect("valid request");
        for u in 0..model.num_users() {
            assert_eq!(
                response.results[u].items, reference.results[u].items,
                "{key} user {u}"
            );
        }
    }
}
