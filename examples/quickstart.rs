//! Quickstart: build a model, let OPTIMUS pick a serving strategy, read the
//! recommendations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use optimus_maximus::prelude::*;
use std::sync::Arc;

fn main() {
    // A synthetic matrix-factorization model standing in for a trained
    // recommender: 2,000 users and 1,500 items with 32 latent factors.
    let model = Arc::new(synth_model(&SynthConfig {
        num_users: 2000,
        num_items: 1500,
        num_factors: 32,
        ..SynthConfig::default()
    }));
    println!(
        "model: {} users x {} items, f = {}",
        model.num_users(),
        model.num_items(),
        model.num_factors()
    );

    // OPTIMUS decides online whether this model is worth indexing: it
    // builds the MAXIMUS index, times it and brute force on a small user
    // sample, and serves everyone with the winner. The item blocking factor
    // B is scaled to the catalog size (the paper's B = 4096 assumes
    // 20k-1M items).
    let optimus = Optimus::new(OptimusConfig::default());
    let maximus = MaximusConfig {
        block_size: (model.num_items() / 16).max(16),
        ..MaximusConfig::default()
    };
    let outcome = optimus.run(&model, 5, &[Strategy::Maximus(maximus)]);

    println!("\nOPTIMUS sampled {} users and chose: {}", outcome.sample_size, outcome.chosen);
    for estimate in &outcome.estimates {
        println!(
            "  {:<12} estimated total {:>8.3}s (build {:>6.4}s, sampled {} users in {:.4}s)",
            estimate.name,
            estimate.estimated_total_seconds,
            estimate.build_seconds,
            estimate.sampled_users,
            estimate.sample_seconds,
        );
    }
    println!(
        "decision overhead {:.3}s of {:.3}s total",
        outcome.decision_seconds, outcome.total_seconds
    );

    // Top-5 recommendations for the first three users.
    println!("\ntop-5 recommendations:");
    for user in 0..3 {
        let list = &outcome.results[user];
        let pretty: Vec<String> = list
            .iter()
            .map(|(item, score)| format!("item {item} ({score:.3})"))
            .collect();
        println!("  user {user}: {}", pretty.join(", "));
    }

    // Every result is exact — verify against a freshly computed reference.
    check_all_topk(&model, 5, &outcome.results, 1e-9).expect("exact top-k");
    println!("\nverified: all {} results exactly match brute force", outcome.results.len());
}
