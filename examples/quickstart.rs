//! Quickstart: assemble an engine, let the planner pick a backend, read the
//! recommendations.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use optimus_maximus::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), MipsError> {
    // A synthetic matrix-factorization model standing in for a trained
    // recommender: 2,000 users and 1,500 items with 32 latent factors.
    let model = Arc::new(synth_model(&SynthConfig {
        num_users: 2000,
        num_items: 1500,
        num_factors: 32,
        ..SynthConfig::default()
    }));
    println!(
        "model: {} users x {} items, f = {}",
        model.num_users(),
        model.num_items(),
        model.num_factors()
    );

    // The engine decides online whether this model is worth indexing: its
    // planner builds the candidates, times them on a small user sample, and
    // caches the winner. The item blocking factor B is scaled to the
    // catalog size (the paper's B = 4096 assumes 20k-1M items).
    let maximus = MaximusConfig {
        block_size: (model.num_items() / 16).max(16),
        ..MaximusConfig::default()
    };
    let engine = EngineBuilder::new()
        .model(Arc::clone(&model))
        .register(BmmFactory)
        .register(MaximusFactory::new(maximus))
        .build()?;

    let plan = engine.prepare(5)?;
    println!(
        "\nplanner sampled {} users and chose: {} (key {:?})",
        plan.sample_size(),
        plan.backend_name(),
        plan.backend_key()
    );
    for estimate in plan.estimates() {
        println!(
            "  {:<12} estimated total {:>8.3}s (build {:>6.4}s, sampled {} users in {:.4}s)",
            estimate.name,
            estimate.estimated_total_seconds,
            estimate.build_seconds,
            estimate.sampled_users,
            estimate.sample_seconds,
        );
    }
    println!("decision overhead {:.3}s", plan.decision_seconds());

    // Serving goes through the cached plan — no re-sampling.
    let response = engine.execute(&QueryRequest::top_k(5))?;
    assert_eq!(engine.planner_runs(), 1);

    // Top-5 recommendations for the first three users.
    println!("\ntop-5 recommendations (served by {}):", response.backend);
    for user in 0..3 {
        let list = &response.results[user];
        let pretty: Vec<String> = list
            .iter()
            .map(|(item, score)| format!("item {item} ({score:.3})"))
            .collect();
        println!("  user {user}: {}", pretty.join(", "));
    }

    // Malformed requests come back as typed errors, never panics.
    let err = engine.execute(&QueryRequest::top_k(0)).unwrap_err();
    println!("\nk = 0 rejected gracefully: {err}");

    // Every result is exact — verify against a freshly computed reference.
    check_all_topk(&model, 5, &response.results, 1e-9).expect("exact top-k");
    println!(
        "verified: all {} results exactly match brute force",
        response.results.len()
    );
    Ok(())
}
