//! Optimizer tour: why "to index or not to index" has no static answer.
//!
//! Reproduces the paper's motivating observation (Fig. 2) on two contrasting
//! workloads — a Netflix-like model where brute force wins and an R2-like
//! model where the index wins — and shows the engine's planner making the
//! right call on each, with its runtime estimates printed alongside the
//! measured truth.
//!
//! ```sh
//! cargo run --release --example optimizer_tour
//! ```

use optimus_maximus::core::optimus::oracle::oracle_choice;
use optimus_maximus::prelude::*;
use std::sync::Arc;

fn tour(label: &str, model: Arc<MfModel>, block_size: usize, k: usize) {
    println!("== {label}: {} ==", model.name());
    let maximus_cfg = MaximusConfig {
        block_size,
        ..MaximusConfig::default()
    };
    let backends: [Arc<dyn SolverFactory>; 2] = [
        Arc::new(BmmFactory),
        Arc::new(MaximusFactory::new(maximus_cfg)),
    ];

    // Ground truth: run everything to completion (the oracle of Table II).
    let (best, runtimes) = oracle_choice(&model, k, &backends);
    for rt in &runtimes {
        println!(
            "  measured {:<12} {:>8.3}s (build {:>6.4}s + serve {:>7.4}s)",
            rt.name,
            rt.total_seconds(),
            rt.build_seconds,
            rt.serve_seconds
        );
    }
    println!("  oracle choice: {}", runtimes[best].name);

    // The engine's planner, online, from a <1% sample.
    let engine = EngineBuilder::new()
        .model(model)
        .register(BmmFactory)
        .register(MaximusFactory::new(maximus_cfg))
        .build()
        .expect("engine assembles");
    let plan = engine.prepare(k).expect("planner runs");
    for e in plan.estimates() {
        println!(
            "  estimate {:<12} {:>8.3}s (from {} sampled users)",
            e.name, e.estimated_total_seconds, e.sampled_users
        );
    }
    let agree = plan.backend_name() == runtimes[best].name;
    println!(
        "  planner choice: {} ({}, decision overhead {:.3}s)",
        plan.backend_name(),
        if agree {
            "matches oracle"
        } else {
            "differs from oracle"
        },
        plan.decision_seconds()
    );

    // The decision is cached: serving twice re-plans zero times.
    let first = engine.execute(&QueryRequest::top_k(k)).expect("serves");
    let second = engine.execute(&QueryRequest::top_k(k)).expect("serves");
    assert_eq!(engine.planner_runs(), 1);
    assert_eq!(first.backend, second.backend);
    println!(
        "  served {} users twice through the cached plan (planner ran {} time)\n",
        first.results.len(),
        engine.planner_runs()
    );
}

fn main() {
    // Netflix-like: flat-ish item norms, diffuse users — BMM territory
    // (Fig. 2, left).
    let netflix_like = reference_models()
        .into_iter()
        .find(|s| s.dataset == "Netflix" && s.training == "BPR" && s.f == 50)
        .unwrap();
    let model = Arc::new(netflix_like.build(1.0));
    let block = netflix_like.scaled_block_size(model.num_items());
    tour("BMM-friendly workload", model, block, 10);

    // R2-like: heavy norm skew, tight user bundles — index territory
    // (Fig. 2, right).
    let r2_like = reference_models()
        .into_iter()
        .find(|s| s.dataset == "R2" && s.training == "NOMAD" && s.f == 50)
        .unwrap();
    let model = Arc::new(r2_like.build(1.0));
    let block = r2_like.scaled_block_size(model.num_items());
    tour("index-friendly workload", model, block, 10);
}
