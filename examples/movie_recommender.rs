//! End-to-end recommender: synthetic ratings → SGD matrix factorization →
//! exact top-K serving with MAXIMUS, including the §III-E dynamic-user path.
//!
//! This walks the full pipeline of the paper's Fig. 1: a ratings matrix is
//! factorized into user/item vectors, and serving top-K recommendations for
//! every user is an exact MIPS problem.
//!
//! ```sh
//! cargo run --release --example movie_recommender
//! ```

use optimus_maximus::data::als::{train_als, AlsConfig};
use optimus_maximus::data::bpr::{auc, train_bpr, BprConfig};
use optimus_maximus::data::sgd::{train_sgd, SgdConfig};
use optimus_maximus::prelude::*;
use std::sync::Arc;

fn main() {
    // --- 1. "Collect" ratings: sample from a hidden ground-truth model. ---
    let truth = synth_model(&SynthConfig {
        num_users: 600,
        num_items: 300,
        num_factors: 8,
        user_clusters: 6,
        user_spread: 0.3,
        seed: 2024,
        ..SynthConfig::default()
    });
    let ratings = RatingsData::from_ground_truth(&truth, 40, 0.15, 7);
    let (train, test) = ratings.split(0.2, 99);
    println!(
        "ratings: {} observed ({} train / {} test), {} users x {} movies",
        ratings.len(),
        train.len(),
        test.len(),
        ratings.num_users,
        ratings.num_items
    );

    // --- 2. Train an explicit-feedback MF model (the paper's *-NOMAD /
    //        *-DSGD models are trained exactly this way, distributed). ---
    let model = train_sgd(
        &train,
        &SgdConfig {
            num_factors: 12,
            epochs: 25,
            ..SgdConfig::default()
        },
    );
    println!(
        "SGD model: train RMSE {:.4}, test RMSE {:.4}",
        train.rmse(&model),
        test.rmse(&model)
    );

    // ALS on the same ratings (the KDD-REF lineage of the paper's models).
    let als_model = train_als(
        &train,
        &AlsConfig {
            num_factors: 12,
            sweeps: 8,
            regularization: 0.05,
            ..AlsConfig::default()
        },
    );
    println!(
        "ALS model: train RMSE {:.4}, test RMSE {:.4}",
        train.rmse(&als_model),
        test.rmse(&als_model)
    );

    // --- 3. Also train an implicit-feedback BPR model for comparison
    //        (the paper's Netflix-BPR family). ---
    let threshold = train.global_mean();
    let bpr_model = train_bpr(
        &train,
        &BprConfig {
            num_factors: 12,
            steps: 120_000,
            regularization: 0.05,
            positive_threshold: threshold,
            ..BprConfig::default()
        },
    );
    println!(
        "BPR model: held-out AUC {:.3}",
        auc(&bpr_model, &test, threshold, 1)
    );

    // --- 4. Serve exact top-10 recommendations through the engine, with
    //        already-rated movies excluded (a recommender never re-surfaces
    //        what the user has seen). ---
    let model =
        Arc::new(MfModel::new("movies-sgd", model.users().clone(), model.items().clone()).unwrap());
    let engine = EngineBuilder::new()
        .model(Arc::clone(&model))
        .register(BmmFactory)
        .register(MaximusFactory::new(MaximusConfig {
            num_clusters: 8,
            block_size: 64,
            ..MaximusConfig::default()
        }))
        .build()
        .expect("engine assembles");

    let watched = ExclusionSet::from_pairs(train.triples.iter().map(|&(u, i, _)| (u as usize, i)));
    let response = engine
        .execute(&QueryRequest::top_k(10).exclude(watched.clone()))
        .expect("valid request");
    println!(
        "\nengine served {} users via {} (planner sampled once, {} watched movies withheld)",
        response.results.len(),
        response.backend,
        train.len(),
    );
    for user in [0usize, 1, 2] {
        let pretty: Vec<String> = response.results[user]
            .iter()
            .take(5)
            .map(|(m, s)| format!("movie {m} ({s:.2})"))
            .collect();
        println!("  user {user}: {}", pretty.join(", "));
        for (m, _) in response.results[user].iter() {
            assert!(
                !watched.for_user(user).contains(&m),
                "user {user} was re-recommended watched movie {m}"
            );
        }
    }

    // Unfiltered serving for the exactness check and the MAXIMUS stats.
    let unfiltered = engine
        .execute(&QueryRequest::top_k(10))
        .expect("valid request");
    check_all_topk(&model, 10, &unfiltered.results, 1e-9).expect("engine serving is exact");
    let maximus = MaximusIndex::build(
        Arc::clone(&model),
        &MaximusConfig {
            num_clusters: 8,
            block_size: 64,
            ..MaximusConfig::default()
        },
    );
    let recs = maximus.query_all(10);
    check_all_topk(&model, 10, &recs, 1e-9).expect("MAXIMUS is exact");
    let stats = maximus.query_stats();
    println!(
        "\nMAXIMUS visits w̄ = {:.1} items per user (of {})",
        stats.avg_items_visited(),
        model.num_items()
    );

    // --- 5. A brand-new user arrives (§III-E): no re-clustering, just
    //        assignment to the nearest centroid and a bound-aware walk. ---
    let new_user: Vec<f64> = model.users().row(0).iter().map(|v| v * 0.9).collect();
    let new_recs = maximus.query_new_vector(&new_user, 5);
    let pretty: Vec<String> = new_recs
        .iter()
        .map(|(m, s)| format!("movie {m} ({s:.2})"))
        .collect();
    println!("\nnew user (no re-clustering): {}", pretty.join(", "));
}
