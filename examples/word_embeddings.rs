//! High-dimensional similarity search over word embeddings — the paper's
//! GloVe-Twitter workload (Table I): a small set of query vectors against a
//! large vocabulary, where the item catalog dwarfs the query set.
//!
//! ```sh
//! cargo run --release --example word_embeddings
//! ```

use optimus_maximus::prelude::*;
use std::sync::Arc;

fn main() {
    // The catalog's GloVe stand-in: per [33], a permutation of the embedding
    // set acts as queries ("users") and the remainder as items.
    let spec = reference_models()
        .into_iter()
        .find(|s| s.dataset == "GloVe" && s.f == 100)
        .expect("GloVe f=100 is in the catalog");
    let model = Arc::new(spec.build(0.5));
    println!(
        "{}: {} query vectors x {} vocabulary entries, f = {}",
        model.name(),
        model.num_users(),
        model.num_items(),
        model.num_factors()
    );

    // Serve the 10 nearest (by inner product) vocabulary entries for every
    // query with each registered backend and compare wall-clock.
    let k = 10;
    let engine = EngineBuilder::new()
        .model(Arc::clone(&model))
        .register(BmmFactory)
        .register(MaximusFactory::default())
        .register(LempFactory::default())
        .build()
        .expect("engine assembles");
    let request = QueryRequest::top_k(k);
    let mut reference: Option<Vec<TopKList>> = None;
    for key in engine.backend_keys() {
        let response = engine.execute_with(key, &request).expect("valid request");
        let build = engine.solver(key).expect("built").build_seconds();
        println!(
            "  {:<12} build {:>7.4}s  serve {:>7.4}s",
            response.backend, build, response.serve_seconds
        );
        match &reference {
            None => {
                check_all_topk(&model, k, &response.results, 1e-9).expect("exact");
                reference = Some(response.results);
            }
            Some(want) => {
                for (u, (got, expect)) in response.results.iter().zip(want).enumerate() {
                    assert_eq!(got.items, expect.items, "user {u} disagrees");
                }
            }
        }
    }

    // Show a few neighborhoods.
    let results = reference.expect("at least one strategy ran");
    println!("\nsample neighborhoods (query -> nearest vocabulary ids):");
    for (q, list) in results.iter().take(3).enumerate() {
        let ids: Vec<String> = list.iter().take(6).map(|(i, _)| i.to_string()).collect();
        println!("  query {q}: {}", ids.join(", "));
    }

    // Embeddings arrive incrementally in practice; serve one unseen vector
    // through MAXIMUS's dynamic-user path and cross-check against brute
    // force.
    let maximus = MaximusIndex::build(Arc::clone(&model), &MaximusConfig::default());
    let novel: Vec<f64> = (0..model.num_factors())
        .map(|j| ((j as f64) * 0.37).sin())
        .collect();
    let fast = maximus.query_new_vector(&novel, 5);
    let probe = Arc::new(
        MfModel::new(
            "probe",
            mips_linalg::Matrix::from_vec(1, model.num_factors(), novel).unwrap(),
            model.items().clone(),
        )
        .unwrap(),
    );
    let slow = BmmSolver::build(probe).query_all(5);
    assert_eq!(fast.items, slow[0].items);
    println!("\nunseen query served exactly via the dynamic-user path (§III-E)");
}
