//! The network front door, end to end: boot an HTTP server over a sharded
//! serving runtime, query it over a real loopback socket, read the metrics
//! rollup, hot-swap the model through the admin endpoint (in-flight
//! requests drain on their pinned epoch), and shut down cleanly.
//!
//! ```sh
//! cargo run --release --example http_serving
//! ```
//!
//! The example exits nonzero on any unexpected response, so CI runs it as
//! the loopback smoke test for the whole wire stack: HTTP parsing, JSON
//! codec, admission control, the swap path, and graceful shutdown.

use optimus_maximus::net::client::Client;
use optimus_maximus::net::json::{self, Json};
use optimus_maximus::prelude::*;
use std::sync::Arc;

fn main() {
    // --- 1. A model, an engine, a serving runtime. ---
    let model = Arc::new(synth_model(&SynthConfig {
        num_users: 400,
        num_items: 300,
        num_factors: 16,
        seed: 7,
        ..SynthConfig::default()
    }));
    let engine = Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(&model))
            .with_default_backends()
            .build()
            .expect("engine assembles"),
    );
    let server = Arc::new(
        ServerBuilder::new()
            .engine(engine)
            .shards(2)
            .workers(2)
            .build()
            .expect("server assembles"),
    );

    // --- 2. The front door: ephemeral port, a swap source for /admin/swap. ---
    let retrained = Arc::new(synth_model(&SynthConfig {
        num_users: 400,
        num_items: 300,
        num_factors: 16,
        seed: 8, // "retrained": same shape, new factors
        ..SynthConfig::default()
    }));
    let swap_model = Arc::clone(&retrained);
    let http = HttpServerBuilder::new()
        .server(Arc::clone(&server))
        .swap_source(move || Ok(Arc::clone(&swap_model)))
        .build()
        .expect("front door binds");
    println!("serving on http://{}", http.local_addr());

    // --- 3. A query over the wire. ---
    let mut client = Client::connect(http.local_addr()).expect("connect");
    let response = client
        .request("POST", "/query", Some("{\"k\": 5, \"users\": [0, 7, 42]}"))
        .expect("query round trip");
    assert_eq!(response.status, 200, "{}", response.body);
    let doc = json::parse(&response.body).expect("valid response JSON");
    let results = doc.get("results").and_then(Json::as_arr).expect("results");
    assert_eq!(results.len(), 3);
    println!(
        "top-5 for user 0 (epoch {}, backend {}): {}",
        doc.get("epoch").and_then(Json::as_u64).unwrap(),
        doc.get("backend").and_then(Json::as_str).unwrap(),
        results[0]
            .get("items")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|i| i.as_u64().unwrap().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );

    // --- 4. Bad requests are typed 4xx, not hangs or panics. ---
    let bad = client
        .request("POST", "/query", Some("{\"k\": 0}"))
        .expect("error round trip");
    assert_eq!(bad.status, 400);
    println!(
        "k=0 answers {}: {}",
        bad.status,
        json::parse(&bad.body)
            .unwrap()
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
    );

    // --- 5. The metrics rollup, served as JSON. ---
    let metrics = client.request("GET", "/metrics", None).expect("metrics");
    assert_eq!(metrics.status, 200);
    let doc = json::parse(&metrics.body).expect("valid metrics JSON");
    let completed = doc
        .get("server")
        .and_then(|s| s.get("completed"))
        .and_then(Json::as_u64)
        .expect("server.completed");
    let accepted = doc
        .get("net")
        .and_then(|n| n.get("accepted"))
        .and_then(Json::as_u64)
        .expect("net.accepted");
    println!("metrics: {completed} completed, {accepted} connection(s) accepted");

    // --- 6. Hot swap through the admin endpoint. ---
    let swap = client
        .request("POST", "/admin/swap", None)
        .expect("swap round trip");
    assert_eq!(swap.status, 200, "{}", swap.body);
    let doc = json::parse(&swap.body).expect("valid swap JSON");
    let epoch = doc.get("epoch").and_then(Json::as_u64).expect("new epoch");
    println!("swapped to epoch {epoch} (graceful: in-flight requests finish on their old epoch)");

    // New queries see the new epoch.
    let response = client
        .request("POST", "/query", Some("{\"k\": 5, \"users\": [0]}"))
        .expect("post-swap query");
    assert_eq!(response.status, 200);
    let served_epoch = json::parse(&response.body)
        .unwrap()
        .get("epoch")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(served_epoch, epoch, "new admissions serve the new model");

    // --- 7. Clean shutdown: drain, close, report. ---
    let net = http.shutdown().expect("clean shutdown");
    assert_eq!(net.responses_5xx, 0, "no server errors during the tour");
    println!(
        "shutdown: {} request(s), {} responses 2xx, {} rejected, {} swap(s)",
        net.http_requests, net.responses_2xx, net.rejected_overload, net.admin_swaps
    );
}
