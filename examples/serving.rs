//! Serving concurrent traffic: the sharded runtime with micro-batching.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! Where the other examples call `Engine::execute` one request at a time,
//! this one stands up a `MipsServer` — user shards, a worker pool, a
//! bounded submission queue — and pushes a flood of single-user requests
//! through it, then reads the runtime's own metrics back: throughput,
//! p50/p99 latency, and how much the micro-batcher coalesced.

use optimus_maximus::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), MipsError> {
    let model = Arc::new(synth_model(&SynthConfig {
        num_users: 3000,
        num_items: 2000,
        num_factors: 64,
        ..SynthConfig::default()
    }));

    // The engine stays the single source of truth: model, backends, and
    // the OPTIMUS planner. The server *fronts* it, so direct
    // `engine.execute` calls and served traffic share plans and solvers.
    let engine = Arc::new(
        EngineBuilder::new()
            .model(Arc::clone(&model))
            .with_default_backends()
            .build()?,
    );

    let server = ServerBuilder::new()
        .engine(Arc::clone(&engine))
        .shards(4) // contiguous user ranges, one ShardEngine each
        .workers(4) // persistent pool; any worker serves any shard
        .queue_capacity(1024) // backpressure bound, in sub-requests
        .max_batch(32) // micro-batch size flush threshold
        .batch_window(Duration::from_micros(200)) // deadline flush
        .build()?;
    println!("server: {server:?}");
    println!("shard bounds: {:?}\n", server.shard_bounds());

    // A flood of single-user requests from four front-end threads — the
    // traffic shape that makes per-request dispatch slowest, and that the
    // micro-batcher coalesces back into batched GEMM.
    let requests = 2000usize;
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..4 {
            let server = &server;
            scope.spawn(move || {
                for i in 0..requests / 4 {
                    let user = (t + 4 * i * 7) % 3000;
                    let response = server
                        .execute(&QueryRequest::top_k(10).users(vec![user]))
                        .expect("serves");
                    assert_eq!(response.results.len(), 1);
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();

    let metrics = server.metrics();
    println!(
        "served {} requests in {:.2}s — {:.0} req/s",
        metrics.completed,
        elapsed,
        requests as f64 / elapsed
    );
    println!(
        "latency: p50 {:.0}us  p99 {:.0}us  max {:.0}us",
        metrics.latency.p50_us, metrics.latency.p99_us, metrics.latency.max_us
    );
    println!(
        "micro-batching: {} solver calls for {} sub-requests ({:.1} per batch)",
        metrics.batches(),
        metrics.completed,
        metrics.mean_batch_size()
    );
    for shard in &metrics.shards {
        println!(
            "  shard {} (users {:?}): {} sub-requests, {} batches, busy {:.2}s",
            shard.shard, shard.users, shard.completed, shard.batches, shard.busy_seconds
        );
    }

    // Requests that straddle shards are split and reassembled invisibly —
    // the response is bit-identical to a sequential engine call.
    let everyone = server.execute(&QueryRequest::top_k(5))?;
    let sequential = engine.execute(&QueryRequest::top_k(5))?;
    assert_eq!(everyone.results, sequential.results);
    println!("\nall-users request across shards matches Engine::execute exactly");

    // Backpressure is a typed error, not a hang: `try_submit` bounces when
    // the bounded queue is full.
    match server.try_submit(&QueryRequest::top_k(5)) {
        Ok(handle) => {
            handle.wait()?;
            println!("try_submit accepted (queue had room)");
        }
        Err(MipsError::ServerOverloaded { capacity }) => {
            println!("bounced by backpressure at capacity {capacity}");
        }
        Err(other) => return Err(other),
    }

    // Hot model swap: a "retrained" model (here: a different seed, and
    // more users — the server re-chunks its shards) rolls in atomically
    // while the server keeps serving. Requests in flight at the swap
    // finish on the epoch they started under; new requests see the new
    // model and report its epoch.
    let retrained = Arc::new(synth_model(&SynthConfig {
        num_users: 4000,
        num_items: 2000,
        num_factors: 64,
        seed: 7,
        ..SynthConfig::default()
    }));
    let new_epoch = engine.swap_model(Arc::clone(&retrained))?;
    let response = server.execute(&QueryRequest::top_k(10).users(vec![3500]))?;
    println!(
        "\nswapped to epoch {new_epoch}: user 3500 (new in this model) served \
         from epoch {} via {}",
        response.epoch, response.backend
    );
    let metrics = server.metrics();
    println!(
        "server followed the swap: epoch {}, {} swap(s), shard bounds now {:?}",
        metrics.epoch,
        metrics.swaps,
        server.shard_bounds()
    );
    Ok(())
}
