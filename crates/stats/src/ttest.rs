//! Incremental one-sample t-test: OPTIMUS's early-stopping rule (§IV-A).
//!
//! OPTIMUS first measures the mean per-user BMM query time, then streams
//! per-user *index* query times into this test. As soon as the index sample
//! mean is significantly different from the BMM mean (two-sided p below the
//! significance threshold), the optimizer stops sampling and picks whichever
//! side is faster. The paper reports that on Netflix f=10, K=1 this let
//! OPTIMUS examine only 4 % of the full sample when comparing FEXIPRO
//! against BMM.

use crate::tdist::two_sided_p_value;
use crate::welford::RunningStats;

/// The state of the incremental test after an observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TTestDecision {
    /// Not enough evidence yet — keep sampling.
    Continue,
    /// Sample mean is significantly *below* the reference mean.
    SignificantlyBelow,
    /// Sample mean is significantly *above* the reference mean.
    SignificantlyAbove,
}

/// An incremental one-sample t-test against a fixed reference mean.
#[derive(Debug, Clone)]
pub struct OneSampleTTest {
    reference_mean: f64,
    alpha: f64,
    min_samples: u64,
    stats: RunningStats,
}

impl OneSampleTTest {
    /// Creates a test against `reference_mean` at significance level `alpha`
    /// (the paper uses 0.05).
    ///
    /// The test refuses to decide before `min_samples` observations so a
    /// lucky first few measurements cannot trigger a premature verdict.
    ///
    /// # Panics
    /// Panics unless `0 < alpha < 1` and `min_samples ≥ 2`.
    pub fn new(reference_mean: f64, alpha: f64, min_samples: u64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        assert!(min_samples >= 2, "t-test needs at least 2 samples");
        OneSampleTTest {
            reference_mean,
            alpha,
            min_samples,
            stats: RunningStats::new(),
        }
    }

    /// Adds one observation and returns the current decision.
    pub fn push(&mut self, x: f64) -> TTestDecision {
        self.stats.push(x);
        self.decision()
    }

    /// The decision given all observations so far.
    pub fn decision(&self) -> TTestDecision {
        let n = self.stats.count();
        if n < self.min_samples {
            return TTestDecision::Continue;
        }
        let se = self.stats.std_error();
        let diff = self.stats.mean() - self.reference_mean;
        if se == 0.0 {
            // Zero variance: every observation identical. Decide directly.
            return if diff < 0.0 {
                TTestDecision::SignificantlyBelow
            } else if diff > 0.0 {
                TTestDecision::SignificantlyAbove
            } else {
                TTestDecision::Continue
            };
        }
        let t = diff / se;
        let p = two_sided_p_value(t, (n - 1) as f64);
        if p < self.alpha {
            if diff < 0.0 {
                TTestDecision::SignificantlyBelow
            } else {
                TTestDecision::SignificantlyAbove
            }
        } else {
            TTestDecision::Continue
        }
    }

    /// Observations consumed so far.
    pub fn samples_used(&self) -> u64 {
        self.stats.count()
    }

    /// Current sample mean.
    pub fn sample_mean(&self) -> f64 {
        self.stats.mean()
    }

    /// The reference mean the sample is tested against.
    pub fn reference_mean(&self) -> f64 {
        self.reference_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obvious_difference_detected_quickly() {
        // Index times ~10 µs vs BMM reference 100 µs: should stop fast.
        let mut test = OneSampleTTest::new(100.0, 0.05, 3);
        let mut decided_at = None;
        for i in 0..50u64 {
            let x = 10.0 + (i % 3) as f64; // 10, 11, 12, ...
            if test.push(x) == TTestDecision::SignificantlyBelow {
                decided_at = Some(test.samples_used());
                break;
            }
        }
        let n = decided_at.expect("should reach significance");
        assert!(n <= 5, "took {n} samples for a 10x difference");
    }

    #[test]
    fn detects_above_reference() {
        let mut test = OneSampleTTest::new(1.0, 0.05, 3);
        for _ in 0..10 {
            test.push(5.0 + 0.01);
            test.push(5.0 - 0.01);
        }
        assert_eq!(test.decision(), TTestDecision::SignificantlyAbove);
    }

    #[test]
    fn similar_means_keep_sampling() {
        // Observations straddle the reference mean symmetrically.
        let mut test = OneSampleTTest::new(10.0, 0.05, 3);
        for i in 0..100 {
            let x = if i % 2 == 0 { 9.0 } else { 11.0 };
            assert_eq!(test.push(x), TTestDecision::Continue, "i={i}");
        }
    }

    #[test]
    fn respects_min_samples() {
        let mut test = OneSampleTTest::new(100.0, 0.05, 10);
        for i in 0..9 {
            assert_eq!(test.push(1.0 + i as f64 * 0.01), TTestDecision::Continue);
        }
        assert_eq!(test.push(1.05), TTestDecision::SignificantlyBelow);
    }

    #[test]
    fn zero_variance_sample_decides_directly() {
        let mut below = OneSampleTTest::new(10.0, 0.05, 2);
        below.push(1.0);
        assert_eq!(below.push(1.0), TTestDecision::SignificantlyBelow);

        let mut equal = OneSampleTTest::new(1.0, 0.05, 2);
        equal.push(1.0);
        assert_eq!(equal.push(1.0), TTestDecision::Continue);
    }

    #[test]
    fn tighter_alpha_needs_more_evidence() {
        // Same stream: the stricter test must not decide before the looser one.
        let stream: Vec<f64> = (0..40)
            .map(|i| 8.0 + ((i * 37) % 17) as f64 * 0.1)
            .collect();
        let mut loose = OneSampleTTest::new(10.0, 0.20, 3);
        let mut strict = OneSampleTTest::new(10.0, 0.001, 3);
        let mut loose_at = None;
        let mut strict_at = None;
        for (i, &x) in stream.iter().enumerate() {
            if loose.push(x) != TTestDecision::Continue && loose_at.is_none() {
                loose_at = Some(i);
            }
            if strict.push(x) != TTestDecision::Continue && strict_at.is_none() {
                strict_at = Some(i);
            }
        }
        let l = loose_at.expect("loose test should decide");
        if let Some(s) = strict_at {
            assert!(s >= l, "strict decided at {s}, loose at {l}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = OneSampleTTest::new(1.0, 1.5, 3);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_tiny_min_samples() {
        let _ = OneSampleTTest::new(1.0, 0.05, 1);
    }
}
