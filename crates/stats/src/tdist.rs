//! Student-t distribution CDF and p-values.

use crate::special::incomplete_beta;

/// CDF of the Student-t distribution with `df` degrees of freedom.
///
/// Uses the standard identity relating the t CDF to the regularized
/// incomplete beta function.
///
/// # Panics
/// Panics if `df ≤ 0` or `t` is NaN.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf: df must be positive");
    assert!(!t.is_nan(), "student_t_cdf: t is NaN");
    if t.is_infinite() {
        return if t > 0.0 { 1.0 } else { 0.0 };
    }
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for an observed t statistic with `df` degrees of freedom:
/// `P(|T| ≥ |t|)`.
pub fn two_sided_p_value(t: f64, df: f64) -> f64 {
    let tail = 1.0 - student_t_cdf(t.abs(), df);
    (2.0 * tail).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_at_zero_is_half() {
        for &df in &[1.0, 2.0, 5.0, 30.0, 1000.0] {
            assert!((student_t_cdf(0.0, df) - 0.5).abs() < 1e-12, "df={df}");
        }
    }

    #[test]
    fn cdf_symmetry() {
        for &df in &[1.0, 3.0, 10.0, 100.0] {
            for &t in &[0.5, 1.0, 2.0, 5.0] {
                let upper = student_t_cdf(t, df);
                let lower = student_t_cdf(-t, df);
                assert!((upper + lower - 1.0).abs() < 1e-12, "df={df} t={t}");
            }
        }
    }

    #[test]
    fn cdf_matches_tabulated_quantiles() {
        // Standard t-table critical values: CDF(t_crit) = 0.975.
        // df = 1 → 12.706, df = 5 → 2.571, df = 10 → 2.228, df = 30 → 2.042.
        for &(df, t_crit) in &[(1.0, 12.706), (5.0, 2.571), (10.0, 2.228), (30.0, 2.042)] {
            let p = student_t_cdf(t_crit, df);
            assert!((p - 0.975).abs() < 5e-4, "df={df}: CDF({t_crit}) = {p}");
        }
        // One-sided 95 %: df = 5 → 2.015, df = 20 → 1.725.
        for &(df, t_crit) in &[(5.0, 2.015), (20.0, 1.725)] {
            let p = student_t_cdf(t_crit, df);
            assert!((p - 0.95).abs() < 5e-4, "df={df}: CDF({t_crit}) = {p}");
        }
    }

    #[test]
    fn cauchy_special_case() {
        // df = 1 is the Cauchy distribution: CDF(t) = 1/2 + atan(t)/π.
        for &t in &[-3.0_f64, -1.0, 0.5, 2.0, 10.0] {
            let expect = 0.5 + t.atan() / std::f64::consts::PI;
            assert!((student_t_cdf(t, 1.0) - expect).abs() < 1e-10, "t={t}");
        }
    }

    #[test]
    fn large_df_approaches_normal() {
        // At df = 10⁶ the t CDF is the standard normal CDF to ~4 digits.
        // Φ(1.96) ≈ 0.975.
        let p = student_t_cdf(1.96, 1e6);
        assert!((p - 0.975).abs() < 1e-3);
    }

    #[test]
    fn p_value_behaviour() {
        assert!((two_sided_p_value(0.0, 10.0) - 1.0).abs() < 1e-12);
        // Large |t| → tiny p.
        assert!(two_sided_p_value(10.0, 30.0) < 1e-8);
        // Symmetric in sign.
        assert!((two_sided_p_value(2.5, 7.0) - two_sided_p_value(-2.5, 7.0)).abs() < 1e-14);
        // df = 10, t = 2.228 → p ≈ 0.05.
        assert!((two_sided_p_value(2.228, 10.0) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn infinite_t_saturates() {
        assert_eq!(student_t_cdf(f64::INFINITY, 5.0), 1.0);
        assert_eq!(student_t_cdf(f64::NEG_INFINITY, 5.0), 0.0);
    }

    #[test]
    fn cdf_monotone_in_t() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let t = i as f64 * 0.25;
            let p = student_t_cdf(t, 7.0);
            assert!(p >= prev - 1e-14);
            prev = p;
        }
    }
}
