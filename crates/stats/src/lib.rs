//! Incremental statistics for the OPTIMUS optimizer.
//!
//! §IV-A of the paper uses a *one-sample t-test* applied incrementally to
//! per-user query times: once the sampled index query times are significantly
//! above or below the mean BMM query time (p < 0.05), OPTIMUS stops sampling
//! early and commits to the faster strategy. This crate provides the three
//! pieces that requires, with no external dependencies:
//!
//! * [`welford::RunningStats`] — numerically stable streaming mean/variance,
//! * [`tdist`] — the Student-t CDF via the regularized incomplete beta
//!   function ([`special`]),
//! * [`ttest::OneSampleTTest`] — the incremental test itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod special;
pub mod tdist;
pub mod ttest;
pub mod welford;

pub use tdist::{student_t_cdf, two_sided_p_value};
pub use ttest::{OneSampleTTest, TTestDecision};
pub use welford::RunningStats;
