//! Special functions backing the Student-t distribution.
//!
//! Implements `ln Γ` (Lanczos) and the regularized incomplete beta function
//! `I_x(a, b)` (Lentz's continued fraction), the standard numerical recipes
//! for CDF evaluation. Accuracy on the t-test's operating range (p-values
//! between 1e-6 and 0.5, degrees of freedom 1..10⁶) is far better than the
//! 5 % significance threshold requires.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~15 significant digits for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    // Coefficients for the g=7, n=9 Lanczos approximation.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the series in its accurate range.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The regularized incomplete beta function `I_x(a, b)`.
///
/// Uses the symmetry `I_x(a,b) = 1 − I_{1−x}(b,a)` to keep the continued
/// fraction in its rapidly converging region.
///
/// # Panics
/// Panics if `a ≤ 0`, `b ≤ 0`, or `x ∉ [0, 1]`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete_beta: a, b must be positive");
    assert!(
        (0.0..=1.0).contains(&x),
        "incomplete_beta: x must be in [0,1]"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz's modified continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-15;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-11);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-11);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x Γ(x) across a range of arguments.
        for &x in &[0.1, 0.7, 1.3, 2.5, 10.0, 100.5] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x = {x}");
        }
    }

    #[test]
    #[should_panic(expected = "positive argument")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1, 1) = x (uniform distribution CDF).
        for &x in &[0.1, 0.25, 0.5, 0.9] {
            assert!((incomplete_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (10.0, 3.0, 0.45)] {
            let lhs = incomplete_beta(a, b, x);
            let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
    }

    #[test]
    fn incomplete_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.5}(0.5, 0.5) = 0.5 (arcsine).
        assert!((incomplete_beta(2.0, 2.0, 0.5) - 0.5).abs() < 1e-12);
        assert!((incomplete_beta(0.5, 0.5, 0.5) - 0.5).abs() < 1e-12);
        // Binomial identity: I_x(1, n) = 1 − (1−x)^n.
        let x = 0.2;
        let n = 4.0;
        assert!((incomplete_beta(1.0, n, x) - (1.0 - (1.0 - x).powf(n))).abs() < 1e-12);
    }

    #[test]
    fn incomplete_beta_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..=20 {
            let x = i as f64 / 20.0;
            let v = incomplete_beta(3.0, 4.0, x);
            assert!(v >= prev - 1e-14);
            prev = v;
        }
    }
}
