//! Streaming mean/variance via Welford's algorithm.
//!
//! OPTIMUS feeds per-user query times into this accumulator one observation
//! at a time; Welford's update is numerically stable even when the times span
//! orders of magnitude (index hits vs. full scans).

/// Numerically stable running mean, variance, min and max.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every observation in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`0` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean (`std_dev / √n`).
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zeroed() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
    }

    #[test]
    fn matches_closed_form_on_small_sample() {
        let mut s = RunningStats::new();
        s.extend(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4.0; sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let mut s = RunningStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 3.5);
        assert_eq!(s.max(), 3.5);
    }

    #[test]
    fn stable_under_large_offsets() {
        // Classic catastrophic-cancellation scenario for the naive two-pass
        // formula: tiny variance around a huge mean.
        let mut s = RunningStats::new();
        let base = 1e12;
        for i in 0..1000 {
            s.push(base + (i % 2) as f64);
        }
        assert!((s.variance() - 0.2503).abs() < 1e-2);
        assert!((s.mean() - (base + 0.5)).abs() < 1e-3);
    }

    #[test]
    fn incremental_equals_batch() {
        let xs: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 10.0).collect();
        let mut a = RunningStats::new();
        for &x in &xs {
            a.push(x);
        }
        let mut b = RunningStats::new();
        b.extend(&xs);
        assert_eq!(a.count(), b.count());
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.variance() - b.variance()).abs() < 1e-12);
    }
}
