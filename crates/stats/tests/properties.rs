//! Property tests for the statistics substrate.

use mips_stats::{student_t_cdf, two_sided_p_value, OneSampleTTest, RunningStats, TTestDecision};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The CDF is a valid distribution function: in [0,1], symmetric around
    /// 0, monotone.
    #[test]
    fn t_cdf_is_a_cdf(t in -50.0f64..50.0, df in 1.0f64..200.0) {
        let p = student_t_cdf(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
        let q = student_t_cdf(-t, df);
        prop_assert!((p + q - 1.0).abs() < 1e-9);
        let p2 = student_t_cdf(t + 0.5, df);
        prop_assert!(p2 >= p - 1e-12);
    }

    /// Two-sided p-values live in [0,1] and shrink as |t| grows.
    #[test]
    fn p_values_behave(t in 0.0f64..30.0, df in 1.0f64..100.0) {
        let p = two_sided_p_value(t, df);
        prop_assert!((0.0..=1.0).contains(&p));
        let p_bigger = two_sided_p_value(t + 1.0, df);
        prop_assert!(p_bigger <= p + 1e-12);
    }

    /// Welford matches the two-pass reference on arbitrary data.
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e4f64..1e4, 2..200)) {
        let mut acc = RunningStats::new();
        acc.extend(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
            / (xs.len() - 1) as f64;
        prop_assert!((acc.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((acc.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
    }

    /// The t-test's verdict direction always matches the sign of the actual
    /// mean difference when it decides.
    #[test]
    fn ttest_direction_is_consistent(offset in -5.0f64..5.0,
                                     noise in 0.01f64..2.0,
                                     n in 8usize..60) {
        let mut test = OneSampleTTest::new(0.0, 0.05, 4);
        let mut state = 12345u64;
        let mut decided = None;
        let mut sum = 0.0;
        let mut count = 0.0;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
            let x = offset + u * noise;
            sum += x;
            count += 1.0;
            let d = test.push(x);
            if d != TTestDecision::Continue {
                decided = Some(d);
                break;
            }
        }
        if let Some(d) = decided {
            let sample_mean = sum / count;
            match d {
                TTestDecision::SignificantlyBelow => prop_assert!(sample_mean < 0.0),
                TTestDecision::SignificantlyAbove => prop_assert!(sample_mean > 0.0),
                TTestDecision::Continue => unreachable!(),
            }
        }
    }
}
