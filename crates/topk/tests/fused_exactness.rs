//! Property suite: the fused SIMD GEMM→top-k path must be **bit-identical**
//! to the unfused scalar reference — scores and tie-broken id order — and
//! the forced-scalar fallback must run the same suite unchanged.
//!
//! Two layers of comparison:
//!
//! 1. `naive + rows_topk` reference on *exactly representable* inputs
//!    (values quantized to multiples of 1/8 with magnitude ≤ 2): every
//!    product and partial sum is exact in f64, so any accumulation order —
//!    four-lane dot chains, packed micro-kernel chains, SIMD lanes — must
//!    produce the same bits. Quantization also makes score ties frequent,
//!    exercising the deterministic smaller-id tie-break across the fused
//!    threshold shortcut.
//! 2. SIMD-vs-scalar on *unconstrained* random inputs: the dispatched
//!    kernels promise bit-identity with the scalar kernel set (see
//!    `mips_linalg::simd`), so the two fused runs must agree bitwise even
//!    where the naive reference (different accumulation order) legitimately
//!    differs in the last ulp.
//!
//! Shapes deliberately avoid the tile sizes: m, n not multiples of MR=4 /
//! NR=8, f not a multiple of 4, plus k ∈ {0, 1, n} edges and tiny custom
//! block sizes that force partial tiles everywhere.

use mips_linalg::simd::Kernel;
use mips_linalg::{BlockSizes, CacheConfig, GemmScratch, Matrix};
use mips_topk::fused::{gemm_nt_topk, gemm_nt_topk_with};
use mips_topk::{rows_topk, TopKList};
use proptest::prelude::*;

fn quantized_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    // Multiples of 1/8 in [-2, 2]: products are multiples of 1/64 with
    // magnitude ≤ 4; sums of ≤ 1000 of them stay exactly representable.
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 40) % 33) as f64 * 0.125 - 2.0
    })
}

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

/// Bitwise equality of whole result sets (ids and score bits).
fn assert_bit_identical(got: &[TopKList], want: &[TopKList], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: row count");
    for (u, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.items, w.items, "{label}: ids for row {u}");
        assert_eq!(
            g.scores.len(),
            w.scores.len(),
            "{label}: score count for row {u}"
        );
        for (a, b) in g.scores.iter().zip(&w.scores) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label}: score bits for row {u}: {a:e} vs {b:e}"
            );
        }
    }
}

/// Every kernel set this host can run; scalar is always present, so the
/// whole suite doubles as the forced-scalar-fallback run.
fn kernels_under_test() -> Vec<Kernel> {
    let mut ks = vec![Kernel::scalar()];
    ks.extend(Kernel::avx2());
    ks.extend(Kernel::neon());
    ks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact-arithmetic inputs: fused top-k under every kernel must be
    /// bit-identical to the naive-GEMM + rows_topk reference, for odd
    /// shapes and k covering {0, 1, n} plus interior values.
    #[test]
    fn fused_bit_identical_to_naive_reference(m in 1usize..14,
                                              n in 1usize..40,
                                              f in 1usize..23,
                                              seed in 0u64..1000) {
        // Steer away from tile-friendly shapes: the +1s break multiples of
        // MR/NR/4 half the time, and the strategy ranges cover the rest.
        let a = quantized_matrix(m, f, seed.wrapping_mul(3) + 1);
        let b = quantized_matrix(n, f, seed.wrapping_mul(7) + 2);
        let scores = mips_linalg::naive_gemm_nt(&a, &b);
        let blocks = BlockSizes::for_scalar::<f64>(&CacheConfig::default());
        for k in [0usize, 1, n / 2, n] {
            let want = rows_topk(scores.as_slice(), m, n, k);
            for kern in kernels_under_test() {
                let mut scratch = GemmScratch::new();
                let got = gemm_nt_topk_with(
                    &kern, &blocks, (&a).into(), (&b).into(), k, &mut scratch,
                );
                assert_bit_identical(&got, &want,
                    &format!("{} m={m} n={n} f={f} k={k}", kern.name()));
            }
        }
    }

    /// Unconstrained inputs: the SIMD fused path must match the
    /// forced-scalar fused path bit for bit (the dispatch contract), on
    /// shapes that force partial tiles via tiny custom block sizes.
    #[test]
    fn simd_fused_bit_identical_to_forced_scalar(m in 1usize..11,
                                                 n in 1usize..60,
                                                 f in 1usize..40,
                                                 k in 0usize..12,
                                                 seed in 0u64..1000) {
        let a = random_matrix(m, f, seed + 11);
        let b = random_matrix(n, f, seed + 23);
        // Tiny blocks: many partial MR/NR tiles and several KC passes.
        let blocks = BlockSizes { mc: 4, kc: 5, nc: 16 };
        let mut scratch = GemmScratch::new();
        let want = gemm_nt_topk_with(
            &Kernel::scalar(), &blocks, (&a).into(), (&b).into(), k, &mut scratch,
        );
        for kern in kernels_under_test() {
            let got = gemm_nt_topk_with(
                &kern, &blocks, (&a).into(), (&b).into(), k, &mut scratch,
            );
            assert_bit_identical(&got, &want,
                &format!("{} vs scalar m={m} n={n} f={f} k={k}", kern.name()));
        }
    }

    /// The default-dispatch entry (whatever `MIPS_KERNEL`/detection chose)
    /// agrees with the explicit scalar run on quantized ties.
    #[test]
    fn active_dispatch_matches_scalar_on_ties(m in 1usize..8,
                                              n in 2usize..30,
                                              f in 1usize..9,
                                              k in 1usize..10,
                                              seed in 0u64..500) {
        let a = quantized_matrix(m, f, seed + 5);
        let b = quantized_matrix(n, f, seed + 9);
        let mut scratch = GemmScratch::new();
        let got = gemm_nt_topk((&a).into(), (&b).into(), k, &mut scratch);
        let blocks = BlockSizes::for_scalar::<f64>(&CacheConfig::default());
        let want = gemm_nt_topk_with(
            &Kernel::scalar(), &blocks, (&a).into(), (&b).into(), k, &mut scratch,
        );
        assert_bit_identical(&got, &want, "active vs scalar");
    }
}

/// Deterministic (non-property) spot checks of the exact k edges on shapes
/// that sit just off every tile boundary — kept outside proptest so they
/// always run even with `PROPTEST_CASES=0`.
#[test]
fn odd_shape_k_edges_all_kernels() {
    let blocks = BlockSizes::for_scalar::<f64>(&CacheConfig::default());
    for &(m, n, f) in &[
        (1usize, 1usize, 1usize),
        (5, 9, 3),
        (7, 17, 6),
        (13, 33, 50),
    ] {
        let a = quantized_matrix(m, f, 77);
        let b = quantized_matrix(n, f, 99);
        let scores = mips_linalg::naive_gemm_nt(&a, &b);
        for k in [0usize, 1, n, n + 5] {
            let want = rows_topk(scores.as_slice(), m, n, k);
            for kern in kernels_under_test() {
                let mut scratch = GemmScratch::new();
                let got =
                    gemm_nt_topk_with(&kern, &blocks, (&a).into(), (&b).into(), k, &mut scratch);
                assert_bit_identical(&got, &want, &format!("{} {m}x{n}x{f} k={k}", kern.name()));
            }
        }
    }
}
