//! Property tests: heap-based selection must agree with a full sort.

use mips_topk::{row_topk, TopKHeap};
use proptest::prelude::*;

fn sort_reference(scores: &[f64], k: usize) -> (Vec<u32>, Vec<f64>) {
    let mut pairs: Vec<(f64, u32)> = scores
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as u32))
        .collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    pairs.truncate(k);
    (
        pairs.iter().map(|p| p.1).collect(),
        pairs.iter().map(|p| p.0).collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn heap_matches_sort(scores in proptest::collection::vec(-1000.0f64..1000.0, 0..300),
                         k in 0usize..40) {
        let got = row_topk(&scores, k);
        let (items, want_scores) = sort_reference(&scores, k);
        prop_assert_eq!(&got.items, &items);
        prop_assert_eq!(&got.scores, &want_scores);
        prop_assert!(got.is_sorted() || got.len() < 2);
    }

    /// With heavy ties (quantized scores) determinism must still hold.
    #[test]
    fn heap_matches_sort_with_ties(raw in proptest::collection::vec(0u8..4, 1..200),
                                   k in 1usize..20) {
        let scores: Vec<f64> = raw.iter().map(|&v| v as f64).collect();
        let got = row_topk(&scores, k);
        let (items, _) = sort_reference(&scores, k);
        prop_assert_eq!(got.items, items);
    }

    /// The threshold never decreases as entries stream in.
    #[test]
    fn threshold_is_monotone(scores in proptest::collection::vec(-100.0f64..100.0, 1..100),
                             k in 1usize..10) {
        let mut heap = TopKHeap::new(k);
        let mut prev = heap.threshold();
        for (i, &s) in scores.iter().enumerate() {
            heap.push(s, i as u32);
            let t = heap.threshold();
            prop_assert!(t >= prev, "threshold decreased: {prev} -> {t}");
            prev = t;
        }
    }

    /// Merging two disjoint halves equals selecting over the concatenation.
    #[test]
    fn merge_equals_global(scores in proptest::collection::vec(-50.0f64..50.0, 2..120),
                           k in 1usize..12) {
        let mid = scores.len() / 2;
        let left = row_topk(&scores[..mid], k);
        let mut right = row_topk(&scores[mid..], k);
        // Shift right-half ids to global positions.
        right.items.iter_mut().for_each(|i| *i += mid as u32);
        let merged = left.merge(&right, k);
        let global = row_topk(&scores, k);
        prop_assert_eq!(merged.items, global.items);
    }
}
