//! Int8 screen-then-rescore: exact integer scan, exact f64 top-k.
//!
//! The tier below [`crate::screen`]: where the f32 screen halves the scan
//! bytes, the int8 screen cuts them 8× against f64 (and 4× against f32) and
//! swaps the FMA pipes for the wider integer multiply-add pipes:
//!
//! 1. **Screen** — for every (user, item) pair compute the integer dot
//!    `D = q(u)·q(i)` of the symmetric int8 codes
//!    ([`mips_linalg::quant::quantize_row_i8`]) with the pipelined
//!    [`mips_linalg::simd::Kernel::dot_i8_quad`] kernel, reconstruct the
//!    screen score `ŝ = D·(1/s_u)·(1/s_i)`, and widen it into
//!    `[ŝ − env, ŝ + env]` with
//!    `env = a_u·(1/s_i) + b_u·‖i‖₁`, the per-pair envelope from
//!    [`mips_linalg::i8_screen_envelope_parts`] that bounds the total
//!    quantization error against the exact score. A per-user bound heap
//!    retains the `k` largest *lower* bounds; any item whose *upper* bound
//!    reaches that heap's threshold is collected as a candidate.
//! 2. **Rescore** — recompute each surviving candidate's score in f64 with
//!    the GEMM per-element reduction
//!    ([`mips_linalg::simd::Kernel::dot_seq4`]) and offer it to the
//!    caller's heap.
//!
//! The no-loss argument is the same bound-heap induction as the f32
//! screen's (see [`crate::screen`] module docs); only the envelope changes.
//! One property is *stronger* here: the integer dot is exact in `i32`
//! under every accumulation order (guarded by
//! [`mips_linalg::I8_DOT_MAX_LEN`]), so every kernel set screens with
//! bit-identical scores and collects the identical candidate set — the
//! envelope covers quantization only, not kernel-dependent rounding. And
//! because every reported score comes from the f64 rescore with the same
//! reduction order as the pure-f64 GEMM path, the i8 mode's results are
//! **bit-identical** to f64-direct: same scores, same ids, same tie-breaks.
//!
//! Callers must gate on their mirror's usability
//! (`mips_data::MirrorI8::is_usable`): the scan assumes every scale and L1
//! norm is finite.

use crate::fused::ColumnIds;
use crate::heap::TopKHeap;
use mips_linalg::simd::{self, Kernel};
use mips_linalg::{i8_screen_envelope_parts, RowBlock};

/// Reusable buffers for [`screen_i8_topk_into_heaps_with`]: the per-user
/// bound heaps and candidate lists. Own one per query loop / worker thread.
/// (No GEMM scratch: the integer scan reads the packed code rows directly —
/// at 1 byte per coordinate the item block is already cache-friendly.)
#[derive(Debug, Default)]
pub struct ScreenI8Scratch {
    bound_heaps: Vec<TopKHeap>,
    candidates: Vec<Vec<(u32, f64)>>,
}

impl ScreenI8Scratch {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> ScreenI8Scratch {
        ScreenI8Scratch::default()
    }
}

/// The int8 user side of the screen: row-major codes plus the per-row
/// quantization metadata the envelope's user coefficients need. Borrowed
/// straight from `mips_data::MirrorI8` or from a backend's re-gathered copy.
#[derive(Debug, Clone, Copy)]
pub struct QuantUsers<'a> {
    /// Row-major int8 codes, `rows × f`.
    pub codes: &'a [i8],
    /// Per-row quantization scale `s_u` (codes = round(value · s_u)).
    pub scales: &'a [f64],
    /// Per-row exact (f64) L1 norm of the *original* row.
    pub l1: &'a [f64],
}

/// The int8 item side of the screen. Items carry the precomputed *inverse*
/// scale because every screened score and envelope multiplies by `1/s_i`
/// (the forward scale is never needed at scan time).
#[derive(Debug, Clone, Copy)]
pub struct QuantItems<'a> {
    /// Row-major int8 codes, `rows × f`.
    pub codes: &'a [i8],
    /// Per-row inverse quantization scale `1/s_i`.
    pub inv_scales: &'a [f64],
    /// Per-row exact (f64) L1 norm of the *original* row.
    pub l1: &'a [f64],
}

fn code_row(codes: &[i8], f: usize, r: usize) -> &[i8] {
    &codes[r * f..(r + 1) * f]
}

/// Screens `A·Bᵀ` with exact int8 integer dots and streams exact f64
/// rescored survivors into caller-owned heaps — same contract and output as
/// [`crate::fused::stream_topk_into_heaps`], different execution.
///
/// `a_q`/`b_q` must hold the int8 quantization of `a64`/`b64`
/// (`mips_data::MirrorI8`) with **finite** scales and L1 norms — the
/// mirror's usability flag is the caller's precondition.
///
/// # Panics
/// Panics if `heaps.len() != a.rows()`, if any code block, scale or norm
/// slice disagrees on shape, or if a mapped id slice is shorter than
/// `b.rows()`.
#[allow(clippy::too_many_arguments)]
pub fn screen_i8_topk_into_heaps(
    a64: RowBlock<'_, f64>,
    b64: RowBlock<'_, f64>,
    a_q: QuantUsers<'_>,
    b_q: QuantItems<'_>,
    heaps: &mut [TopKHeap],
    ids: ColumnIds<'_>,
    scratch: &mut ScreenI8Scratch,
) -> crate::screen::ScreenStats {
    screen_i8_topk_into_heaps_with(simd::active(), a64, b64, a_q, b_q, heaps, ids, scratch)
}

/// [`screen_i8_topk_into_heaps`] with an explicit kernel set — the
/// forced-scalar test entry.
#[allow(clippy::too_many_arguments)]
pub fn screen_i8_topk_into_heaps_with(
    kern: &Kernel,
    a64: RowBlock<'_, f64>,
    b64: RowBlock<'_, f64>,
    a_q: QuantUsers<'_>,
    b_q: QuantItems<'_>,
    heaps: &mut [TopKHeap],
    ids: ColumnIds<'_>,
    scratch: &mut ScreenI8Scratch,
) -> crate::screen::ScreenStats {
    let (m, n, f) = (a64.rows(), b64.rows(), a64.cols());
    assert_eq!(heaps.len(), m, "screen_i8_topk: one heap per query row");
    assert_eq!(a_q.codes.len(), m * f, "screen_i8_topk: user code shape");
    assert_eq!(b_q.codes.len(), n * f, "screen_i8_topk: item code shape");
    assert_eq!(a_q.scales.len(), m, "screen_i8_topk: one scale per query");
    assert_eq!(a_q.l1.len(), m, "screen_i8_topk: one L1 per query");
    assert_eq!(b_q.l1.len(), n, "screen_i8_topk: one L1 per item");
    assert_eq!(
        b_q.inv_scales.len(),
        n,
        "screen_i8_topk: one inverse scale per item"
    );
    if let ColumnIds::Mapped(map) = ids {
        assert!(
            map.len() >= n,
            "screen_i8_topk: id map shorter than item count"
        );
    }

    // Per-row bound heaps: capacity k, seeded with the caller's existing
    // (exact) entries — see the `crate::screen` module docs.
    scratch.bound_heaps.resize_with(m, || TopKHeap::new(0));
    scratch.candidates.resize_with(m, Vec::new);
    for (i, heap) in heaps.iter().enumerate() {
        let bh = &mut scratch.bound_heaps[i];
        *bh = TopKHeap::new(heap.capacity());
        for e in heap.entries() {
            bh.push(e.score, e.id);
        }
        scratch.candidates[i].clear();
    }

    // Screen pass: exact integer dots in groups of four. The reconstruction
    // order `D·(1/s_u)·(1/s_i)` matches the one the envelope's slack was
    // derived (and is tested) against in `mips_linalg::quant`.
    for i in 0..m {
        let urow = code_row(a_q.codes, f, i);
        let inv_su = 1.0 / a_q.scales[i];
        let (env_a, env_b) = i8_screen_envelope_parts(f, a_q.scales[i], a_q.l1[i]);
        let bh = &mut scratch.bound_heaps[i];
        let cand = &mut scratch.candidates[i];
        let mut threshold = bh.threshold();
        let mut offer = |col: usize, d: i32, bh: &mut TopKHeap| {
            let inv_si = b_q.inv_scales[col];
            let s = d as f64 * (inv_su * inv_si);
            let env = env_a * inv_si + env_b * b_q.l1[col];
            let hi = s + env;
            if hi >= threshold {
                let id = match ids {
                    ColumnIds::Offset(off) => off + col as u32,
                    ColumnIds::Mapped(map) => map[col],
                };
                cand.push((col as u32, hi));
                bh.push(s - env, id);
                threshold = bh.threshold();
            }
        };
        let mut col = 0usize;
        while col + 4 <= n {
            let quad = kern.dot_i8_quad(
                urow,
                [
                    code_row(b_q.codes, f, col),
                    code_row(b_q.codes, f, col + 1),
                    code_row(b_q.codes, f, col + 2),
                    code_row(b_q.codes, f, col + 3),
                ],
            );
            for (q, &d) in quad.iter().enumerate() {
                offer(col + q, d, bh);
            }
            col += 4;
        }
        while col < n {
            offer(col, kern.dot_i8(urow, code_row(b_q.codes, f, col)), bh);
            col += 1;
        }
    }

    // Rescore pass: exact f64, GEMM per-element reduction, groups of four
    // so the sequential chains pipeline.
    let mut rescored = 0u64;
    for (i, heap) in heaps.iter_mut().enumerate() {
        let final_threshold = scratch.bound_heaps[i].threshold();
        let survivors = scratch.candidates[i]
            .iter()
            .filter(|&&(_, hi)| hi >= final_threshold);
        let urow = a64.row(i);
        let mut group = [0usize; 4];
        let mut filled = 0usize;
        let flush = |cols: &[usize], heap: &mut TopKHeap| {
            let pad = cols[cols.len() - 1];
            let pick = |q: usize| b64.row(*cols.get(q).unwrap_or(&pad));
            let scores = kern.dot_seq4(urow, [pick(0), pick(1), pick(2), pick(3)]);
            for (q, &col) in cols.iter().enumerate() {
                let id = match ids {
                    ColumnIds::Offset(off) => off + col as u32,
                    ColumnIds::Mapped(map) => map[col],
                };
                heap.push(scores[q], id);
            }
        };
        for &(col, _) in survivors {
            group[filled] = col as usize;
            filled += 1;
            rescored += 1;
            if filled == 4 {
                flush(&group, heap);
                filled = 0;
            }
        }
        if filled > 0 {
            flush(&group[..filled], heap);
        }
    }

    crate::screen::ScreenStats {
        screened: (m * n) as u64,
        rescored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::{gemm_nt_topk, stream_topk_into_heaps};
    use mips_linalg::{quantize_row_i8, GemmScratch, Matrix};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    struct Quantized {
        codes: Vec<i8>,
        scales: Vec<f64>,
        l1: Vec<f64>,
        inv_scales: Vec<f64>,
    }

    fn quantize(m: &Matrix<f64>) -> Quantized {
        let f = m.cols();
        let mut codes = vec![0i8; m.rows() * f];
        let mut scales = Vec::new();
        let mut l1 = Vec::new();
        for (r, row) in m.iter_rows().enumerate() {
            let (s, n1) = quantize_row_i8(row, &mut codes[r * f..(r + 1) * f]);
            scales.push(s);
            l1.push(n1);
        }
        let inv_scales = scales.iter().map(|&s| 1.0 / s).collect();
        Quantized {
            codes,
            scales,
            l1,
            inv_scales,
        }
    }

    impl Quantized {
        fn users(&self) -> QuantUsers<'_> {
            QuantUsers {
                codes: &self.codes,
                scales: &self.scales,
                l1: &self.l1,
            }
        }

        fn items(&self) -> QuantItems<'_> {
            QuantItems {
                codes: &self.codes,
                inv_scales: &self.inv_scales,
                l1: &self.l1,
            }
        }
    }

    fn screen_all(
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        k: usize,
        ids: ColumnIds<'_>,
    ) -> (Vec<TopKHeap>, crate::screen::ScreenStats) {
        let aq = quantize(a);
        let bq = quantize(b);
        let mut heaps: Vec<TopKHeap> = (0..a.rows()).map(|_| TopKHeap::new(k)).collect();
        let mut scratch = ScreenI8Scratch::new();
        let stats = screen_i8_topk_into_heaps(
            a.into(),
            b.into(),
            aq.users(),
            bq.items(),
            &mut heaps,
            ids,
            &mut scratch,
        );
        (heaps, stats)
    }

    #[test]
    fn i8_screen_is_bit_identical_to_f64_direct() {
        let mut scratch64 = GemmScratch::new();
        for &(m, n, f, k) in &[
            (1usize, 1usize, 1usize, 1usize),
            (3, 17, 7, 4),
            (9, 50, 12, 5),
            (33, 70, 31, 10),
            (5, 301, 6, 3), // exercises the quad loop's tail
        ] {
            let a = random_matrix(m, f, 100 + m as u64);
            let b = random_matrix(n, f, 200 + n as u64);
            let (heaps, stats) = screen_all(&a, &b, k, ColumnIds::Offset(0));
            let got: Vec<_> = heaps.into_iter().map(TopKHeap::into_sorted).collect();
            let want = gemm_nt_topk((&a).into(), (&b).into(), k, &mut scratch64);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.items, w.items, "m={m} n={n} f={f} k={k}");
                for (gs, ws) in g.scores.iter().zip(&w.scores) {
                    assert_eq!(gs.to_bits(), ws.to_bits(), "m={m} n={n} f={f} k={k}");
                }
            }
            assert_eq!(stats.screened, (m * n) as u64);
            assert!(stats.rescored >= got.iter().map(|l| l.len() as u64).max().unwrap_or(0));
        }
    }

    #[test]
    fn adversarial_magnitudes_and_near_ties_stay_exact() {
        // Saturating outliers force coarse codes (wide envelopes, heavy
        // rescoring) and near-duplicate items force the exact tie-break —
        // both must still reproduce the f64 path bit for bit.
        let f = 24usize;
        let mut a = random_matrix(3, f, 5);
        for v in a.as_mut_slice() {
            *v *= 100.0;
        }
        let base = random_matrix(1, f, 7);
        let n = 40usize;
        let mut b = Matrix::from_fn(n, f, |r, c| base.get(0, c) + ((r / 4) as f64) * 1e-13);
        // One item with a huge outlier coordinate: its other codes collapse
        // toward zero, maximizing quantization error.
        b.set(n - 1, 0, 1e6);
        let (heaps, _) = screen_all(&a, &b, 5, ColumnIds::Offset(0));
        let mut scratch64 = GemmScratch::new();
        let want = gemm_nt_topk((&a).into(), (&b).into(), 5, &mut scratch64);
        for (heap, w) in heaps.into_iter().zip(&want) {
            let g = heap.into_sorted();
            assert_eq!(g.items, w.items);
            for (gs, ws) in g.scores.iter().zip(&w.scores) {
                assert_eq!(gs.to_bits(), ws.to_bits());
            }
        }
    }

    #[test]
    fn all_zero_rows_screen_cleanly() {
        // Zero users and zero items quantize to scale 1 / all-zero codes;
        // every bound degenerates to exactly 0 and the rescore still
        // reproduces the f64 ordering (ids break the ties).
        let a = Matrix::<f64>::zeros(2, 6);
        let mut b = random_matrix(9, 6, 3);
        for c in 0..6 {
            b.set(4, c, 0.0);
        }
        let (heaps, _) = screen_all(&a, &b, 3, ColumnIds::Offset(0));
        let mut scratch64 = GemmScratch::new();
        let want = gemm_nt_topk((&a).into(), (&b).into(), 3, &mut scratch64);
        for (heap, w) in heaps.into_iter().zip(&want) {
            let g = heap.into_sorted();
            assert_eq!(g.items, w.items);
            assert_eq!(g.scores, w.scores);
        }
    }

    #[test]
    fn preloaded_heaps_match_the_f64_path_with_the_same_preload() {
        let a = random_matrix(2, 9, 31);
        let b = random_matrix(25, 9, 32);
        let aq = quantize(&a);
        let bq = quantize(&b);
        let preload = [(2.5f64, 900u32), (0.1, 901), (-3.0, 902)];

        let mut screened: Vec<TopKHeap> = (0..2).map(|_| TopKHeap::new(4)).collect();
        let mut direct: Vec<TopKHeap> = (0..2).map(|_| TopKHeap::new(4)).collect();
        for heap in screened.iter_mut().chain(direct.iter_mut()) {
            for &(s, id) in &preload {
                heap.push(s, id);
            }
        }
        let mut scratch = ScreenI8Scratch::new();
        screen_i8_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            aq.users(),
            bq.items(),
            &mut screened,
            ColumnIds::Offset(0),
            &mut scratch,
        );
        let mut scratch64 = GemmScratch::new();
        stream_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            &mut direct,
            ColumnIds::Offset(0),
            &mut scratch64,
        );
        for (s, d) in screened.into_iter().zip(direct) {
            let (s, d) = (s.into_sorted(), d.into_sorted());
            assert_eq!(s.items, d.items);
            for (gs, ws) in s.scores.iter().zip(&d.scores) {
                assert_eq!(gs.to_bits(), ws.to_bits());
            }
        }
    }

    #[test]
    fn mapped_ids_and_k_edges() {
        let a = random_matrix(2, 5, 7);
        let b = random_matrix(4, 5, 8);
        let map = [40u32, 30, 20, 10];
        let (heaps, _) = screen_all(&a, &b, 2, ColumnIds::Mapped(&map));
        let mut scratch64 = GemmScratch::new();
        let plain = gemm_nt_topk((&a).into(), (&b).into(), 2, &mut scratch64);
        for (heap, want) in heaps.into_iter().zip(plain) {
            let got = heap.into_sorted();
            let translated: Vec<u32> = want.items.iter().map(|&j| map[j as usize]).collect();
            assert_eq!(got.items, translated);
            assert_eq!(got.scores, want.scores);
        }

        // k = 0 collects nothing and rescores nothing.
        let (heaps, stats) = screen_all(&a, &b, 0, ColumnIds::Offset(0));
        assert!(heaps.iter().all(TopKHeap::is_empty));
        assert_eq!(stats.rescored, 0);

        // k ≥ n keeps everything.
        let (heaps, stats) = screen_all(&a, &b, 10, ColumnIds::Offset(0));
        assert!(heaps.iter().all(|h| h.len() == 4));
        assert_eq!(stats.rescored, 8);
    }

    #[test]
    fn candidate_sets_are_identical_across_kernel_sets() {
        // Stronger than the f32 screen can promise: the integer screen
        // scores are kernel-invariant, so even the *intermediate* candidate
        // counts agree between the dispatched and scalar kernels.
        let a = random_matrix(4, 19, 41);
        let b = random_matrix(60, 19, 42);
        let aq = quantize(&a);
        let bq = quantize(&b);
        let mut kernels = vec![Kernel::scalar()];
        kernels.extend(Kernel::avx2());
        kernels.extend(Kernel::neon());
        let mut counts = Vec::new();
        for kern in &kernels {
            let mut heaps: Vec<TopKHeap> = (0..4).map(|_| TopKHeap::new(6)).collect();
            let mut scratch = ScreenI8Scratch::new();
            let stats = screen_i8_topk_into_heaps_with(
                kern,
                (&a).into(),
                (&b).into(),
                aq.users(),
                bq.items(),
                &mut heaps,
                ColumnIds::Offset(0),
                &mut scratch,
            );
            counts.push(stats.rescored);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "one heap per query row")]
    fn rejects_mismatched_heap_count() {
        let a = random_matrix(3, 4, 1);
        let b = random_matrix(2, 4, 2);
        let aq = quantize(&a);
        let bq = quantize(&b);
        let mut heaps = vec![TopKHeap::new(1); 2];
        let mut scratch = ScreenI8Scratch::new();
        screen_i8_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            aq.users(),
            bq.items(),
            &mut heaps,
            ColumnIds::Offset(0),
            &mut scratch,
        );
    }

    #[test]
    #[should_panic(expected = "one inverse scale per item")]
    fn rejects_short_inverse_scales() {
        let a = random_matrix(1, 4, 1);
        let b = random_matrix(3, 4, 2);
        let aq = quantize(&a);
        let bq = quantize(&b);
        let mut heaps = vec![TopKHeap::new(1)];
        let mut scratch = ScreenI8Scratch::new();
        screen_i8_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            aq.users(),
            QuantItems {
                inv_scales: &bq.inv_scales[..2],
                ..bq.items()
            },
            &mut heaps,
            ColumnIds::Offset(0),
            &mut scratch,
        );
    }
}
