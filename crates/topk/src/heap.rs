//! A bounded min-heap over `(score, item id)` pairs.
//!
//! The heap keeps the `k` best entries seen so far; its root is the worst of
//! them, i.e. the current *admission threshold*. Index-based solvers prune by
//! comparing upper bounds against [`TopKHeap::threshold`], so the threshold
//! semantics matter:
//!
//! * capacity 0 → `+∞` (nothing can ever be admitted, prune everything),
//! * not yet full → `−∞` (everything is admitted, prune nothing),
//! * full → the smallest retained score.
//!
//! Ordering is total and deterministic: higher score wins, ties go to the
//! smaller item id. NaN scores are rejected (solver inputs are validated
//! upstream, so a NaN here is a bug worth failing loudly on).

/// One retained entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// The rating `uᵀi`.
    pub score: f64,
    /// The item id.
    pub id: u32,
}

impl Entry {
    /// `true` if `self` ranks strictly better than `other`
    /// (higher score, or equal score with smaller id).
    #[inline(always)]
    pub fn beats(&self, other: &Entry) -> bool {
        self.score > other.score || (self.score == other.score && self.id < other.id)
    }
}

/// A fixed-capacity min-heap retaining the top-k `(score, id)` pairs.
#[derive(Debug, Clone)]
pub struct TopKHeap {
    k: usize,
    entries: Vec<Entry>,
}

impl TopKHeap {
    /// A heap retaining at most `k` entries.
    pub fn new(k: usize) -> Self {
        TopKHeap {
            k,
            entries: Vec::with_capacity(k),
        }
    }

    /// Capacity `k`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of retained entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries are retained.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when `k` entries are retained.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// The admission threshold (see module docs for the empty/partial cases).
    #[inline]
    pub fn threshold(&self) -> f64 {
        if self.k == 0 {
            f64::INFINITY
        } else if self.entries.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.entries[0].score
        }
    }

    /// Offers `(score, id)`; returns `true` if it was admitted.
    ///
    /// # Panics
    /// Panics on NaN scores.
    #[inline]
    pub fn push(&mut self, score: f64, id: u32) -> bool {
        assert!(!score.is_nan(), "TopKHeap: NaN score for item {id}");
        if self.k == 0 {
            return false;
        }
        let cand = Entry { score, id };
        if self.entries.len() < self.k {
            self.entries.push(cand);
            self.sift_up(self.entries.len() - 1);
            true
        } else if cand.beats(&self.entries[0]) {
            self.entries[0] = cand;
            self.sift_down(0);
            true
        } else {
            false
        }
    }

    /// The worst retained entry (the root), if any.
    pub fn peek_min(&self) -> Option<Entry> {
        self.entries.first().copied()
    }

    /// The retained entries in heap (not sorted) order. The mixed-precision
    /// screen uses this to seed its lower-bound threshold from entries a
    /// previous exact phase already admitted.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Drains the heap into a list sorted best-first.
    pub fn into_sorted(self) -> crate::list::TopKList {
        let mut entries = self.entries;
        entries.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.id.cmp(&b.id)));
        crate::list::TopKList {
            items: entries.iter().map(|e| e.id).collect(),
            scores: entries.iter().map(|e| e.score).collect(),
        }
    }

    /// Heap order: parent is worse than (or ties with) its children.
    #[inline(always)]
    fn worse_eq(a: &Entry, b: &Entry) -> bool {
        !a.beats(b)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::worse_eq(&self.entries[parent], &self.entries[i]) {
                break;
            }
            self.entries.swap(parent, i);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.entries.len();
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            // Pick the worse child: the root must stay the worst entry.
            let worst_child = if r < n && Self::worse_eq(&self.entries[r], &self.entries[l]) {
                r
            } else {
                l
            };
            if Self::worse_eq(&self.entries[i], &self.entries[worst_child]) {
                break;
            }
            self.entries.swap(i, worst_child);
            i = worst_child;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_k_best() {
        let mut h = TopKHeap::new(3);
        for (s, id) in [(1.0, 0), (5.0, 1), (2.0, 2), (9.0, 3), (3.0, 4), (0.5, 5)] {
            h.push(s, id);
        }
        let list = h.into_sorted();
        assert_eq!(list.items, vec![3, 1, 4]);
        assert_eq!(list.scores, vec![9.0, 5.0, 3.0]);
    }

    #[test]
    fn threshold_semantics() {
        let mut h = TopKHeap::new(2);
        assert_eq!(h.threshold(), f64::NEG_INFINITY);
        h.push(4.0, 0);
        assert_eq!(h.threshold(), f64::NEG_INFINITY);
        h.push(7.0, 1);
        assert_eq!(h.threshold(), 4.0);
        h.push(5.0, 2); // evicts 4.0
        assert_eq!(h.threshold(), 5.0);

        let zero = TopKHeap::new(0);
        assert_eq!(zero.threshold(), f64::INFINITY);
    }

    #[test]
    fn zero_capacity_admits_nothing() {
        let mut h = TopKHeap::new(0);
        assert!(!h.push(100.0, 1));
        assert!(h.into_sorted().items.is_empty());
    }

    #[test]
    fn ties_break_toward_smaller_id() {
        let mut h = TopKHeap::new(2);
        h.push(1.0, 5);
        h.push(1.0, 3);
        h.push(1.0, 4); // ties with the root (id 5): id 4 < 5 wins
        let list = h.into_sorted();
        assert_eq!(list.items, vec![3, 4]);

        // An equal-score, larger-id candidate must NOT displace anything.
        let mut h = TopKHeap::new(1);
        h.push(2.0, 1);
        assert!(!h.push(2.0, 9));
        assert_eq!(h.into_sorted().items, vec![1]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let mut h = TopKHeap::new(10);
        h.push(1.0, 0);
        h.push(2.0, 1);
        let list = h.into_sorted();
        assert_eq!(list.items, vec![1, 0]);
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn negative_and_duplicate_scores() {
        let mut h = TopKHeap::new(3);
        for (s, id) in [(-5.0, 0), (-1.0, 1), (-3.0, 2), (-2.0, 3), (-1.0, 4)] {
            h.push(s, id);
        }
        let list = h.into_sorted();
        assert_eq!(list.items, vec![1, 4, 3]);
        assert_eq!(list.scores, vec![-1.0, -1.0, -2.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_scores_panic() {
        let mut h = TopKHeap::new(2);
        h.push(f64::NAN, 0);
    }

    #[test]
    fn matches_sort_reference_on_many_streams() {
        // Pseudo-random streams, compared against full sort.
        let mut state = 0xDEADBEEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        for k in [1usize, 2, 5, 16] {
            for n in [1usize, 7, 50, 200] {
                let scores: Vec<f64> = (0..n).map(|_| (next() * 4.0).round() / 4.0).collect();
                let mut h = TopKHeap::new(k);
                for (id, &s) in scores.iter().enumerate() {
                    h.push(s, id as u32);
                }
                let got = h.into_sorted();

                let mut pairs: Vec<(f64, u32)> = scores
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| (s, i as u32))
                    .collect();
                pairs.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
                pairs.truncate(k);
                let want_items: Vec<u32> = pairs.iter().map(|p| p.1).collect();
                assert_eq!(got.items, want_items, "k={k} n={n}");
            }
        }
    }

    #[test]
    fn peek_min_is_worst_retained() {
        let mut h = TopKHeap::new(3);
        assert!(h.peek_min().is_none());
        for (s, id) in [(3.0, 0), (1.0, 1), (2.0, 2), (5.0, 3)] {
            h.push(s, id);
        }
        let min = h.peek_min().unwrap();
        assert_eq!(min.score, 2.0);
        assert_eq!(min.id, 2);
    }
}
