//! Mixed-precision screen-then-rescore: f32 scan, exact f64 top-k.
//!
//! The fused f64 path ([`crate::fused`]) already keeps score panels
//! cache-resident; this module halves the bytes *and* doubles the SIMD lanes
//! of the scan by streaming the panels in single precision, at the price of
//! a second (tiny) pass:
//!
//! 1. **Screen** — stream `A₃₂·B₃₂ᵀ` panels and widen every score `ŝ` into
//!    the interval `[ŝ − env, ŝ + env]`, where
//!    `env = f32_screen_envelope(f, ‖u‖, ‖i‖)` bounds the total rounding
//!    error of the f32 path against the exact score `s` (so `s` is always
//!    inside the interval). A per-user bound heap retains the `k` largest
//!    *lower* bounds; any column whose *upper* bound reaches that heap's
//!    threshold is collected as a candidate.
//! 2. **Rescore** — recompute each surviving candidate's score in f64 with
//!    the GEMM per-element reduction ([`mips_linalg::simd::Kernel::dot_seq4`])
//!    and offer it to the caller's heap.
//!
//! ## Why no true top-k member can be lost
//!
//! Let `L̂` be the final threshold of a user's bound heap. Each of its `k`
//! retained entries is a lower bound of some column's exact score, so at
//! least `k` columns have exact score `≥ L̂` — hence the true k-th exact
//! score is `≥ L̂`. Every true top-k column `c` has exact score
//! `s_c ≥ kth ≥ L̂`, and its upper bound `ŝ_c + env ≥ s_c ≥ L̂`, so `c` was
//! collected (thresholds only grow during the scan, so the test it faced
//! was no stricter than `L̂`) and survives the final `hi ≥ L̂` filter. Ties
//! (`s_c` equal to the k-th score, decided by the smaller-id rule) are
//! safe for the same reason: the comparison uses `≥`, never `>`.
//!
//! Entries already present in the caller's heaps are treated as exact
//! scores from a previous phase: they seed the bound heap (an exact score
//! is its own lower bound), so the screen is exactly as selective as the
//! f64 path would have been with the same preloaded state.
//!
//! Because every reported score comes from the f64 rescore — with the same
//! reduction order as the pure-f64 GEMM path — the screen mode's results
//! are **bit-identical** to f64-direct: same scores, same ids, same
//! tie-breaks. The `precision_identity` suite in `mips-core` asserts this
//! end to end; the envelope math lives in
//! [`mips_linalg::f32_screen_envelope`].

use crate::fused::ColumnIds;
use crate::heap::TopKHeap;
use mips_linalg::simd::{self, Kernel};
use mips_linalg::{
    f32_screen_envelope_parts, gemm_nt_stream_panels_with, BlockSizes, CacheConfig, GemmScratch,
    RowBlock,
};

/// Reusable buffers for [`screen_topk_into_heaps_with`]: the f32 GEMM
/// scratch, the per-user bound heaps and the per-user candidate lists. Own
/// one per query loop / worker thread, like [`GemmScratch`].
#[derive(Debug, Default)]
pub struct ScreenScratch {
    gemm32: GemmScratch<f32>,
    bound_heaps: Vec<TopKHeap>,
    candidates: Vec<Vec<(u32, f64)>>,
}

impl ScreenScratch {
    /// Empty scratch; buffers are sized lazily on first use.
    pub fn new() -> ScreenScratch {
        ScreenScratch::default()
    }
}

/// Counters describing how selective one screen pass was.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenStats {
    /// Scores screened in f32 (`rows × cols`).
    pub screened: u64,
    /// Candidates surviving to the exact rescore.
    pub rescored: u64,
}

/// Screens `A·Bᵀ` in f32 and streams exact f64 rescored survivors into
/// caller-owned heaps — same contract and output as
/// [`crate::fused::stream_topk_into_heaps`], different execution.
///
/// `a32`/`b32` must be the rounded mirror of `a64`/`b64`
/// (`mips_data::Mirror32`), and `a_norms`/`b_norms` the **exact** f64 row
/// norms of the originals — the envelope is only valid for that triple.
///
/// # Panics
/// Panics if `heaps.len() != a.rows()`, if any operand or norm slice
/// disagrees on shape, or if a mapped id slice is shorter than `b.rows()`.
#[allow(clippy::too_many_arguments)]
pub fn screen_topk_into_heaps(
    a64: RowBlock<'_, f64>,
    b64: RowBlock<'_, f64>,
    a32: RowBlock<'_, f32>,
    b32: RowBlock<'_, f32>,
    a_norms: &[f64],
    b_norms: &[f64],
    heaps: &mut [TopKHeap],
    ids: ColumnIds<'_>,
    scratch: &mut ScreenScratch,
) -> ScreenStats {
    screen_topk_into_heaps_with(
        simd::active(),
        &BlockSizes::for_scalar::<f32>(&CacheConfig::default()),
        a64,
        b64,
        a32,
        b32,
        a_norms,
        b_norms,
        heaps,
        ids,
        scratch,
    )
}

/// [`screen_topk_into_heaps`] with explicit kernel set and (f32) blocking
/// parameters — the forced-scalar test entry.
#[allow(clippy::too_many_arguments)]
pub fn screen_topk_into_heaps_with(
    kern: &Kernel,
    blocks32: &BlockSizes,
    a64: RowBlock<'_, f64>,
    b64: RowBlock<'_, f64>,
    a32: RowBlock<'_, f32>,
    b32: RowBlock<'_, f32>,
    a_norms: &[f64],
    b_norms: &[f64],
    heaps: &mut [TopKHeap],
    ids: ColumnIds<'_>,
    scratch: &mut ScreenScratch,
) -> ScreenStats {
    let (m, n, f) = (a64.rows(), b64.rows(), a64.cols());
    assert_eq!(heaps.len(), m, "screen_topk: one heap per query row");
    assert_eq!(a32.rows(), m, "screen_topk: mirror row count mismatch");
    assert_eq!(b32.rows(), n, "screen_topk: mirror item count mismatch");
    assert_eq!(a32.cols(), f, "screen_topk: mirror width mismatch");
    assert_eq!(a_norms.len(), m, "screen_topk: one norm per query row");
    assert_eq!(b_norms.len(), n, "screen_topk: one norm per item row");
    if let ColumnIds::Mapped(map) = ids {
        assert!(
            map.len() >= n,
            "screen_topk: id map shorter than item count"
        );
    }

    let (env_rel, env_abs) = f32_screen_envelope_parts(f);

    // Per-row bound heaps: capacity k, seeded with the caller's existing
    // (exact) entries — see the module docs.
    scratch.bound_heaps.resize_with(m, || TopKHeap::new(0));
    scratch.candidates.resize_with(m, Vec::new);
    for (i, heap) in heaps.iter().enumerate() {
        let bh = &mut scratch.bound_heaps[i];
        *bh = TopKHeap::new(heap.capacity());
        for e in heap.entries() {
            bh.push(e.score, e.id);
        }
        scratch.candidates[i].clear();
    }

    // Screen pass: stream f32 panels, collect (column, upper bound) pairs.
    let mut thresholds: Vec<f64> = scratch
        .bound_heaps
        .iter()
        .map(TopKHeap::threshold)
        .collect();
    gemm_nt_stream_panels_with(
        kern,
        a32,
        b32,
        blocks32,
        &mut scratch.gemm32,
        |panel, cols| {
            let ncb = cols.len();
            for i in 0..m {
                let row = &panel[i * ncb..(i + 1) * ncb];
                let rel_u = env_rel * a_norms[i];
                let bh = &mut scratch.bound_heaps[i];
                let cand = &mut scratch.candidates[i];
                let mut threshold = thresholds[i];
                for (j, &s32) in row.iter().enumerate() {
                    let col = cols.start + j;
                    let s = s32 as f64;
                    if s.is_finite() {
                        let env = rel_u.mul_add(b_norms[col], env_abs);
                        let hi = s + env;
                        if hi >= threshold {
                            let id = match ids {
                                ColumnIds::Offset(off) => off + col as u32,
                                ColumnIds::Mapped(map) => map[col],
                            };
                            cand.push((col as u32, hi));
                            bh.push(s - env, id);
                            threshold = bh.threshold();
                        }
                    } else if threshold < f64::INFINITY {
                        // An overflowed f32 score carries no bound at all:
                        // keep the column unconditionally (k = 0 heaps have
                        // threshold +∞ and correctly collect nothing).
                        cand.push((col as u32, f64::INFINITY));
                    }
                }
                thresholds[i] = threshold;
            }
        },
    );

    // Rescore pass: exact f64, GEMM per-element reduction, groups of four
    // so the sequential chains pipeline.
    let mut rescored = 0u64;
    for (i, heap) in heaps.iter_mut().enumerate() {
        let final_threshold = scratch.bound_heaps[i].threshold();
        let survivors = scratch.candidates[i]
            .iter()
            .filter(|&&(_, hi)| hi >= final_threshold);
        let urow = a64.row(i);
        let mut group = [0usize; 4];
        let mut filled = 0usize;
        let flush = |cols: &[usize], heap: &mut TopKHeap| {
            let pad = cols[cols.len() - 1];
            let pick = |q: usize| b64.row(*cols.get(q).unwrap_or(&pad));
            let scores = kern.dot_seq4(urow, [pick(0), pick(1), pick(2), pick(3)]);
            for (q, &col) in cols.iter().enumerate() {
                let id = match ids {
                    ColumnIds::Offset(off) => off + col as u32,
                    ColumnIds::Mapped(map) => map[col],
                };
                heap.push(scores[q], id);
            }
        };
        for &(col, _) in survivors {
            group[filled] = col as usize;
            filled += 1;
            rescored += 1;
            if filled == 4 {
                flush(&group, heap);
                filled = 0;
            }
        }
        if filled > 0 {
            flush(&group[..filled], heap);
        }
    }

    ScreenStats {
        screened: (m * n) as u64,
        rescored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fused::{gemm_nt_topk, stream_topk_into_heaps};
    use mips_linalg::{norm2, Matrix};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    fn row_norms(m: &Matrix<f64>) -> Vec<f64> {
        m.iter_rows().map(norm2).collect()
    }

    fn screen_all(
        a: &Matrix<f64>,
        b: &Matrix<f64>,
        k: usize,
        ids: ColumnIds<'_>,
    ) -> (Vec<TopKHeap>, ScreenStats) {
        let a32: Matrix<f32> = a.cast();
        let b32: Matrix<f32> = b.cast();
        let mut heaps: Vec<TopKHeap> = (0..a.rows()).map(|_| TopKHeap::new(k)).collect();
        let mut scratch = ScreenScratch::new();
        let stats = screen_topk_into_heaps(
            a.into(),
            b.into(),
            (&a32).into(),
            (&b32).into(),
            &row_norms(a),
            &row_norms(b),
            &mut heaps,
            ids,
            &mut scratch,
        );
        (heaps, stats)
    }

    #[test]
    fn screen_is_bit_identical_to_f64_direct() {
        let mut scratch64 = GemmScratch::new();
        for &(m, n, f, k) in &[
            (1usize, 1usize, 1usize, 1usize),
            (3, 17, 7, 4),
            (9, 50, 12, 5),
            (33, 70, 31, 10),
            (5, 2048 + 13, 6, 3), // crosses an NC panel boundary
        ] {
            let a = random_matrix(m, f, 100 + m as u64);
            let b = random_matrix(n, f, 200 + n as u64);
            let (heaps, stats) = screen_all(&a, &b, k, ColumnIds::Offset(0));
            let got: Vec<_> = heaps.into_iter().map(TopKHeap::into_sorted).collect();
            let want = gemm_nt_topk((&a).into(), (&b).into(), k, &mut scratch64);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.items, w.items, "m={m} n={n} f={f} k={k}");
                for (gs, ws) in g.scores.iter().zip(&w.scores) {
                    assert_eq!(gs.to_bits(), ws.to_bits(), "m={m} n={n} f={f} k={k}");
                }
            }
            assert_eq!(stats.screened, (m * n) as u64);
            assert!(stats.rescored >= got.iter().map(|l| l.len() as u64).max().unwrap_or(0));
        }
    }

    #[test]
    fn near_ties_inside_the_envelope_are_still_exact() {
        // Items that differ by less than any plausible f32 resolution: the
        // screen cannot tell them apart, so it must rescore enough of them
        // for the exact comparison (and the id tie-break) to decide.
        let f = 24usize;
        let mut a = random_matrix(3, f, 5);
        // Amplify so absolute score gaps sit near the f32 ulp.
        for v in a.as_mut_slice() {
            *v *= 100.0;
        }
        let base = random_matrix(1, f, 7);
        let n = 40usize;
        let b = Matrix::from_fn(n, f, |r, c| {
            // Tiny per-row perturbation, far below f32 resolution at this
            // magnitude; several rows are exact duplicates (r / 4).
            base.get(0, c) + ((r / 4) as f64) * 1e-13
        });
        let (heaps, _) = screen_all(&a, &b, 5, ColumnIds::Offset(0));
        let mut scratch64 = GemmScratch::new();
        let want = gemm_nt_topk((&a).into(), (&b).into(), 5, &mut scratch64);
        for (heap, w) in heaps.into_iter().zip(&want) {
            let g = heap.into_sorted();
            assert_eq!(g.items, w.items);
            for (gs, ws) in g.scores.iter().zip(&w.scores) {
                assert_eq!(gs.to_bits(), ws.to_bits());
            }
        }
    }

    #[test]
    fn preloaded_heaps_match_the_f64_path_with_the_same_preload() {
        let a = random_matrix(2, 9, 31);
        let b = random_matrix(25, 9, 32);
        let a32: Matrix<f32> = a.cast();
        let b32: Matrix<f32> = b.cast();
        let preload = [(2.5f64, 900u32), (0.1, 901), (-3.0, 902)];

        let mut screened: Vec<TopKHeap> = (0..2).map(|_| TopKHeap::new(4)).collect();
        let mut direct: Vec<TopKHeap> = (0..2).map(|_| TopKHeap::new(4)).collect();
        for heap in screened.iter_mut().chain(direct.iter_mut()) {
            for &(s, id) in &preload {
                heap.push(s, id);
            }
        }
        let mut scratch = ScreenScratch::new();
        screen_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            (&a32).into(),
            (&b32).into(),
            &row_norms(&a),
            &row_norms(&b),
            &mut screened,
            ColumnIds::Offset(0),
            &mut scratch,
        );
        let mut scratch64 = GemmScratch::new();
        stream_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            &mut direct,
            ColumnIds::Offset(0),
            &mut scratch64,
        );
        for (s, d) in screened.into_iter().zip(direct) {
            let (s, d) = (s.into_sorted(), d.into_sorted());
            assert_eq!(s.items, d.items);
            for (gs, ws) in s.scores.iter().zip(&d.scores) {
                assert_eq!(gs.to_bits(), ws.to_bits());
            }
        }
    }

    #[test]
    fn mapped_ids_and_k_edges() {
        let a = random_matrix(2, 5, 7);
        let b = random_matrix(4, 5, 8);
        let map = [40u32, 30, 20, 10];
        let (heaps, _) = screen_all(&a, &b, 2, ColumnIds::Mapped(&map));
        let mut scratch64 = GemmScratch::new();
        let plain = gemm_nt_topk((&a).into(), (&b).into(), 2, &mut scratch64);
        for (heap, want) in heaps.into_iter().zip(plain) {
            let got = heap.into_sorted();
            let translated: Vec<u32> = want.items.iter().map(|&j| map[j as usize]).collect();
            assert_eq!(got.items, translated);
            assert_eq!(got.scores, want.scores);
        }

        // k = 0 collects nothing and rescores nothing.
        let (heaps, stats) = screen_all(&a, &b, 0, ColumnIds::Offset(0));
        assert!(heaps.iter().all(TopKHeap::is_empty));
        assert_eq!(stats.rescored, 0);

        // k ≥ n keeps everything.
        let (heaps, stats) = screen_all(&a, &b, 10, ColumnIds::Offset(0));
        assert!(heaps.iter().all(|h| h.len() == 4));
        assert_eq!(stats.rescored, 8);
    }

    #[test]
    #[should_panic(expected = "one heap per query row")]
    fn rejects_mismatched_heap_count() {
        let a = random_matrix(3, 4, 1);
        let b = random_matrix(2, 4, 2);
        let a32: Matrix<f32> = a.cast();
        let b32: Matrix<f32> = b.cast();
        let mut heaps = vec![TopKHeap::new(1); 2];
        let mut scratch = ScreenScratch::new();
        screen_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            (&a32).into(),
            (&b32).into(),
            &row_norms(&a),
            &row_norms(&b),
            &mut heaps,
            ColumnIds::Offset(0),
            &mut scratch,
        );
    }

    #[test]
    #[should_panic(expected = "one norm per item row")]
    fn rejects_short_norms() {
        let a = random_matrix(1, 4, 1);
        let b = random_matrix(3, 4, 2);
        let a32: Matrix<f32> = a.cast();
        let b32: Matrix<f32> = b.cast();
        let mut heaps = vec![TopKHeap::new(1)];
        let mut scratch = ScreenScratch::new();
        screen_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            (&a32).into(),
            (&b32).into(),
            &row_norms(&a),
            &[1.0],
            &mut heaps,
            ColumnIds::Offset(0),
            &mut scratch,
        );
    }
}
