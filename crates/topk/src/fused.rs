//! Fused GEMM→top-k: selection runs on cache-warm score panels.
//!
//! The unfused BMM pipeline materializes the whole `batch × n` score buffer,
//! then re-reads it for heap selection — a full round-trip through memory
//! for data that is consumed once and discarded. The paper's §II-B argument
//! (hardware efficiency comes from keeping the working set cache-resident)
//! applies to our own serving loop as much as to the multiply itself, so
//! this module fuses the two stages: the panel-streaming GEMM driver
//! ([`mips_linalg::gemm_nt_stream_panels`]) hands each finished `m × NC`
//! panel of scores straight to the per-row [`TopKHeap`]s while the panel is
//! still resident in cache, and only one panel of scores ever exists.
//!
//! Exactness is unaffected: the heap's `(score, id)` ordering is total, so
//! the retained top-k set is independent of the order in which columns are
//! offered, and the `_with` variants pin the micro-kernel set so the
//! `fused_exactness` property suite can compare the SIMD and forced-scalar
//! paths bit for bit.

use crate::heap::TopKHeap;
use crate::list::TopKList;
use mips_linalg::simd::{self, Kernel};
use mips_linalg::{BlockSizes, CacheConfig, GemmScratch, RowBlock};

/// How panel columns map to item ids.
///
/// The BMM solver scores items in catalog order (`Offset`, usually 0);
/// MAXIMUS scores a cluster's items in bound-sorted list order and needs
/// each column translated back to its global item id (`Mapped`).
#[derive(Debug, Clone, Copy)]
pub enum ColumnIds<'a> {
    /// Column `j` of B is item `offset + j`.
    Offset(u32),
    /// Column `j` of B is item `ids[j]`.
    Mapped(&'a [u32]),
}

/// Fused `A·Bᵀ` → per-row top-k: returns one sorted [`TopKList`] per row of
/// `a`, identical to `gemm_nt` + `rows_topk` but without materializing the
/// `m × n` score buffer.
///
/// `scratch` is reused across calls; own one per query loop / worker thread.
///
/// # Panics
/// Panics if the operand widths differ.
pub fn gemm_nt_topk(
    a: RowBlock<'_, f64>,
    b: RowBlock<'_, f64>,
    k: usize,
    scratch: &mut GemmScratch<f64>,
) -> Vec<TopKList> {
    gemm_nt_topk_with(simd::active(), &default_blocks(), a, b, k, scratch)
}

/// [`gemm_nt_topk`] with explicit kernel set and blocking parameters (the
/// forced-scalar / odd-blocking test entry).
pub fn gemm_nt_topk_with(
    kern: &Kernel,
    blocks: &BlockSizes,
    a: RowBlock<'_, f64>,
    b: RowBlock<'_, f64>,
    k: usize,
    scratch: &mut GemmScratch<f64>,
) -> Vec<TopKList> {
    let mut heaps: Vec<TopKHeap> = (0..a.rows()).map(|_| TopKHeap::new(k)).collect();
    stream_topk_into_heaps_with(
        kern,
        blocks,
        a,
        b,
        &mut heaps,
        ColumnIds::Offset(0),
        scratch,
    );
    heaps.into_iter().map(TopKHeap::into_sorted).collect()
}

/// Streams `A·Bᵀ` score panels into caller-owned heaps (one per row of `a`),
/// mapping panel columns to item ids via `ids`.
///
/// The heaps may already hold entries; this is how MAXIMUS fuses its shared
/// list-prefix multiply with per-user selection and then keeps walking the
/// remainder of the list with the same heaps.
///
/// # Panics
/// Panics if `heaps.len() != a.rows()`, if a mapped id slice is shorter than
/// `b.rows()`, or if the operand widths differ.
pub fn stream_topk_into_heaps(
    a: RowBlock<'_, f64>,
    b: RowBlock<'_, f64>,
    heaps: &mut [TopKHeap],
    ids: ColumnIds<'_>,
    scratch: &mut GemmScratch<f64>,
) {
    stream_topk_into_heaps_with(simd::active(), &default_blocks(), a, b, heaps, ids, scratch)
}

/// [`stream_topk_into_heaps`] with explicit kernel set and blocking
/// parameters.
pub fn stream_topk_into_heaps_with(
    kern: &Kernel,
    blocks: &BlockSizes,
    a: RowBlock<'_, f64>,
    b: RowBlock<'_, f64>,
    heaps: &mut [TopKHeap],
    ids: ColumnIds<'_>,
    scratch: &mut GemmScratch<f64>,
) {
    let m = a.rows();
    assert_eq!(heaps.len(), m, "stream_topk: one heap per query row");
    if let ColumnIds::Mapped(map) = ids {
        assert!(
            map.len() >= b.rows(),
            "stream_topk: id map shorter than item count"
        );
    }
    // Cached admission thresholds: most scores lose a single comparison
    // without touching the heap, same as `row_topk`'s scan. Scores *equal*
    // to the threshold must still be offered: with `Mapped` ids the column
    // order is not id order, so a tying candidate may beat the root on the
    // smaller-id rule.
    let mut thresholds: Vec<f64> = heaps.iter().map(TopKHeap::threshold).collect();
    mips_linalg::gemm_nt_stream_panels_with(kern, a, b, blocks, scratch, |panel, cols| {
        let ncb = cols.len();
        for (i, heap) in heaps.iter_mut().enumerate() {
            let row = &panel[i * ncb..(i + 1) * ncb];
            let mut threshold = thresholds[i];
            for (j, &s) in row.iter().enumerate() {
                if s >= threshold || !heap.is_full() {
                    let col = cols.start + j;
                    let id = match ids {
                        ColumnIds::Offset(off) => off + col as u32,
                        ColumnIds::Mapped(map) => map[col],
                    };
                    heap.push(s, id);
                    threshold = heap.threshold();
                }
            }
            thresholds[i] = threshold;
        }
    });
}

fn default_blocks() -> BlockSizes {
    BlockSizes::for_scalar::<f64>(&CacheConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::rows_topk;
    use mips_linalg::{gemm_nt, Matrix};

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn fused_matches_unfused_reference() {
        let mut scratch = GemmScratch::new();
        for &(m, n, f, k) in &[
            (1usize, 1usize, 1usize, 1usize),
            (3, 17, 7, 4),
            (9, 50, 12, 5),
            (33, 70, 31, 10),
            (5, 2048 + 13, 6, 3), // crosses an NC panel boundary
        ] {
            let a = random_matrix(m, f, 100 + m as u64);
            let b = random_matrix(n, f, 200 + n as u64);
            let fused = gemm_nt_topk((&a).into(), (&b).into(), k, &mut scratch);
            let scores = gemm_nt(&a, &b);
            let want = rows_topk(scores.as_slice(), m, n, k);
            assert_eq!(fused, want, "m={m} n={n} f={f} k={k}");
        }
    }

    #[test]
    fn fused_k_edge_cases() {
        let a = random_matrix(4, 6, 1);
        let b = random_matrix(9, 6, 2);
        let mut scratch = GemmScratch::new();
        let zero = gemm_nt_topk((&a).into(), (&b).into(), 0, &mut scratch);
        assert!(zero.iter().all(TopKList::is_empty));
        let all = gemm_nt_topk((&a).into(), (&b).into(), 100, &mut scratch);
        assert!(all.iter().all(|l| l.len() == 9));
        // Zero-depth operands: every score is 0, ids win by tie-break.
        let a0 = Matrix::<f64>::zeros(2, 0);
        let b0 = Matrix::<f64>::zeros(3, 0);
        let lists = gemm_nt_topk((&a0).into(), (&b0).into(), 2, &mut scratch);
        assert_eq!(lists.len(), 2);
        for l in &lists {
            assert_eq!(l.items, vec![0, 1]);
            assert_eq!(l.scores, vec![0.0, 0.0]);
        }
        // No rows / no items.
        assert!(gemm_nt_topk(a.row_block(0, 0), (&b).into(), 3, &mut scratch).is_empty());
        let empty_b = gemm_nt_topk((&a).into(), b.row_block(0, 0), 3, &mut scratch);
        assert!(empty_b.iter().all(TopKList::is_empty));
    }

    #[test]
    fn mapped_ids_translate_columns() {
        let a = random_matrix(2, 5, 7);
        let b = random_matrix(4, 5, 8);
        let map = [40u32, 30, 20, 10];
        let mut heaps: Vec<TopKHeap> = (0..2).map(|_| TopKHeap::new(2)).collect();
        let mut scratch = GemmScratch::new();
        stream_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            &mut heaps,
            ColumnIds::Mapped(&map),
            &mut scratch,
        );
        let mut scratch2 = GemmScratch::new();
        let plain = gemm_nt_topk((&a).into(), (&b).into(), 2, &mut scratch2);
        for (heap, want) in heaps.into_iter().zip(plain) {
            let got = heap.into_sorted();
            let translated: Vec<u32> = want.items.iter().map(|&j| map[j as usize]).collect();
            assert_eq!(got.items, translated);
            assert_eq!(got.scores, want.scores);
        }
    }

    #[test]
    fn offset_ids_shift_columns() {
        let a = random_matrix(1, 4, 3);
        let b = random_matrix(3, 4, 4);
        let mut heaps = vec![TopKHeap::new(3)];
        let mut scratch = GemmScratch::new();
        stream_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            &mut heaps,
            ColumnIds::Offset(1000),
            &mut scratch,
        );
        let got = heaps.pop().unwrap().into_sorted();
        assert!(got.items.iter().all(|&id| (1000..1003).contains(&id)));
    }

    #[test]
    fn preloaded_heaps_keep_earlier_entries() {
        // MAXIMUS-style use: heaps already hold entries from a prior phase.
        let a = random_matrix(1, 3, 11);
        let b = random_matrix(2, 3, 12);
        let mut heaps = vec![TopKHeap::new(3)];
        heaps[0].push(1e9, 777); // unbeatable prior entry
        let mut scratch = GemmScratch::new();
        stream_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            &mut heaps,
            ColumnIds::Offset(0),
            &mut scratch,
        );
        let got = heaps.pop().unwrap().into_sorted();
        assert_eq!(got.items[0], 777);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn tying_candidate_with_smaller_mapped_id_displaces_root() {
        // Column order ≠ id order: item id 1 arrives *after* the heap is
        // full of equal scores with larger ids. The threshold shortcut must
        // still offer it so the smaller-id tie-break can win.
        let a = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        let b = Matrix::from_vec(3, 1, vec![5.0, 5.0, 5.0]).unwrap();
        let map = [9u32, 4, 1];
        let mut heaps = vec![TopKHeap::new(2)];
        let mut scratch = GemmScratch::new();
        stream_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            &mut heaps,
            ColumnIds::Mapped(&map),
            &mut scratch,
        );
        let got = heaps.pop().unwrap().into_sorted();
        assert_eq!(got.items, vec![1, 4]);
    }

    #[test]
    #[should_panic(expected = "one heap per query row")]
    fn rejects_mismatched_heap_count() {
        let a = random_matrix(3, 4, 1);
        let b = random_matrix(2, 4, 2);
        let mut heaps = vec![TopKHeap::new(1); 2];
        let mut scratch = GemmScratch::new();
        stream_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            &mut heaps,
            ColumnIds::Offset(0),
            &mut scratch,
        );
    }

    #[test]
    #[should_panic(expected = "id map shorter")]
    fn rejects_short_id_map() {
        let a = random_matrix(1, 4, 1);
        let b = random_matrix(3, 4, 2);
        let mut heaps = vec![TopKHeap::new(1)];
        let mut scratch = GemmScratch::new();
        stream_topk_into_heaps(
            (&a).into(),
            (&b).into(),
            &mut heaps,
            ColumnIds::Mapped(&[1, 2]),
            &mut scratch,
        );
    }
}
