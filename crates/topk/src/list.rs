//! The result of a top-k query for one user.

/// A top-k result sorted best-first (descending score, ascending item id on
/// ties).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopKList {
    /// Item ids, best first.
    pub items: Vec<u32>,
    /// Scores aligned with `items`.
    pub scores: Vec<f64>,
}

impl TopKList {
    /// An empty result.
    pub fn empty() -> Self {
        TopKList::default()
    }

    /// Number of results (may be less than the requested `k` when the item
    /// set is small).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when no results were produced.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates `(item, score)` pairs best-first.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.items.iter().copied().zip(self.scores.iter().copied())
    }

    /// `true` if the two lists agree exactly on items and agree on scores
    /// within `tol` (relative). Used by cross-solver exactness tests.
    pub fn approx_eq(&self, other: &TopKList, tol: f64) -> bool {
        if self.items != other.items {
            return false;
        }
        self.scores
            .iter()
            .zip(&other.scores)
            .all(|(a, b)| (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())))
    }

    /// Checks the sorted-best-first invariant (descending scores, ids
    /// ascending within a tie). Cheap enough to assert in tests.
    pub fn is_sorted(&self) -> bool {
        self.items.len() == self.scores.len()
            && self
                .scores
                .windows(2)
                .zip(self.items.windows(2))
                .all(|(s, i)| s[0] > s[1] || (s[0] == s[1] && i[0] < i[1]))
    }

    /// Merges two lists into the top-k of their union (used when combining
    /// partial results, e.g. OPTIMUS's sampled users with the main run).
    pub fn merge(&self, other: &TopKList, k: usize) -> TopKList {
        let mut heap = crate::heap::TopKHeap::new(k);
        for (i, s) in self.iter().chain(other.iter()) {
            heap.push(s, i);
        }
        heap.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_len() {
        let l = TopKList {
            items: vec![4, 2],
            scores: vec![9.0, 3.0],
        };
        assert_eq!(l.len(), 2);
        assert!(!l.is_empty());
        let pairs: Vec<_> = l.iter().collect();
        assert_eq!(pairs, vec![(4, 9.0), (2, 3.0)]);
        assert!(TopKList::empty().is_empty());
    }

    #[test]
    fn approx_eq_tolerates_rounding_only() {
        let a = TopKList {
            items: vec![1, 2],
            scores: vec![1.0, 0.5],
        };
        let b = TopKList {
            items: vec![1, 2],
            scores: vec![1.0 + 1e-12, 0.5],
        };
        assert!(a.approx_eq(&b, 1e-9));
        let c = TopKList {
            items: vec![2, 1],
            scores: vec![1.0, 0.5],
        };
        assert!(!a.approx_eq(&c, 1e-9));
        let d = TopKList {
            items: vec![1, 2],
            scores: vec![1.1, 0.5],
        };
        assert!(!a.approx_eq(&d, 1e-9));
    }

    #[test]
    fn sorted_invariant() {
        let good = TopKList {
            items: vec![7, 1, 3],
            scores: vec![5.0, 2.0, 2.0],
        };
        assert!(good.is_sorted());
        let bad_tie = TopKList {
            items: vec![3, 1],
            scores: vec![2.0, 2.0],
        };
        assert!(!bad_tie.is_sorted());
        let bad_order = TopKList {
            items: vec![1, 2],
            scores: vec![1.0, 3.0],
        };
        assert!(!bad_order.is_sorted());
    }

    #[test]
    fn merge_takes_union_topk() {
        let a = TopKList {
            items: vec![0, 1],
            scores: vec![5.0, 3.0],
        };
        let b = TopKList {
            items: vec![2, 3],
            scores: vec![4.0, 1.0],
        };
        let m = a.merge(&b, 3);
        assert_eq!(m.items, vec![0, 2, 1]);
        assert_eq!(m.scores, vec![5.0, 4.0, 3.0]);
    }
}
