//! Row-wise top-k selection over dense score buffers.
//!
//! This is the "select the top K items for each user (e.g., using a
//! min-heap)" phase of the BMM brute force (§II-B). The scan skips heap
//! pushes for scores below the current threshold, which matters because the
//! threshold stabilizes quickly: for realistic rating distributions most of
//! the row is a single comparison.

use crate::heap::TopKHeap;
use crate::list::TopKList;
use mips_linalg::{Matrix, Scalar};

/// Top-k of one score row; item ids are the column indices.
pub fn row_topk(scores: &[f64], k: usize) -> TopKList {
    row_topk_offset(scores, k, 0)
}

/// Top-k of one score row whose columns represent items
/// `id_offset..id_offset + scores.len()`.
///
/// MAXIMUS scores items in cluster-list order, and LEMP scores bucket slices;
/// the offset keeps ids global without copying.
pub fn row_topk_offset(scores: &[f64], k: usize, id_offset: u32) -> TopKList {
    let mut heap = TopKHeap::new(k);
    let mut threshold = heap.threshold();
    for (j, &s) in scores.iter().enumerate() {
        if s > threshold || !heap.is_full() {
            heap.push(s, id_offset + j as u32);
            threshold = heap.threshold();
        }
    }
    heap.into_sorted()
}

/// Top-k of every row of a dense `rows × items` score buffer.
///
/// # Panics
/// Panics if `scores.len() != rows * items`.
pub fn rows_topk(scores: &[f64], rows: usize, items: usize, k: usize) -> Vec<TopKList> {
    assert_eq!(
        scores.len(),
        rows * items,
        "rows_topk: buffer shape mismatch"
    );
    scores
        .chunks_exact(items.max(1))
        .take(rows)
        .map(|row| row_topk(row, k))
        .collect()
}

/// Top-k of every row of a score matrix (e.g. the output of `U·Iᵀ`).
pub fn topk_all_rows<T: Scalar>(scores: &Matrix<T>, k: usize) -> Vec<TopKList> {
    scores
        .iter_rows()
        .map(|row| {
            let mut heap = TopKHeap::new(k);
            for (j, &s) in row.iter().enumerate() {
                heap.push(s.to_f64(), j as u32);
            }
            heap.into_sorted()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_topk_basic() {
        let scores = [0.1, 0.9, 0.5, 0.9, -1.0];
        let l = row_topk(&scores, 3);
        assert_eq!(l.items, vec![1, 3, 2]);
        assert_eq!(l.scores, vec![0.9, 0.9, 0.5]);
        assert!(l.is_sorted());
    }

    #[test]
    fn row_topk_k_larger_than_row() {
        let l = row_topk(&[2.0, 1.0], 10);
        assert_eq!(l.items, vec![0, 1]);
    }

    #[test]
    fn row_topk_k_zero_and_empty_row() {
        assert!(row_topk(&[1.0, 2.0], 0).is_empty());
        assert!(row_topk(&[], 3).is_empty());
    }

    #[test]
    fn offset_shifts_ids() {
        let l = row_topk_offset(&[1.0, 3.0, 2.0], 2, 100);
        assert_eq!(l.items, vec![101, 102]);
    }

    #[test]
    fn rows_topk_shapes() {
        let scores = vec![1.0, 2.0, 3.0, 6.0, 5.0, 4.0];
        let lists = rows_topk(&scores, 2, 3, 2);
        assert_eq!(lists.len(), 2);
        assert_eq!(lists[0].items, vec![2, 1]);
        assert_eq!(lists[1].items, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "buffer shape mismatch")]
    fn rows_topk_validates_shape() {
        let _ = rows_topk(&[1.0; 5], 2, 3, 1);
    }

    #[test]
    fn matrix_topk_matches_row_topk() {
        let m = Matrix::from_vec(2, 4, vec![4.0, 1.0, 3.0, 2.0, -1.0, -4.0, -2.0, -3.0]).unwrap();
        let lists = topk_all_rows(&m, 2);
        assert_eq!(lists[0].items, vec![0, 2]);
        assert_eq!(lists[1].items, vec![0, 2]);
        let direct = rows_topk(m.as_slice(), 2, 4, 2);
        assert_eq!(lists, direct);
    }

    #[test]
    fn matrix_topk_f32_input() {
        let m = Matrix::from_vec(1, 3, vec![1.0_f32, 5.0, 3.0]).unwrap();
        let lists = topk_all_rows(&m, 2);
        assert_eq!(lists[0].items, vec![1, 2]);
    }
}
