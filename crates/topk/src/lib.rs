//! Top-K selection for exact MIPS.
//!
//! Every solver in the repository ends the same way the paper's C++
//! implementations do: ratings stream into a bounded min-heap whose root is
//! the *worst retained* rating — the pruning threshold that LEMP, FEXIPRO and
//! MAXIMUS compare their upper bounds against. This crate provides that heap
//! plus batched row-wise selection over dense score matrices.
//!
//! Determinism: ties are broken toward the smaller item id everywhere, so
//! independent solvers produce byte-identical results and cross-solver tests
//! can compare exactly.
//!
//! [`fused`] additionally provides the fused GEMM→top-k path: score panels
//! stream out of the blocked multiply straight into the heaps, so the dense
//! `batch × n` score buffer of the two-stage pipeline never exists.
//!
//! [`screen`] is the mixed-precision variant of that path: the panels stream
//! in f32 with a conservative rounding envelope, and only the surviving
//! candidates are rescored in f64 — bit-identical output, roughly half the
//! scan bandwidth.
//!
//! [`screen_i8`] is the tier below: the scan runs on symmetric int8 codes
//! with exact integer dots and a quantization envelope, cutting the scan
//! bytes 8× against f64 — still bit-identical output after the f64 rescore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fused;
pub mod heap;
pub mod list;
pub mod screen;
pub mod screen_i8;
pub mod select;

pub use fused::{gemm_nt_topk, gemm_nt_topk_with, stream_topk_into_heaps, ColumnIds};
pub use heap::TopKHeap;
pub use list::TopKList;
pub use screen::{screen_topk_into_heaps, screen_topk_into_heaps_with, ScreenScratch, ScreenStats};
pub use screen_i8::{
    screen_i8_topk_into_heaps, screen_i8_topk_into_heaps_with, QuantItems, QuantUsers,
    ScreenI8Scratch,
};
pub use select::{row_topk, rows_topk, topk_all_rows};
