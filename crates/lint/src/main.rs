//! `mips-lint`: the repo-invariant lint pass.
//!
//! A zero-dependency, line/token-level checker for invariants `rustc` and
//! `clippy` cannot express because they are *repository* conventions, not
//! language rules:
//!
//! * **`unsafe-outside-simd`** — `unsafe` code is confined to
//!   `crates/linalg/src/simd/`; every other crate root carries
//!   `#![forbid(unsafe_code)]` (checked by `missing-forbid-unsafe`).
//! * **`missing-safety-comment`** — every `unsafe` occurrence inside the
//!   simd directory is annotated: a `// SAFETY:` (or `// SAFETY
//!   contract:`) comment in the contiguous comment/attribute block above
//!   it.
//! * **`nan-comparator`** — no `partial_cmp(..).unwrap()` /
//!   `partial_cmp(..).expect(..)` comparators; `f64::total_cmp` is total
//!   and NaN-safe, a panicking comparator inside `sort_by` aborts mid-sort
//!   on the first NaN a model sneaks in.
//! * **`std-sync-outside-facade`** — `mips-core` code never names
//!   `std::sync` / `std::thread` directly; everything goes through the
//!   `crate::sync` facade so `--cfg mips_model_check` can substitute the
//!   model-checked primitives. (Doc comments and integration tests are
//!   exempt: they run outside the model.)
//! * **`as-f32-narrowing`** — no `as f32` demotions outside the blessed
//!   mixed-precision sites listed in `crates/lint/allow.txt`; a stray
//!   narrowing silently forfeits the exactness contract.
//! * **`as-i8-narrowing`** — same discipline for the int8 screen tier: no
//!   `as i8` casts outside the blessed quantization sites. Quantizing is
//!   only exact-safe where the symmetric scale/clamp/envelope analysis
//!   applies; an unblessed cast is either a truncation bug or a screen
//!   site missing its error budget.
//!
//! Comments and string literals are stripped before token checks, so prose
//! about `unsafe` or examples inside doc comments never trip the lint.
//!
//! Usage: `cargo run -p mips-lint` (CI runs it from the workspace root);
//! `--root <dir>` overrides the workspace root; `--self-test` runs the
//! checker against seeded violations and fails unless every one is caught.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation at a file:line.
struct Finding {
    rule: &'static str,
    path: String,
    line: usize,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Carry-over lexer state between lines: inside a `/* */` comment, or
/// inside a multi-line string literal (with its closing delimiter).
#[derive(Clone, PartialEq)]
enum LexState {
    Code,
    BlockComment(u32),
    Str,
    RawStr(usize),
}

/// Strips comments and string-literal *contents* from one source line,
/// returning the code-only text (stripped spans become spaces so token
/// boundaries survive). Tracks block comments and multi-line strings
/// across lines via `state`.
fn strip_line(line: &str, state: &mut LexState) -> String {
    let bytes = line.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0usize;
    while i < bytes.len() {
        match state.clone() {
            LexState::BlockComment(depth) => {
                if bytes[i..].starts_with(b"*/") {
                    *state = if depth > 1 {
                        LexState::BlockComment(depth - 1)
                    } else {
                        LexState::Code
                    };
                    i += 2;
                } else if bytes[i..].starts_with(b"/*") {
                    *state = LexState::BlockComment(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            LexState::Str => {
                if bytes[i] == b'\\' {
                    i += 2;
                } else if bytes[i] == b'"' {
                    *state = LexState::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            LexState::RawStr(hashes) => {
                if bytes[i] == b'"'
                    && bytes[i + 1..].len() >= hashes
                    && bytes[i + 1..i + 1 + hashes].iter().all(|&b| b == b'#')
                {
                    *state = LexState::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            LexState::Code => {
                if bytes[i..].starts_with(b"//") {
                    break; // rest of the line is a comment
                } else if bytes[i..].starts_with(b"/*") {
                    *state = LexState::BlockComment(1);
                    i += 2;
                } else if bytes[i] == b'"' {
                    *state = LexState::Str;
                    i += 1;
                } else if bytes[i] == b'r'
                    && (i == 0 || !is_word(bytes[i - 1]))
                    && bytes[i + 1..]
                        .iter()
                        .take_while(|&&b| b == b'#')
                        .count()
                        .checked_add(i + 1)
                        .is_some_and(|j| bytes.get(j) == Some(&b'"'))
                {
                    let hashes = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
                    *state = LexState::RawStr(hashes);
                    i += 2 + hashes;
                } else if bytes[i] == b'\'' {
                    // Char literal or lifetime. `'x'` / `'\n'` are
                    // literals; `'a` (no closing quote nearby) is a
                    // lifetime — copy it through as code.
                    let close = if bytes.get(i + 1) == Some(&b'\\') {
                        bytes[i + 2..]
                            .iter()
                            .position(|&b| b == b'\'')
                            .map(|p| p + i + 3)
                    } else if bytes.get(i + 2) == Some(&b'\'') {
                        Some(i + 3)
                    } else {
                        None
                    };
                    match close {
                        Some(end) => i = end,
                        None => {
                            out[i] = bytes[i];
                            i += 1;
                        }
                    }
                } else {
                    out[i] = bytes[i];
                    i += 1;
                }
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Whether `needle` occurs in `code` as a whole token (word boundaries on
/// both sides; interior spaces in the needle match literal spaces).
fn has_token(code: &str, needle: &str) -> bool {
    token_at(code, needle).is_some()
}

fn token_at(code: &str, needle: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_word(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_word(bytes[end]);
        if left_ok && right_ok {
            return Some(start);
        }
        from = start + 1;
    }
    None
}

/// The per-file rule pass over pre-stripped code lines. `path` uses `/`
/// separators relative to the workspace root.
fn lint_lines(path: &str, raw: &[&str], code: &[String], findings: &mut Vec<Finding>) {
    let in_simd = path.contains("crates/linalg/src/simd/");
    let in_core_src = path.starts_with("crates/core/src/");
    let is_facade = path == "crates/core/src/sync.rs";

    for (idx, code_line) in code.iter().enumerate() {
        let line_no = idx + 1;

        // Rule: unsafe confined to the simd directory; inside it, every
        // occurrence is annotated with a SAFETY comment.
        if has_token(code_line, "unsafe") {
            if !in_simd {
                findings.push(Finding {
                    rule: "unsafe-outside-simd",
                    path: path.to_string(),
                    line: line_no,
                    message: "`unsafe` outside crates/linalg/src/simd/ — the repo confines \
                              unsafe code to the SIMD kernels"
                        .to_string(),
                });
            } else if !safety_annotated(raw, idx) {
                findings.push(Finding {
                    rule: "missing-safety-comment",
                    path: path.to_string(),
                    line: line_no,
                    message: "`unsafe` without a `// SAFETY:` comment in the attribute/comment \
                              block above it"
                        .to_string(),
                });
            }
        }

        // Rule: no partial_cmp(..).unwrap()/.expect(..) comparators. The
        // unwrap may land on the next line (rustfmt chains), so check a
        // two-line window after the call.
        if let Some(pos) = token_at(code_line, "partial_cmp") {
            let mut tail = code_line[pos..].to_string();
            if let Some(next) = code.get(idx + 1) {
                tail.push_str(next);
            }
            if tail.contains(".unwrap") || tail.contains(".expect") {
                findings.push(Finding {
                    rule: "nan-comparator",
                    path: path.to_string(),
                    line: line_no,
                    message: "partial_cmp(..).unwrap()/.expect(..) comparator — use \
                              `total_cmp`, which is total and NaN-safe"
                        .to_string(),
                });
            }
        }

        // Rule: mips-core library code reaches synchronization only
        // through the crate::sync facade.
        if in_core_src && !is_facade {
            for needle in ["std::sync", "std::thread"] {
                if has_token(code_line, needle) {
                    findings.push(Finding {
                        rule: "std-sync-outside-facade",
                        path: path.to_string(),
                        line: line_no,
                        message: format!(
                            "direct `{needle}` in mips-core — import through `crate::sync` so \
                             the model-check cfg can substitute instrumented primitives"
                        ),
                    });
                }
            }
        }

        // Rule: no f32 demotion outside blessed sites.
        if has_token(code_line, "as f32") {
            findings.push(Finding {
                rule: "as-f32-narrowing",
                path: path.to_string(),
                line: line_no,
                message: "`as f32` narrowing outside the blessed mixed-precision sites — exact \
                          scores must come from the f64 path (see crates/lint/allow.txt)"
                    .to_string(),
            });
        }

        // Rule: no i8 quantization casts outside blessed sites.
        if has_token(code_line, "as i8") {
            findings.push(Finding {
                rule: "as-i8-narrowing",
                path: path.to_string(),
                line: line_no,
                message: "`as i8` cast outside the blessed quantization sites — int8 codes are \
                          only exact-safe under the symmetric scale/clamp/envelope analysis \
                          (see crates/lint/allow.txt)"
                    .to_string(),
            });
        }
    }
}

/// Whether the `unsafe` at `raw[idx]` is annotated: a comment containing
/// `SAFETY` on the same line, or anywhere in the contiguous block of
/// comment/attribute/blank lines directly above it.
fn safety_annotated(raw: &[&str], idx: usize) -> bool {
    if raw[idx].contains("SAFETY") {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let t = raw[j].trim_start();
        if t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![") || t.is_empty() {
            if t.contains("SAFETY") {
                return true;
            }
        } else {
            break;
        }
    }
    false
}

/// Lints one file's content (entry point shared by the tree walk and the
/// self-test's seeded sources).
fn lint_content(path: &str, content: &str, findings: &mut Vec<Finding>) {
    let raw: Vec<&str> = content.lines().collect();
    let mut state = LexState::Code;
    let code: Vec<String> = raw.iter().map(|l| strip_line(l, &mut state)).collect();
    lint_lines(path, &raw, &code, findings);
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`. `mips-linalg`
/// is the one exemption: its simd module opts back in, under the SAFETY
/// rules above.
fn lint_forbid_unsafe(root: &Path, findings: &mut Vec<Finding>) {
    for dir in ["crates", "shims"] {
        let Ok(entries) = fs::read_dir(root.join(dir)) else {
            continue;
        };
        for entry in entries.flatten() {
            let lib = entry.path().join("src").join("lib.rs");
            let rel = format!("{dir}/{}/src/lib.rs", entry.file_name().to_string_lossy());
            if rel.contains("linalg") {
                continue;
            }
            let Ok(content) = fs::read_to_string(&lib) else {
                continue; // bin-only crate (mips-lint itself)
            };
            if !content.contains("#![forbid(unsafe_code)]") {
                findings.push(Finding {
                    rule: "missing-forbid-unsafe",
                    path: rel,
                    line: 1,
                    message: "crate root lacks `#![forbid(unsafe_code)]` — every crate except \
                              mips-linalg forbids unsafe outright"
                        .to_string(),
                });
            }
        }
    }
}

/// `(rule, path-fragment)` suppressions from `crates/lint/allow.txt`.
fn load_allow_list(root: &Path) -> Vec<(String, String)> {
    let path = root.join("crates").join("lint").join("allow.txt");
    let Ok(content) = fs::read_to_string(path) else {
        return Vec::new();
    };
    content
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let (rule, frag) = l.split_once(char::is_whitespace)?;
            Some((rule.to_string(), frag.trim().to_string()))
        })
        .collect()
}

fn is_allowed(finding: &Finding, allow: &[(String, String)]) -> bool {
    allow
        .iter()
        .any(|(rule, frag)| rule == finding.rule && finding.path.contains(frag))
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        if path.is_dir() {
            if name != "target" && name != ".git" {
                walk(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints the whole workspace under `root`. Returns the surviving
/// (non-allow-listed) findings.
fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    walk(&root.join("crates"), &mut files);
    walk(&root.join("shims"), &mut files);
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = fs::read_to_string(file) else {
            continue;
        };
        lint_content(&rel, &content, &mut findings);
    }
    lint_forbid_unsafe(root, &mut findings);

    let allow = load_allow_list(root);
    findings.retain(|f| !is_allowed(f, &allow));
    findings
}

/// Seeded-violation self-test: every rule must fire on a planted bad
/// source and stay silent on a clean one. Exits nonzero if the checker
/// misses any seed — a lint that cannot fail its own seeds proves
/// nothing.
fn self_test() -> ExitCode {
    // (rule that must fire, path it is seeded at, source)
    let seeds: &[(&str, &str, &str)] = &[
        (
            "unsafe-outside-simd",
            "crates/core/src/seeded.rs",
            "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        ),
        (
            "missing-safety-comment",
            "crates/linalg/src/simd/seeded.rs",
            "pub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
        ),
        (
            "nan-comparator",
            "crates/data/src/seeded.rs",
            "pub fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
        ),
        (
            "nan-comparator",
            "crates/data/src/seeded_split.rs",
            "pub fn f(xs: &mut [f64]) {\n    xs.sort_by(|a, b| a.partial_cmp(b)\n        .expect(\"finite\"));\n}\n",
        ),
        (
            "std-sync-outside-facade",
            "crates/core/src/seeded_sync.rs",
            "use std::sync::Mutex;\npub static M: Mutex<u32> = Mutex::new(0);\n",
        ),
        (
            "std-sync-outside-facade",
            "crates/core/src/seeded_thread.rs",
            "pub fn f() {\n    std::thread::yield_now();\n}\n",
        ),
        (
            "as-f32-narrowing",
            "crates/topk/src/seeded.rs",
            "pub fn f(x: f64) -> f32 {\n    x as f32\n}\n",
        ),
        (
            "as-i8-narrowing",
            "crates/topk/src/seeded_i8.rs",
            "pub fn f(x: f64) -> i8 {\n    x as i8\n}\n",
        ),
    ];

    // Sources the lint must NOT flag: the conventions done right, plus
    // prose/doc-example mentions that only a token-level check survives.
    let clean: &[(&str, &str)] = &[
        (
            "crates/linalg/src/simd/seeded_good.rs",
            "pub fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n",
        ),
        (
            "crates/core/src/seeded_good.rs",
            "//! Doc prose may say unsafe, std::sync::Mutex, x as f32, and\n//! partial_cmp(a).unwrap() without tripping the lint.\nuse crate::sync::Mutex;\npub fn f(xs: &mut [f64]) {\n    let s = \"unsafe { std::sync::x as f32 }\";\n    let _ = s;\n    xs.sort_by(|a, b| a.total_cmp(b));\n}\n",
        ),
        (
            "crates/topk/src/seeded_good.rs",
            "pub fn f(x: f32) -> f64 {\n    f64::from(x) // widening is always fine\n}\n",
        ),
        (
            "crates/topk/src/seeded_good_i8.rs",
            "//! Doc prose may mention v as i8 without tripping the lint.\npub fn f(x: i8) -> i32 {\n    i32::from(x) // widening an i8 code is always fine\n}\n",
        ),
    ];

    let mut failed = false;
    for (rule, path, src) in seeds {
        let mut findings = Vec::new();
        lint_content(path, src, &mut findings);
        if findings.iter().any(|f| f.rule == *rule) {
            println!("self-test: [{rule}] caught at {path}");
        } else {
            println!("self-test: FAIL — seeded [{rule}] at {path} was not caught");
            failed = true;
        }
    }
    for (path, src) in clean {
        let mut findings = Vec::new();
        lint_content(path, src, &mut findings);
        for f in &findings {
            println!("self-test: FAIL — false positive on clean source: {f}");
            failed = true;
        }
    }

    if failed {
        println!("self-test: FAILED");
        ExitCode::FAILURE
    } else {
        println!(
            "self-test: ok ({} seeds caught, {} clean files silent)",
            seeds.len(),
            clean.len()
        );
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        return self_test();
    }
    let root = match args.iter().position(|a| a == "--root") {
        Some(i) => PathBuf::from(args.get(i + 1).expect("--root needs a path")),
        // The workspace root, from the lint crate's own manifest dir —
        // correct no matter where cargo is invoked from.
        None => Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("crates/lint has a workspace root")
            .to_path_buf(),
    };

    let findings = lint_workspace(&root);
    if findings.is_empty() {
        println!("mips-lint: clean");
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        println!("mips-lint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}
