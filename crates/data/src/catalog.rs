//! Scaled stand-ins for the paper's 23 reference models.
//!
//! Table I of the paper lists four datasets; §V-A trains 23 models over them
//! (Netflix-DSGD/NOMAD/BPR, R2-NOMAD, KDD-NOMAD, KDD-REF, GloVe-Twitter at
//! various factor counts). Each [`ModelSpec`] here reproduces one of those
//! models as a synthetic stand-in whose distributional knobs are chosen to
//! mimic the published solver win/loss pattern:
//!
//! * *Netflix* models (especially BPR) have flat item-norm distributions and
//!   diffuse users — blocked matrix multiply territory (Fig. 2 left).
//! * *R2* and *KDD* models have heavy item-norm skew and tighter user
//!   bundles — pruning indexes win (Fig. 2 right), and KDD's huge item
//!   catalog magnifies the effect.
//! * *GloVe* embeddings are strongly direction-clustered with fast spectral
//!   decay — MAXIMUS-friendly.
//!
//! Sizes are scaled down ~100× from Table I so the full grid runs in minutes;
//! the user:item shape ratios are preserved. `scale` multiplies both counts.

use crate::model::MfModel;
use crate::synth::{synth_model, SynthConfig};

/// Identifies one reference model from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSpec {
    /// Dataset family: `"Netflix"`, `"KDD"`, `"R2"`, or `"GloVe"`.
    pub dataset: &'static str,
    /// Training algorithm: `"DSGD"`, `"NOMAD"`, `"BPR"`, `"REF"`, or `""`.
    pub training: &'static str,
    /// Latent factor count.
    pub f: usize,
}

impl ModelSpec {
    /// Paper-style display name, e.g. `"Netflix-DSGD, f = 50"`.
    pub fn name(&self) -> String {
        if self.training.is_empty() {
            format!("{} Twitter, f = {}", self.dataset, self.f)
        } else {
            format!("{}-{}, f = {}", self.dataset, self.training, self.f)
        }
    }

    /// Base (scale = 1) user/item counts, preserving Table I shape ratios.
    pub fn base_shape(&self) -> (usize, usize) {
        match self.dataset {
            // Table I: 480,189 users / 17,770 items.
            "Netflix" => (3600, 1300),
            // Table I: 1,000,990 users / 624,961 items — huge item catalog.
            "KDD" => (2200, 4400),
            // Table I: 1,823,179 users / 136,736 items — most users.
            "R2" => (5200, 1500),
            // Table I: 100,000 query vectors / 1,093,514 item vectors.
            "GloVe" => (700, 5600),
            other => panic!("unknown dataset {other}"),
        }
    }

    /// The full-scale user/item counts from Table I of the paper.
    pub fn paper_shape(&self) -> (usize, usize) {
        match self.dataset {
            "Netflix" => (480_189, 17_770),
            "KDD" => (1_000_990, 624_961),
            "R2" => (1_823_179, 136_736),
            "GloVe" => (100_000, 1_093_514),
            other => panic!("unknown dataset {other}"),
        }
    }

    /// MAXIMUS's item blocking factor, scaled from the paper's fixed
    /// `B = 4096` by this dataset's item-count ratio: at paper scale B is
    /// 23 % of the Netflix catalog but 0.65 % of KDD's, and that *fraction*
    /// is what shapes the work-sharing trade-off.
    pub fn scaled_block_size(&self, num_items: usize) -> usize {
        let (_, paper_items) = self.paper_shape();
        ((4096.0 * num_items as f64 / paper_items as f64).round() as usize).clamp(16, 4096)
    }

    /// Distributional knobs mimicking this model family (see module docs).
    fn knobs(&self) -> (usize, f64, f64, f64) {
        // (user_clusters, user_spread, item_norm_skew, spectral_decay)
        match (self.dataset, self.training) {
            // Explicit Netflix models: moderate structure; BMM competitive.
            ("Netflix", "DSGD") => (10, 0.65, 0.30, 0.97),
            ("Netflix", "NOMAD") => (10, 0.55, 0.32, 0.96),
            // Implicit BPR: diffuse users, flat norms — indexes prune poorly.
            ("Netflix", "BPR") => (6, 1.30, 0.08, 1.00),
            // Yahoo R2: strong popularity skew, tight user bundles.
            ("R2", "NOMAD") => (12, 0.22, 1.05, 0.94),
            // Yahoo KDD: skewed norms over an enormous catalog.
            ("KDD", "NOMAD") => (12, 0.30, 0.95, 0.94),
            ("KDD", "REF") => (14, 0.26, 1.10, 0.93),
            // GloVe embeddings: directional clusters, fast spectral decay.
            ("GloVe", "") => (10, 0.28, 0.45, 0.92),
            (d, t) => panic!("unknown model family {d}-{t}"),
        }
    }

    /// Deterministic per-spec seed.
    fn seed(&self) -> u64 {
        let mut h: u64 = 0xCBF29CE484222325;
        for b in self
            .dataset
            .bytes()
            .chain(self.training.bytes())
            .chain(self.f.to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        h
    }

    /// Generates the stand-in model at the given scale.
    ///
    /// # Panics
    /// Panics if `scale` is not a positive finite number.
    pub fn build(&self, scale: f64) -> MfModel {
        assert!(
            scale.is_finite() && scale > 0.0,
            "ModelSpec::build: scale must be positive"
        );
        let (bu, bi) = self.base_shape();
        let (user_clusters, user_spread, item_norm_skew, spectral_decay) = self.knobs();
        let cfg = SynthConfig {
            num_users: ((bu as f64 * scale) as usize).max(16),
            num_items: ((bi as f64 * scale) as usize).max(16),
            num_factors: self.f,
            seed: self.seed(),
            user_clusters,
            user_spread,
            item_norm_skew,
            spectral_decay,
        };
        let m = synth_model(&cfg);
        MfModel::new(self.name(), m.users().clone(), m.items().clone())
            .expect("synthetic model is valid")
    }
}

/// All 23 reference models of §V-A, in the order of Figure 5.
pub fn reference_models() -> Vec<ModelSpec> {
    let mut specs = Vec::with_capacity(23);
    for f in [10, 50, 100] {
        specs.push(ModelSpec {
            dataset: "Netflix",
            training: "DSGD",
            f,
        });
    }
    for f in [10, 25, 50, 100] {
        specs.push(ModelSpec {
            dataset: "Netflix",
            training: "NOMAD",
            f,
        });
    }
    for f in [10, 25, 50, 100] {
        specs.push(ModelSpec {
            dataset: "Netflix",
            training: "BPR",
            f,
        });
    }
    for f in [10, 25, 50, 100] {
        specs.push(ModelSpec {
            dataset: "R2",
            training: "NOMAD",
            f,
        });
    }
    for f in [10, 25, 50, 100] {
        specs.push(ModelSpec {
            dataset: "KDD",
            training: "NOMAD",
            f,
        });
    }
    specs.push(ModelSpec {
        dataset: "KDD",
        training: "REF",
        f: 51,
    });
    for f in [50, 100, 200] {
        specs.push(ModelSpec {
            dataset: "GloVe",
            training: "",
            f,
        });
    }
    specs
}

/// Looks up a spec by family and factor count.
pub fn find(dataset: &str, training: &str, f: usize) -> Option<ModelSpec> {
    reference_models()
        .into_iter()
        .find(|s| s.dataset == dataset && s.training == training && s.f == f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_23_models_like_the_paper() {
        assert_eq!(reference_models().len(), 23);
    }

    #[test]
    fn names_match_paper_style() {
        let spec = find("Netflix", "DSGD", 50).unwrap();
        assert_eq!(spec.name(), "Netflix-DSGD, f = 50");
        let glove = find("GloVe", "", 100).unwrap();
        assert_eq!(glove.name(), "GloVe Twitter, f = 100");
        let kdd = find("KDD", "REF", 51).unwrap();
        assert_eq!(kdd.name(), "KDD-REF, f = 51");
    }

    #[test]
    fn all_specs_build_at_tiny_scale() {
        for spec in reference_models() {
            let m = spec.build(0.02);
            assert!(m.num_users() >= 16, "{}", spec.name());
            assert!(m.num_items() >= 16, "{}", spec.name());
            assert_eq!(m.num_factors(), spec.f, "{}", spec.name());
        }
    }

    #[test]
    fn scale_changes_size_not_structure() {
        let spec = find("R2", "NOMAD", 25).unwrap();
        let small = spec.build(0.05);
        let big = spec.build(0.1);
        assert!(big.num_users() > small.num_users());
        assert_eq!(small.num_factors(), big.num_factors());
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = find("KDD", "NOMAD", 10).unwrap();
        let a = spec.build(0.05);
        let b = spec.build(0.05);
        assert_eq!(a.users().as_slice(), b.users().as_slice());
    }

    #[test]
    fn distinct_specs_get_distinct_seeds() {
        let a = find("Netflix", "NOMAD", 50).unwrap();
        let b = find("Netflix", "NOMAD", 100).unwrap();
        let c = find("R2", "NOMAD", 50).unwrap();
        assert_ne!(a.seed(), b.seed());
        assert_ne!(a.seed(), c.seed());
    }

    #[test]
    fn shape_ratios_follow_table1() {
        // KDD and GloVe have more items than users; Netflix and R2 fewer.
        let (nu, ni) = ModelSpec {
            dataset: "KDD",
            training: "NOMAD",
            f: 10,
        }
        .base_shape();
        assert!(ni > nu);
        let (nu, ni) = ModelSpec {
            dataset: "Netflix",
            training: "DSGD",
            f: 10,
        }
        .base_shape();
        assert!(nu > ni);
    }

    #[test]
    fn find_returns_none_for_unknown() {
        assert!(find("Netflix", "DSGD", 77).is_none());
    }
}
