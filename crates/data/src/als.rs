//! Alternating least squares: the third MF training substrate.
//!
//! The paper's KDD-REF reference model comes from Koenigstein et al.'s
//! Yahoo! Music system \[17\], which (like most production recommenders of
//! that era) is fit by alternating least squares: holding items fixed, each
//! user vector is the ridge-regression solution of its observed ratings,
//! and vice versa. Each update solves an `f × f` SPD system
//! `(Σ iᵢiᵢᵀ + λI)·u = Σ r_ui·iᵢ` via the Cholesky factorization in
//! `mips-linalg`.

use crate::model::MfModel;
use crate::ratings::RatingsData;
use mips_linalg::chol::cholesky;
use mips_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters for [`train_als`].
#[derive(Debug, Clone, Copy)]
pub struct AlsConfig {
    /// Latent dimensionality of the learned factors.
    pub num_factors: usize,
    /// Number of alternating sweeps (one sweep = users then items).
    pub sweeps: usize,
    /// Ridge regularization λ (scaled by each row's rating count, the
    /// "weighted-λ" convention that makes λ scale-free).
    pub regularization: f64,
    /// Seed for factor initialization.
    pub seed: u64,
}

impl Default for AlsConfig {
    fn default() -> Self {
        AlsConfig {
            num_factors: 16,
            sweeps: 10,
            regularization: 0.1,
            seed: 0xA15,
        }
    }
}

/// Trains an explicit-feedback MF model by alternating least squares.
///
/// Deterministic for a fixed config. Users or items with no observed
/// ratings keep their (small random) initialization.
///
/// # Panics
/// Panics if the ratings are empty or the config is degenerate.
pub fn train_als(data: &RatingsData, config: &AlsConfig) -> MfModel {
    assert!(!data.is_empty(), "train_als: no ratings");
    assert!(config.num_factors > 0, "train_als: num_factors must be > 0");
    assert!(config.sweeps > 0, "train_als: sweeps must be > 0");
    assert!(
        config.regularization > 0.0,
        "train_als: regularization must be positive (the normal equations \
         need the ridge term to stay positive definite)"
    );

    let f = config.num_factors;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let init = (1.0 / f as f64).sqrt();
    let mut users = Matrix::from_fn(data.num_users, f, |_, _| (rng.gen::<f64>() - 0.5) * init);
    let mut items = Matrix::from_fn(data.num_items, f, |_, _| (rng.gen::<f64>() - 0.5) * init);

    // Ratings grouped per user and per item, built once.
    let mut by_user: Vec<Vec<(u32, f64)>> = vec![Vec::new(); data.num_users];
    let mut by_item: Vec<Vec<(u32, f64)>> = vec![Vec::new(); data.num_items];
    for &(u, i, r) in &data.triples {
        by_user[u as usize].push((i, r));
        by_item[i as usize].push((u, r));
    }

    for _ in 0..config.sweeps {
        solve_side(&mut users, &items, &by_user, config.regularization);
        solve_side(&mut items, &users, &by_item, config.regularization);
    }

    MfModel::new(format!("als(f={f},sweeps={})", config.sweeps), users, items)
        .expect("ALS keeps factors finite")
}

/// Recomputes every row of `target` as the ridge solution against the fixed
/// `other` side.
fn solve_side(
    target: &mut Matrix<f64>,
    other: &Matrix<f64>,
    observed: &[Vec<(u32, f64)>],
    lambda: f64,
) {
    let f = target.cols();
    for (row_id, obs) in observed.iter().enumerate() {
        if obs.is_empty() {
            continue;
        }
        // Normal equations: A = Σ vvᵀ + λ·|obs|·I, b = Σ r·v.
        let mut a = Matrix::<f64>::zeros(f, f);
        let mut b = vec![0.0f64; f];
        for &(j, r) in obs {
            let v = other.row(j as usize);
            for p in 0..f {
                let vp = v[p];
                b[p] += r * vp;
                let arow = a.row_mut(p);
                for (q, &vq) in v.iter().enumerate().skip(p) {
                    arow[q] += vp * vq;
                }
            }
        }
        let ridge = lambda * obs.len() as f64;
        for p in 0..f {
            a.set(p, p, a.get(p, p) + ridge);
        }
        let solution = cholesky(&a)
            .expect("ridge-regularized normal equations are SPD")
            .solve(&b);
        target.row_mut(row_id).copy_from_slice(&solution);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_model, SynthConfig};

    fn toy_data() -> RatingsData {
        let truth = synth_model(&SynthConfig {
            num_users: 60,
            num_items: 40,
            num_factors: 4,
            user_spread: 0.4,
            item_norm_skew: 0.2,
            seed: 31,
            ..SynthConfig::default()
        });
        RatingsData::from_ground_truth(&truth, 15, 0.05, 17)
    }

    #[test]
    fn als_fits_better_than_mean_baseline() {
        let data = toy_data();
        let (train, test) = data.split(0.2, 5);
        let model = train_als(
            &train,
            &AlsConfig {
                num_factors: 8,
                sweeps: 12,
                regularization: 0.05,
                ..AlsConfig::default()
            },
        );
        let mean = train.global_mean();
        let baseline = {
            let sse: f64 = test
                .triples
                .iter()
                .map(|&(_, _, r)| (r - mean) * (r - mean))
                .sum();
            (sse / test.len() as f64).sqrt()
        };
        let rmse = test.rmse(&model);
        assert!(
            rmse < baseline * 0.6,
            "ALS RMSE {rmse} vs baseline {baseline}"
        );
    }

    #[test]
    fn als_is_deterministic() {
        let data = toy_data();
        let cfg = AlsConfig::default();
        let a = train_als(&data, &cfg);
        let b = train_als(&data, &cfg);
        assert_eq!(a.users().as_slice(), b.users().as_slice());
        assert_eq!(a.items().as_slice(), b.items().as_slice());
    }

    #[test]
    fn more_sweeps_monotonically_fit_train() {
        let data = toy_data();
        let short = train_als(
            &data,
            &AlsConfig {
                sweeps: 1,
                ..AlsConfig::default()
            },
        );
        let long = train_als(
            &data,
            &AlsConfig {
                sweeps: 10,
                ..AlsConfig::default()
            },
        );
        assert!(data.rmse(&long) <= data.rmse(&short) + 1e-9);
    }

    #[test]
    fn als_beats_sgd_on_the_same_budgetless_comparison() {
        // Not a horse race — just a sanity check that the two trainers land
        // in the same quality regime on the same data.
        use crate::sgd::{train_sgd, SgdConfig};
        let data = toy_data();
        let (train, test) = data.split(0.2, 7);
        let als = train_als(
            &train,
            &AlsConfig {
                num_factors: 8,
                sweeps: 10,
                regularization: 0.05,
                ..AlsConfig::default()
            },
        );
        let sgd = train_sgd(
            &train,
            &SgdConfig {
                num_factors: 8,
                epochs: 25,
                ..SgdConfig::default()
            },
        );
        let (ra, rs) = (test.rmse(&als), test.rmse(&sgd));
        // ALS solves each subproblem exactly; it should never trail SGD by
        // much on a problem this small (it beats it outright here).
        assert!(ra < rs * 1.5, "ALS {ra} much worse than SGD {rs}");
    }

    #[test]
    fn cold_rows_keep_initialization() {
        // Item 39 unobserved: its factors must stay finite and the model
        // must still serve.
        let mut data = toy_data();
        data.triples.retain(|&(_, i, _)| i != 39);
        let model = train_als(&data, &AlsConfig::default());
        assert!(model.items().row(39).iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "regularization")]
    fn rejects_zero_regularization() {
        let data = toy_data();
        let _ = train_als(
            &data,
            &AlsConfig {
                regularization: 0.0,
                ..AlsConfig::default()
            },
        );
    }
}
