//! The matrix-factorization model type consumed by every MIPS solver.

use mips_linalg::{dot, LinalgError, Matrix};
use std::fmt;
use std::sync::Arc;

/// Errors raised when constructing a model from untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// User and item matrices disagree on the number of latent factors.
    FactorMismatch {
        /// Latent factors in the user matrix.
        user_factors: usize,
        /// Latent factors in the item matrix.
        item_factors: usize,
    },
    /// A matrix failed validation (empty or non-finite).
    InvalidMatrix(LinalgError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::FactorMismatch {
                user_factors,
                item_factors,
            } => write!(
                f,
                "user matrix has {user_factors} factors but item matrix has {item_factors}"
            ),
            ModelError::InvalidMatrix(e) => write!(f, "invalid factor matrix: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::InvalidMatrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ModelError {
    fn from(e: LinalgError) -> Self {
        ModelError::InvalidMatrix(e)
    }
}

/// A trained matrix-factorization model: one `f`-dimensional vector per user
/// and per item, with predicted rating `r̂_ui = uᵀi`.
///
/// Both matrices are validated (non-empty, finite, matching width) at
/// construction, so solvers can assume well-formed input. Models are shared
/// between solvers and the optimizer via [`Arc`].
#[derive(Debug, Clone)]
pub struct MfModel {
    name: String,
    users: Matrix<f64>,
    items: Matrix<f64>,
    /// Whether construction ran the full matrix validation; consumers that
    /// must defend against NaN (the serving engine's model intake) skip
    /// their re-scan when this is set.
    validated: bool,
}

impl MfModel {
    /// Builds and validates a model.
    pub fn new(
        name: impl Into<String>,
        users: Matrix<f64>,
        items: Matrix<f64>,
    ) -> Result<Self, ModelError> {
        users.validate("MfModel users")?;
        items.validate("MfModel items")?;
        if users.cols() != items.cols() {
            return Err(ModelError::FactorMismatch {
                user_factors: users.cols(),
                item_factors: items.cols(),
            });
        }
        Ok(MfModel {
            name: name.into(),
            users,
            items,
            validated: true,
        })
    }

    /// Builds a model **without** validating the matrices.
    ///
    /// For trusted zero-copy loaders (and tests of downstream validation)
    /// where re-scanning every factor at construction is unwanted. The
    /// serving engine re-checks finiteness at its model intake points
    /// (`EngineBuilder::build` and `Engine::swap_model`), so a non-finite
    /// or shape-mismatched model built this way surfaces as a typed error
    /// there rather than as silent NaN-poisoned results.
    pub fn new_unvalidated(
        name: impl Into<String>,
        users: Matrix<f64>,
        items: Matrix<f64>,
    ) -> MfModel {
        MfModel {
            name: name.into(),
            users,
            items,
            validated: false,
        }
    }

    /// Whether this model was constructed through the validating path
    /// ([`MfModel::new`]/[`MfModel::new_shared`]). Models from
    /// [`MfModel::new_unvalidated`] report `false`, telling downstream
    /// intake checks (the engine's build/swap validation) to re-scan.
    pub fn is_validated(&self) -> bool {
        self.validated
    }

    /// Builds a model and wraps it in an [`Arc`] for sharing across solvers.
    pub fn new_shared(
        name: impl Into<String>,
        users: Matrix<f64>,
        items: Matrix<f64>,
    ) -> Result<Arc<Self>, ModelError> {
        Ok(Arc::new(Self::new(name, users, items)?))
    }

    /// Human-readable model name (e.g. `"Netflix-DSGD, f = 50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The user factor matrix (`|U| × f`).
    pub fn users(&self) -> &Matrix<f64> {
        &self.users
    }

    /// The item factor matrix (`|I| × f`).
    pub fn items(&self) -> &Matrix<f64> {
        &self.items
    }

    /// Number of users `|U|`.
    pub fn num_users(&self) -> usize {
        self.users.rows()
    }

    /// Number of items `|I|`.
    pub fn num_items(&self) -> usize {
        self.items.rows()
    }

    /// Number of latent factors `f`.
    pub fn num_factors(&self) -> usize {
        self.users.cols()
    }

    /// The predicted rating `uᵀi` for one user–item pair.
    pub fn predict(&self, user: usize, item: usize) -> f64 {
        dot(self.users.row(user), self.items.row(item))
    }

    /// A copy restricted to the given users (used by OPTIMUS sampling tests).
    pub fn with_users(&self, indices: &[usize]) -> MfModel {
        MfModel {
            name: format!("{}[{} users]", self.name, indices.len()),
            users: self.users.gather_rows(indices),
            items: self.items.clone(),
            // Row-gathering validated matrices cannot introduce NaN.
            validated: self.validated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users2x2() -> Matrix<f64> {
        Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap()
    }

    fn items3x2() -> Matrix<f64> {
        Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = MfModel::new("test", users2x2(), items3x2()).unwrap();
        assert_eq!(m.name(), "test");
        assert_eq!(m.num_users(), 2);
        assert_eq!(m.num_items(), 3);
        assert_eq!(m.num_factors(), 2);
        assert_eq!(m.predict(0, 1), 3.0);
        assert_eq!(m.predict(1, 2), 6.0);
    }

    #[test]
    fn rejects_factor_mismatch() {
        let users = Matrix::from_vec(2, 3, vec![0.5; 6]).unwrap();
        let err = MfModel::new("bad", users, items3x2()).unwrap_err();
        assert!(matches!(err, ModelError::FactorMismatch { .. }));
        assert!(err.to_string().contains("3 factors"));
    }

    #[test]
    fn rejects_non_finite_factors() {
        let mut users = users2x2();
        users.set(0, 0, f64::NAN);
        let err = MfModel::new("nan", users, items3x2()).unwrap_err();
        assert!(matches!(err, ModelError::InvalidMatrix(_)));
    }

    #[test]
    fn rejects_empty_matrices() {
        let empty = Matrix::<f64>::zeros(0, 2);
        assert!(MfModel::new("e", empty, items3x2()).is_err());
    }

    #[test]
    fn with_users_subsets() {
        let m = MfModel::new("test", users2x2(), items3x2()).unwrap();
        let sub = m.with_users(&[1]);
        assert_eq!(sub.num_users(), 1);
        assert_eq!(sub.num_items(), 3);
        assert_eq!(sub.predict(0, 2), 6.0);
    }

    #[test]
    fn shared_constructor_returns_arc() {
        let m = MfModel::new_shared("s", users2x2(), items3x2()).unwrap();
        let m2 = m.clone();
        assert_eq!(m2.num_users(), 2);
    }
}
