//! The matrix-factorization model type consumed by every MIPS solver, and
//! the zero-copy [`ModelView`] over a contiguous user range of it.

use mips_linalg::{dot, norm2, quantize_row_i8, LinalgError, Matrix, RowBlock, I8_DOT_MAX_LEN};
use std::fmt;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

/// Errors raised when constructing a model from untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// User and item matrices disagree on the number of latent factors.
    FactorMismatch {
        /// Latent factors in the user matrix.
        user_factors: usize,
        /// Latent factors in the item matrix.
        item_factors: usize,
    },
    /// A matrix failed validation (empty or non-finite).
    InvalidMatrix(LinalgError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::FactorMismatch {
                user_factors,
                item_factors,
            } => write!(
                f,
                "user matrix has {user_factors} factors but item matrix has {item_factors}"
            ),
            ModelError::InvalidMatrix(e) => write!(f, "invalid factor matrix: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::InvalidMatrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for ModelError {
    fn from(e: LinalgError) -> Self {
        ModelError::InvalidMatrix(e)
    }
}

/// A trained matrix-factorization model: one `f`-dimensional vector per user
/// and per item, with predicted rating `r̂_ui = uᵀi`.
///
/// Both matrices are validated (non-empty, finite, matching width) at
/// construction, so solvers can assume well-formed input. Models are shared
/// between solvers and the optimizer via [`Arc`].
#[derive(Debug, Clone)]
pub struct MfModel {
    name: String,
    users: Matrix<f64>,
    items: Matrix<f64>,
    /// Whether construction ran the full matrix validation; consumers that
    /// must defend against NaN (the serving engine's model intake) skip
    /// their re-scan when this is set.
    validated: bool,
    /// The lazily built single-precision mirror (see [`Mirror32`]), cached
    /// for the model's lifetime like solvers and plans are cached per epoch:
    /// a swapped-in model builds its mirror at most once, and every view or
    /// shard over the model shares it through the parent `Arc`. Cloning a
    /// model shares an already built mirror (the mirror is a pure function
    /// of the factor matrices, which clones share).
    mirror32: OnceLock<Arc<Mirror32>>,
    /// The lazily built int8 mirror (see [`MirrorI8`]); same caching and
    /// sharing discipline as `mirror32`.
    mirror_i8: OnceLock<Arc<MirrorI8>>,
}

/// The single-precision mirror of a model's factor matrices, plus the exact
/// (f64) row norms the screen envelope is evaluated against.
///
/// This is the data side of the mixed-precision screen path: scan backends
/// prune in f32 against `users()`/`items()`, widen every screened score by
/// `mips_linalg::f32_screen_envelope(f, user_norms[u], item_norms[i])`, and
/// rescore the survivors on the parent model's f64 matrices. The norms are
/// computed in f64 *before* rounding, so the envelope's Cauchy–Schwarz bound
/// refers to the true vectors.
///
/// `f64 → f32` conversion rounds to nearest; values beyond f32 range become
/// infinite, in which case the mirror marks itself unusable
/// ([`Mirror32::is_usable`]) and every consumer falls back to the pure-f64
/// path rather than screening against garbage.
#[derive(Debug)]
pub struct Mirror32 {
    users: Matrix<f32>,
    items: Matrix<f32>,
    user_norms: Vec<f64>,
    item_norms: Vec<f64>,
    usable: bool,
}

impl Mirror32 {
    fn build(users: &Matrix<f64>, items: &Matrix<f64>) -> Mirror32 {
        let users32: Matrix<f32> = users.cast();
        let items32: Matrix<f32> = items.cast();
        let usable = users32.as_slice().iter().all(|v| v.is_finite())
            && items32.as_slice().iter().all(|v| v.is_finite());
        let row_norms = |m: &Matrix<f64>| m.iter_rows().map(norm2).collect();
        Mirror32 {
            user_norms: row_norms(users),
            item_norms: row_norms(items),
            users: users32,
            items: items32,
            usable,
        }
    }

    /// The rounded user factor matrix (`|U| × f`).
    pub fn users(&self) -> &Matrix<f32> {
        &self.users
    }

    /// The rounded item factor matrix (`|I| × f`).
    pub fn items(&self) -> &Matrix<f32> {
        &self.items
    }

    /// Exact (f64) Euclidean norm of each original user row.
    pub fn user_norms(&self) -> &[f64] {
        &self.user_norms
    }

    /// Exact (f64) Euclidean norm of each original item row.
    pub fn item_norms(&self) -> &[f64] {
        &self.item_norms
    }

    /// `false` when some factor overflowed the f32 range, making the mirror
    /// unfit for screening (consumers must fall back to f64-direct).
    pub fn is_usable(&self) -> bool {
        self.usable
    }
}

/// The int8 mirror of a model's factor matrices: every row quantized
/// symmetrically to `[-127, 127]` with its own scale
/// (`mips_linalg::quant::scale_for`), plus the exact (f64) L1 norms the int8
/// screen envelope is evaluated against.
///
/// This is the data side of the int8 screen tier below the f32 one: scan
/// backends compute the *exact* integer dot `D = q(u)·q(i)` (order-invariant,
/// so bit-identical across SIMD kernels), reconstruct `ŝ = D/(s_u·s_i)`,
/// widen by `mips_linalg::i8_screen_envelope_parts` — which needs `s_u`,
/// `‖u‖₁`, `1/s_i`, and `‖i‖₁` — and rescore the survivors on the parent
/// model's f64 matrices. The L1 norms are computed in f64 *before* rounding,
/// so the envelope refers to the true vectors.
///
/// A mirror is unusable ([`MirrorI8::is_usable`]) when any row's scale is
/// non-finite (a subnormal max-magnitude drives `127/max_abs` to infinity),
/// any L1 norm is non-finite (NaN-poisoned unvalidated input), or the factor
/// count exceeds the integer kernels' i32-overflow cap
/// (`mips_linalg::I8_DOT_MAX_LEN`); consumers then fall back to the pure-f64
/// path rather than screening against garbage.
#[derive(Debug)]
pub struct MirrorI8 {
    users_q: Vec<i8>,
    items_q: Vec<i8>,
    f: usize,
    user_scales: Vec<f64>,
    item_inv_scales: Vec<f64>,
    user_l1: Vec<f64>,
    item_l1: Vec<f64>,
    usable: bool,
}

impl MirrorI8 {
    fn build(users: &Matrix<f64>, items: &Matrix<f64>) -> MirrorI8 {
        let f = users.cols();
        let quantize = |m: &Matrix<f64>| {
            let mut q = vec![0i8; m.rows() * f];
            let mut scales = Vec::with_capacity(m.rows());
            let mut l1 = Vec::with_capacity(m.rows());
            for (r, row) in m.iter_rows().enumerate() {
                let (s, n1) = quantize_row_i8(row, &mut q[r * f..(r + 1) * f]);
                scales.push(s);
                l1.push(n1);
            }
            (q, scales, l1)
        };
        let (users_q, user_scales, user_l1) = quantize(users);
        let (items_q, item_scales, item_l1) = quantize(items);
        let usable = f <= I8_DOT_MAX_LEN
            && user_scales
                .iter()
                .chain(&item_scales)
                .all(|s| s.is_finite())
            && user_l1.iter().chain(&item_l1).all(|n| n.is_finite());
        MirrorI8 {
            users_q,
            items_q,
            f,
            user_scales,
            item_inv_scales: item_scales.iter().map(|&s| 1.0 / s).collect(),
            user_l1,
            item_l1,
            usable,
        }
    }

    /// Latent factors per row.
    pub fn factors(&self) -> usize {
        self.f
    }

    /// The quantized codes of user row `r`.
    pub fn user_row(&self, r: usize) -> &[i8] {
        &self.users_q[r * self.f..(r + 1) * self.f]
    }

    /// The quantized codes of item row `r`.
    pub fn item_row(&self, r: usize) -> &[i8] {
        &self.items_q[r * self.f..(r + 1) * self.f]
    }

    /// The full quantized user matrix, row-major (`|U| × f`).
    pub fn users_q(&self) -> &[i8] {
        &self.users_q
    }

    /// The full quantized item matrix, row-major (`|I| × f`).
    pub fn items_q(&self) -> &[i8] {
        &self.items_q
    }

    /// Per-user quantization scale `s_u` (codes = round(value · s_u)).
    pub fn user_scales(&self) -> &[f64] {
        &self.user_scales
    }

    /// Per-item *inverse* scale `1/s_i`, precomputed because every screened
    /// score multiplies by it.
    pub fn item_inv_scales(&self) -> &[f64] {
        &self.item_inv_scales
    }

    /// Exact (f64) L1 norm of each original user row.
    pub fn user_l1(&self) -> &[f64] {
        &self.user_l1
    }

    /// Exact (f64) L1 norm of each original item row.
    pub fn item_l1(&self) -> &[f64] {
        &self.item_l1
    }

    /// `false` when quantization degenerated (non-finite scale or L1) or the
    /// factor count exceeds the integer kernels' overflow cap; consumers
    /// must fall back to an unscreened path.
    pub fn is_usable(&self) -> bool {
        self.usable
    }
}

impl MfModel {
    /// Builds and validates a model.
    pub fn new(
        name: impl Into<String>,
        users: Matrix<f64>,
        items: Matrix<f64>,
    ) -> Result<Self, ModelError> {
        users.validate("MfModel users")?;
        items.validate("MfModel items")?;
        if users.cols() != items.cols() {
            return Err(ModelError::FactorMismatch {
                user_factors: users.cols(),
                item_factors: items.cols(),
            });
        }
        Ok(MfModel {
            name: name.into(),
            users,
            items,
            validated: true,
            mirror32: OnceLock::new(),
            mirror_i8: OnceLock::new(),
        })
    }

    /// Builds a model **without** validating the matrices.
    ///
    /// For trusted zero-copy loaders (and tests of downstream validation)
    /// where re-scanning every factor at construction is unwanted. The
    /// serving engine re-checks finiteness at its model intake points
    /// (`EngineBuilder::build` and `Engine::swap_model`), so a non-finite
    /// or shape-mismatched model built this way surfaces as a typed error
    /// there rather than as silent NaN-poisoned results.
    pub fn new_unvalidated(
        name: impl Into<String>,
        users: Matrix<f64>,
        items: Matrix<f64>,
    ) -> MfModel {
        MfModel {
            name: name.into(),
            users,
            items,
            validated: false,
            mirror32: OnceLock::new(),
            mirror_i8: OnceLock::new(),
        }
    }

    /// Whether this model was constructed through the validating path
    /// ([`MfModel::new`]/[`MfModel::new_shared`]). Models from
    /// [`MfModel::new_unvalidated`] report `false`, telling downstream
    /// intake checks (the engine's build/swap validation) to re-scan.
    pub fn is_validated(&self) -> bool {
        self.validated
    }

    /// Builds a model and wraps it in an [`Arc`] for sharing across solvers.
    pub fn new_shared(
        name: impl Into<String>,
        users: Matrix<f64>,
        items: Matrix<f64>,
    ) -> Result<Arc<Self>, ModelError> {
        Ok(Arc::new(Self::new(name, users, items)?))
    }

    /// Human-readable model name (e.g. `"Netflix-DSGD, f = 50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The user factor matrix (`|U| × f`).
    pub fn users(&self) -> &Matrix<f64> {
        &self.users
    }

    /// The item factor matrix (`|I| × f`).
    pub fn items(&self) -> &Matrix<f64> {
        &self.items
    }

    /// Number of users `|U|`.
    pub fn num_users(&self) -> usize {
        self.users.rows()
    }

    /// Number of items `|I|`.
    pub fn num_items(&self) -> usize {
        self.items.rows()
    }

    /// Number of latent factors `f`.
    pub fn num_factors(&self) -> usize {
        self.users.cols()
    }

    /// The predicted rating `uᵀi` for one user–item pair.
    pub fn predict(&self, user: usize, item: usize) -> f64 {
        dot(self.users.row(user), self.items.row(item))
    }

    /// A copy restricted to the given users (used by OPTIMUS sampling tests).
    pub fn with_users(&self, indices: &[usize]) -> MfModel {
        MfModel {
            name: format!("{}[{} users]", self.name, indices.len()),
            users: self.users.gather_rows(indices),
            items: self.items.clone(),
            // Row-gathering validated matrices cannot introduce NaN.
            validated: self.validated,
            mirror32: OnceLock::new(),
            mirror_i8: OnceLock::new(),
        }
    }

    /// The single-precision mirror, built on first use and cached for the
    /// model's lifetime (see [`Mirror32`]). Thread-safe: concurrent first
    /// callers race to build and all observe one winner.
    pub fn mirror32(&self) -> &Arc<Mirror32> {
        self.mirror32
            .get_or_init(|| Arc::new(Mirror32::build(&self.users, &self.items)))
    }

    /// The int8 mirror, built on first use and cached for the model's
    /// lifetime (see [`MirrorI8`]). Thread-safe like [`MfModel::mirror32`].
    pub fn mirror_i8(&self) -> &Arc<MirrorI8> {
        self.mirror_i8
            .get_or_init(|| Arc::new(MirrorI8::build(&self.users, &self.items)))
    }
}

/// A zero-copy view of a contiguous user range of a shared [`MfModel`].
///
/// Row-major storage makes a contiguous user range a contiguous factor
/// block, so the view is an `Arc` plus a range: [`ModelView::users_block`]
/// borrows the block straight out of the parent matrix without copying, and
/// the item matrix is shared untouched. This is the unit solver indexes and
/// serving plans can be built over — a shard of the serving runtime is
/// exactly such a view — while the parent model stays the single source of
/// truth for global user ids (`global id = view.user_range().start + local
/// row`).
#[derive(Debug, Clone)]
pub struct ModelView {
    model: Arc<MfModel>,
    users: Range<usize>,
}

impl ModelView {
    /// The view covering every user (the whole-model case; zero-copy in
    /// every operation including [`ModelView::to_model`]).
    pub fn full(model: &Arc<MfModel>) -> ModelView {
        ModelView {
            users: 0..model.num_users(),
            model: Arc::clone(model),
        }
    }

    /// The view over a contiguous user range.
    ///
    /// # Panics
    /// Panics when the range is empty or exceeds the model's user count;
    /// callers (the serving runtime's shard router) derive ranges from the
    /// model itself, so an out-of-range view is a logic error.
    pub fn of_range(model: &Arc<MfModel>, users: Range<usize>) -> ModelView {
        assert!(
            users.start < users.end && users.end <= model.num_users(),
            "ModelView: user range {users:?} invalid for {} users",
            model.num_users()
        );
        ModelView {
            users,
            model: Arc::clone(model),
        }
    }

    /// The parent model the view slices.
    pub fn model(&self) -> &Arc<MfModel> {
        &self.model
    }

    /// The global user ids the view covers.
    pub fn user_range(&self) -> Range<usize> {
        self.users.clone()
    }

    /// `true` when the view covers the whole model.
    pub fn is_full(&self) -> bool {
        self.users.start == 0 && self.users.end == self.model.num_users()
    }

    /// Users in the view.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Items of the (shared, un-sliced) catalog.
    pub fn num_items(&self) -> usize {
        self.model.num_items()
    }

    /// Latent factors `f`.
    pub fn num_factors(&self) -> usize {
        self.model.num_factors()
    }

    /// The view's user factor rows as one contiguous block — zero-copy:
    /// this borrows straight from the parent matrix.
    pub fn users_block(&self) -> RowBlock<'_, f64> {
        self.model
            .users()
            .row_block(self.users.start, self.users.end)
    }

    /// The shared item factor matrix (`|I| × f`).
    pub fn items(&self) -> &Matrix<f64> {
        self.model.items()
    }

    /// A model equivalent to the view, for consumers that only speak
    /// [`MfModel`]. A full view returns the parent `Arc` (zero-copy); a
    /// proper slice materializes a sub-model whose user matrix is one
    /// `memcpy` of the contiguous factor block. Built-in solver factories
    /// avoid even that copy by consuming the view natively.
    pub fn to_model(&self) -> Arc<MfModel> {
        if self.is_full() {
            return Arc::clone(&self.model);
        }
        let f = self.model.num_factors();
        let block = self.users_block();
        let users = Matrix::from_vec(self.users.len(), f, block.as_slice().to_vec())
            .expect("a slice of a well-formed matrix is well-formed");
        Arc::new(MfModel {
            name: format!(
                "{}[{}..{})",
                self.model.name, self.users.start, self.users.end
            ),
            users,
            items: self.model.items.clone(),
            // Slicing preserves the parent's validation status: no new
            // values are introduced.
            validated: self.model.validated,
            mirror32: OnceLock::new(),
            mirror_i8: OnceLock::new(),
        })
    }

    /// The parent model's single-precision mirror (shared across every view
    /// of the model; local rows address it at `user_range().start + row`).
    pub fn mirror32(&self) -> &Arc<Mirror32> {
        self.model.mirror32()
    }

    /// The parent model's int8 mirror (shared across every view of the
    /// model; local rows address it at `user_range().start + row`).
    pub fn mirror_i8(&self) -> &Arc<MirrorI8> {
        self.model.mirror_i8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn users2x2() -> Matrix<f64> {
        Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]).unwrap()
    }

    fn items3x2() -> Matrix<f64> {
        Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = MfModel::new("test", users2x2(), items3x2()).unwrap();
        assert_eq!(m.name(), "test");
        assert_eq!(m.num_users(), 2);
        assert_eq!(m.num_items(), 3);
        assert_eq!(m.num_factors(), 2);
        assert_eq!(m.predict(0, 1), 3.0);
        assert_eq!(m.predict(1, 2), 6.0);
    }

    #[test]
    fn rejects_factor_mismatch() {
        let users = Matrix::from_vec(2, 3, vec![0.5; 6]).unwrap();
        let err = MfModel::new("bad", users, items3x2()).unwrap_err();
        assert!(matches!(err, ModelError::FactorMismatch { .. }));
        assert!(err.to_string().contains("3 factors"));
    }

    #[test]
    fn rejects_non_finite_factors() {
        let mut users = users2x2();
        users.set(0, 0, f64::NAN);
        let err = MfModel::new("nan", users, items3x2()).unwrap_err();
        assert!(matches!(err, ModelError::InvalidMatrix(_)));
    }

    #[test]
    fn rejects_empty_matrices() {
        let empty = Matrix::<f64>::zeros(0, 2);
        assert!(MfModel::new("e", empty, items3x2()).is_err());
    }

    #[test]
    fn with_users_subsets() {
        let m = MfModel::new("test", users2x2(), items3x2()).unwrap();
        let sub = m.with_users(&[1]);
        assert_eq!(sub.num_users(), 1);
        assert_eq!(sub.num_items(), 3);
        assert_eq!(sub.predict(0, 2), 6.0);
    }

    #[test]
    fn shared_constructor_returns_arc() {
        let m = MfModel::new_shared("s", users2x2(), items3x2()).unwrap();
        let m2 = m.clone();
        assert_eq!(m2.num_users(), 2);
    }

    #[test]
    fn full_view_is_the_model_itself_zero_copy() {
        let m = MfModel::new_shared("v", users2x2(), items3x2()).unwrap();
        let view = ModelView::full(&m);
        assert!(view.is_full());
        assert_eq!(view.num_users(), 2);
        assert_eq!(view.num_items(), 3);
        assert_eq!(view.num_factors(), 2);
        assert_eq!(view.users_block().as_slice(), m.users().as_slice());
        // to_model on a full view hands back the same allocation.
        assert!(Arc::ptr_eq(&view.to_model(), &m));
    }

    #[test]
    fn range_view_slices_the_factor_block_and_materializes_identically() {
        let users = Matrix::from_vec(4, 2, (0..8).map(|v| v as f64).collect()).unwrap();
        let m = MfModel::new_shared("v", users, items3x2()).unwrap();
        let view = ModelView::of_range(&m, 1..3);
        assert!(!view.is_full());
        assert_eq!(view.num_users(), 2);
        assert_eq!(view.user_range(), 1..3);
        // The block borrows rows 1 and 2 verbatim.
        assert_eq!(view.users_block().as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        let sub = view.to_model();
        assert_eq!(sub.num_users(), 2);
        assert_eq!(sub.users().as_slice(), view.users_block().as_slice());
        assert_eq!(sub.items().as_slice(), m.items().as_slice());
        assert!(sub.is_validated(), "slicing keeps the validation status");
        // Local row 0 of the view is global user 1.
        assert_eq!(sub.predict(0, 2), m.predict(1, 2));
    }

    #[test]
    fn mirror32_is_lazy_shared_and_rounds_to_nearest() {
        let m = MfModel::new_shared("m", users2x2(), items3x2()).unwrap();
        let mirror = m.mirror32();
        assert!(mirror.is_usable());
        assert_eq!(mirror.users().rows(), 2);
        assert_eq!(mirror.items().rows(), 3);
        assert_eq!(mirror.items().get(2, 1), 6.0_f32);
        // Norms are the exact f64 row norms.
        assert!((mirror.item_norms()[0] - (1.0f64 + 4.0).sqrt()).abs() < 1e-12);
        assert_eq!(mirror.user_norms().len(), 2);
        // Repeated calls and views share one build.
        assert!(Arc::ptr_eq(m.mirror32(), mirror));
        let view = ModelView::of_range(&m, 0..1);
        assert!(Arc::ptr_eq(view.mirror32(), mirror));
    }

    #[test]
    fn mirror32_flags_f32_overflow_as_unusable() {
        let users = Matrix::from_vec(1, 2, vec![1e300, 0.0]).unwrap();
        let m = MfModel::new("big", users, items3x2()).unwrap();
        assert!(!m.mirror32().is_usable());
    }

    #[test]
    fn mirror_i8_is_lazy_shared_and_quantizes_per_row() {
        let m = MfModel::new_shared("m", users2x2(), items3x2()).unwrap();
        let mirror = m.mirror_i8();
        assert!(mirror.is_usable());
        assert_eq!(mirror.factors(), 2);
        // User row 0 = [1, 0]: max-abs 1 → scale 127, codes [127, 0].
        assert_eq!(mirror.user_row(0), &[127, 0]);
        assert!((mirror.user_scales()[0] - 127.0).abs() < 1e-12);
        assert!((mirror.user_l1()[0] - 1.0).abs() < 1e-12);
        // Item row 2 = [5, 6]: max-abs 6 → scale 127/6, codes round(v·s).
        let s: f64 = 127.0 / 6.0;
        assert_eq!(mirror.item_row(2), &[(5.0 * s).round() as i8, 127]);
        assert!((mirror.item_inv_scales()[2] - 6.0 / 127.0).abs() < 1e-15);
        assert!((mirror.item_l1()[2] - 11.0).abs() < 1e-12);
        assert_eq!(mirror.items_q().len(), 6);
        // Repeated calls and views share one build.
        assert!(Arc::ptr_eq(m.mirror_i8(), mirror));
        let view = ModelView::of_range(&m, 0..1);
        assert!(Arc::ptr_eq(view.mirror_i8(), mirror));
    }

    #[test]
    fn mirror_i8_flags_subnormal_rows_as_unusable() {
        // A subnormal max-magnitude drives scale = 127/max_abs to infinity.
        let users = Matrix::from_vec(1, 2, vec![f64::MIN_POSITIVE / 4.0, 0.0]).unwrap();
        let m = MfModel::new("tiny", users, items3x2()).unwrap();
        assert!(!m.mirror_i8().is_usable());
    }

    #[test]
    fn mirror_i8_flags_nan_input_as_unusable() {
        // Unvalidated models may carry NaN; the L1 scan catches it.
        let mut users = users2x2();
        users.set(0, 0, f64::NAN);
        let m = MfModel::new_unvalidated("nan", users, items3x2());
        assert!(!m.mirror_i8().is_usable());
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn out_of_range_views_are_rejected() {
        let m = MfModel::new_shared("v", users2x2(), items3x2()).unwrap();
        let _ = ModelView::of_range(&m, 1..5);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn empty_views_are_rejected() {
        let m = MfModel::new_shared("v", users2x2(), items3x2()).unwrap();
        let _ = ModelView::of_range(&m, 1..1);
    }
}
