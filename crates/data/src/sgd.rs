//! Explicit-feedback matrix factorization by stochastic gradient descent.
//!
//! Stands in for the DSGD \[35\] and NOMAD \[40\] trainers the paper's reference
//! models come from: same objective (L2-regularized squared error on observed
//! ratings), same update rule, single-threaded. Only the factor matrices
//! matter downstream, so distributed execution is out of scope.

use crate::model::MfModel;
use crate::ratings::RatingsData;
use mips_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters for [`train_sgd`].
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Latent dimensionality of the learned factors.
    pub num_factors: usize,
    /// Full passes over the training ratings.
    pub epochs: usize,
    /// Initial learning rate (decayed by `lr_decay` per epoch).
    pub learning_rate: f64,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f64,
    /// L2 regularization strength λ.
    pub regularization: f64,
    /// Seed for initialization and shuffling.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            num_factors: 16,
            epochs: 20,
            learning_rate: 0.05,
            lr_decay: 0.95,
            regularization: 0.02,
            seed: 0x5D,
        }
    }
}

/// Trains an explicit-feedback MF model on the given ratings.
///
/// Minimizes `Σ (r_ui − uᵀi)² + λ(‖u‖² + ‖i‖²)` with per-rating SGD updates
/// in a shuffled order each epoch. Deterministic for a fixed config.
///
/// # Panics
/// Panics if the ratings are empty or the config is degenerate.
pub fn train_sgd(data: &RatingsData, config: &SgdConfig) -> MfModel {
    assert!(!data.is_empty(), "train_sgd: no ratings");
    assert!(config.num_factors > 0, "train_sgd: num_factors must be > 0");
    assert!(config.epochs > 0, "train_sgd: epochs must be > 0");
    assert!(
        config.learning_rate > 0.0 && config.learning_rate.is_finite(),
        "train_sgd: bad learning rate"
    );

    let f = config.num_factors;
    let mut rng = StdRng::seed_from_u64(config.seed);
    // Small random init around zero, scaled so initial predictions are O(1).
    let init_scale = (1.0 / f as f64).sqrt();
    let mut users = Matrix::from_fn(data.num_users, f, |_, _| {
        (rng.gen::<f64>() - 0.5) * init_scale
    });
    let mut items = Matrix::from_fn(data.num_items, f, |_, _| {
        (rng.gen::<f64>() - 0.5) * init_scale
    });

    let mut order: Vec<usize> = (0..data.triples.len()).collect();
    let mut lr = config.learning_rate;
    for _epoch in 0..config.epochs {
        // Fisher–Yates shuffle with the deterministic RNG.
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for &idx in &order {
            let (u, i, r) = data.triples[idx];
            let (u, i) = (u as usize, i as usize);
            let pred: f64 = users
                .row(u)
                .iter()
                .zip(items.row(i))
                .map(|(a, b)| a * b)
                .sum();
            let err = r - pred;
            // Simultaneous update: read both rows, then write both.
            let urow: Vec<f64> = users.row(u).to_vec();
            let irow = items.row_mut(i);
            let udst = &mut vec![0.0; f];
            for j in 0..f {
                udst[j] = urow[j] + lr * (err * irow[j] - config.regularization * urow[j]);
                irow[j] += lr * (err * urow[j] - config.regularization * irow[j]);
            }
            users.row_mut(u).copy_from_slice(udst);
        }
        lr *= config.lr_decay;
    }

    MfModel::new(format!("sgd(f={f},epochs={})", config.epochs), users, items)
        .expect("SGD training keeps factors finite")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_model, SynthConfig};

    fn toy_data() -> RatingsData {
        let truth = synth_model(&SynthConfig {
            num_users: 40,
            num_items: 30,
            num_factors: 4,
            user_spread: 0.4,
            item_norm_skew: 0.2,
            ..SynthConfig::default()
        });
        RatingsData::from_ground_truth(&truth, 15, 0.05, 11)
    }

    #[test]
    fn training_reduces_rmse_substantially() {
        let data = toy_data();
        let (train, test) = data.split(0.2, 5);
        let cfg = SgdConfig {
            num_factors: 8,
            epochs: 30,
            ..SgdConfig::default()
        };
        let model = train_sgd(&train, &cfg);
        let baseline = {
            // Predicting the global mean for everything.
            let mean = train.global_mean();
            let sse: f64 = test
                .triples
                .iter()
                .map(|&(_, _, r)| (r - mean) * (r - mean))
                .sum();
            (sse / test.len() as f64).sqrt()
        };
        let rmse = test.rmse(&model);
        assert!(
            rmse < baseline * 0.7,
            "test RMSE {rmse} vs mean-baseline {baseline}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = toy_data();
        let cfg = SgdConfig::default();
        let a = train_sgd(&data, &cfg);
        let b = train_sgd(&data, &cfg);
        assert_eq!(a.users().as_slice(), b.users().as_slice());
    }

    #[test]
    fn more_epochs_fit_train_better() {
        let data = toy_data();
        let short = train_sgd(
            &data,
            &SgdConfig {
                epochs: 2,
                ..SgdConfig::default()
            },
        );
        let long = train_sgd(
            &data,
            &SgdConfig {
                epochs: 40,
                ..SgdConfig::default()
            },
        );
        assert!(data.rmse(&long) < data.rmse(&short));
    }

    #[test]
    fn output_shape_matches_config() {
        let data = toy_data();
        let model = train_sgd(
            &data,
            &SgdConfig {
                num_factors: 6,
                epochs: 1,
                ..SgdConfig::default()
            },
        );
        assert_eq!(model.num_users(), 40);
        assert_eq!(model.num_items(), 30);
        assert_eq!(model.num_factors(), 6);
    }

    #[test]
    #[should_panic(expected = "no ratings")]
    fn rejects_empty_data() {
        let empty = RatingsData {
            num_users: 1,
            num_items: 1,
            triples: vec![],
        };
        let _ = train_sgd(&empty, &SgdConfig::default());
    }
}
