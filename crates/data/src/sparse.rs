//! Sparse vector/block types and sparse–hybrid synthetic catalogs.
//!
//! Real recommender catalogs are often sparse (bag-of-words item features,
//! learned sparse embeddings à la SINDI) or dense–sparse hybrids (a short
//! dense head plus a long sparse tail). This module provides the data side
//! of that workload family:
//!
//! * [`SparseVec`] — one validated sparse vector in canonical form: indices
//!   strictly ascending, values finite and nonzero. The canonical form makes
//!   encode/decode and sparsify/densify round-trips exact identities.
//! * [`SparseBlock`] — a CSR matrix (postings per row) with cached exact
//!   per-row L2 norms, the storage the inverted-index solver prunes with.
//! * [`SparsityStats`] — sampled nnz/density statistics, the inputs OPTIMUS
//!   uses to cost dense vs sparse vs hybrid execution per plan candidate.
//! * [`synth_sparse_model`] — deterministic sparse/hybrid catalog generator
//!   mirroring [`crate::synth`]: every knob that decides whether the
//!   inverted index or a dense scan wins (density, hybrid head width,
//!   shape) is explicit.
//!
//! Sparsity here is a *distributional* property: models stay dense-stored
//! [`MfModel`]s so every existing solver works unchanged, and sparse-aware
//! consumers ([`SparseBlock::from_dense`]) recover the postings exactly.

use crate::model::MfModel;
use crate::synth::gaussian;
use mips_linalg::{norm2, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Errors raised when constructing a [`SparseVec`] from untrusted input.
#[derive(Debug, Clone, PartialEq)]
pub enum SparseError {
    /// `indices` and `values` lengths differ.
    LengthMismatch {
        /// Number of indices supplied.
        indices: usize,
        /// Number of values supplied.
        values: usize,
    },
    /// An index repeats (or the list is not strictly ascending).
    DuplicateOrUnsorted {
        /// Position in the index list where order broke.
        position: usize,
    },
    /// An index is `>= dim`.
    IndexOutOfRange {
        /// The offending index.
        index: u32,
        /// The vector dimensionality.
        dim: usize,
    },
    /// A stored value is NaN or infinite.
    NonFiniteValue {
        /// The index whose value is non-finite.
        index: u32,
    },
    /// A stored value is exactly zero (canonical form stores only nonzeros,
    /// so round-trips through dense are identities).
    ExplicitZero {
        /// The index whose value is zero.
        index: u32,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::LengthMismatch { indices, values } => {
                write!(f, "{indices} indices but {values} values")
            }
            SparseError::DuplicateOrUnsorted { position } => {
                write!(
                    f,
                    "indices must be strictly ascending (position {position})"
                )
            }
            SparseError::IndexOutOfRange { index, dim } => {
                write!(f, "index {index} out of range for dimension {dim}")
            }
            SparseError::NonFiniteValue { index } => {
                write!(f, "non-finite value at index {index}")
            }
            SparseError::ExplicitZero { index } => {
                write!(
                    f,
                    "explicit zero at index {index} (canonical form stores nonzeros only)"
                )
            }
        }
    }
}

impl std::error::Error for SparseError {}

/// One sparse vector in canonical form: strictly ascending indices, finite
/// nonzero values. The canonical form is unique per dense vector, so
/// [`SparseVec::from_dense`] ∘ [`SparseVec::densify`] and its converse are
/// exact identities (bit-for-bit — no arithmetic happens either way).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// Builds a validated sparse vector.
    pub fn new(dim: usize, indices: Vec<u32>, values: Vec<f64>) -> Result<SparseVec, SparseError> {
        if indices.len() != values.len() {
            return Err(SparseError::LengthMismatch {
                indices: indices.len(),
                values: values.len(),
            });
        }
        for (pos, window) in indices.windows(2).enumerate() {
            if window[0] >= window[1] {
                return Err(SparseError::DuplicateOrUnsorted { position: pos + 1 });
            }
        }
        if let Some(&last) = indices.last() {
            if last as usize >= dim {
                return Err(SparseError::IndexOutOfRange { index: last, dim });
            }
        }
        for (&index, &value) in indices.iter().zip(&values) {
            if !value.is_finite() {
                return Err(SparseError::NonFiniteValue { index });
            }
            if value == 0.0 {
                return Err(SparseError::ExplicitZero { index });
            }
        }
        Ok(SparseVec {
            dim,
            indices,
            values,
        })
    }

    /// The empty sparse vector of the given dimensionality.
    pub fn empty(dim: usize) -> SparseVec {
        SparseVec {
            dim,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The canonical sparse form of a dense vector (drops exact zeros,
    /// keeps everything else verbatim).
    ///
    /// # Panics
    /// Panics on non-finite entries or a vector longer than `u32` can
    /// index; model factor rows satisfy both by construction.
    pub fn from_dense(dense: &[f64]) -> SparseVec {
        assert!(
            dense.len() <= u32::MAX as usize,
            "SparseVec: dimension {} exceeds u32 index space",
            dense.len()
        );
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (j, &v) in dense.iter().enumerate() {
            assert!(v.is_finite(), "SparseVec::from_dense: non-finite at {j}");
            if v != 0.0 {
                indices.push(j as u32);
                values.push(v);
            }
        }
        SparseVec {
            dim: dense.len(),
            indices,
            values,
        }
    }

    /// The dense vector this sparse form encodes (exact inverse of
    /// [`SparseVec::from_dense`]; note `-0.0` densifies to `-0.0`).
    pub fn densify(&self) -> Vec<f64> {
        let mut dense = vec![0.0; self.dim];
        for (&j, &v) in self.indices.iter().zip(&self.values) {
            dense[j as usize] = v;
        }
        dense
    }

    /// Dimensionality of the (dense) space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The stored indices, strictly ascending.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored values, parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Exact L2 norm of the encoded vector.
    pub fn norm(&self) -> f64 {
        norm2(&self.values)
    }
}

/// A CSR block of sparse rows with cached exact per-row L2 norms — the
/// postings-side storage of the inverted-index solver. Built losslessly
/// from a dense matrix and convertible back ([`SparseBlock::to_dense`] is
/// the exact inverse of [`SparseBlock::from_dense`]).
#[derive(Debug, Clone)]
pub struct SparseBlock {
    rows: usize,
    dim: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
    row_norms: Vec<f64>,
}

impl SparseBlock {
    /// The canonical CSR form of a dense row-major matrix.
    ///
    /// # Panics
    /// Panics on non-finite entries (model matrices are validated upstream).
    pub fn from_dense(matrix: &Matrix<f64>) -> SparseBlock {
        assert!(
            matrix.cols() <= u32::MAX as usize,
            "SparseBlock: {} columns exceed u32 index space",
            matrix.cols()
        );
        let mut indptr = Vec::with_capacity(matrix.rows() + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        let mut row_norms = Vec::with_capacity(matrix.rows());
        indptr.push(0);
        // Index rows directly rather than `iter_rows()`: the iterator is
        // empty for zero-column matrices, which would leave `indptr`
        // inconsistent with `rows` and make `row()` panic later.
        for r in 0..matrix.rows() {
            let row = matrix.row(r);
            for (j, &v) in row.iter().enumerate() {
                assert!(v.is_finite(), "SparseBlock::from_dense: non-finite entry");
                if v != 0.0 {
                    indices.push(j as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
            row_norms.push(norm2(row));
        }
        SparseBlock {
            rows: matrix.rows(),
            dim: matrix.cols(),
            indptr,
            indices,
            values,
            row_norms,
        }
    }

    /// The dense matrix this block encodes (exact inverse of
    /// [`SparseBlock::from_dense`] for matrices without `-0.0` entries,
    /// which densify to `+0.0` like every absent entry).
    pub fn to_dense(&self) -> Matrix<f64> {
        let mut out = Matrix::<f64>::zeros(self.rows, self.dim);
        for r in 0..self.rows {
            let (indices, values) = self.row(r);
            let row = out.row_mut(r);
            for (&j, &v) in indices.iter().zip(values) {
                row[j as usize] = v;
            }
        }
        out
    }

    /// The postings of one row: `(indices, values)`, indices ascending.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let span = self.indptr[r]..self.indptr[r + 1];
        (&self.indices[span.clone()], &self.values[span])
    }

    /// One row as a [`SparseVec`] (clones the postings).
    pub fn row_vec(&self, r: usize) -> SparseVec {
        let (indices, values) = self.row(r);
        SparseVec {
            dim: self.dim,
            indices: indices.to_vec(),
            values: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Dimensionality of the (dense) space.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Fraction of entries that are nonzero, in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.rows == 0 || self.dim == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.rows as f64 * self.dim as f64)
    }

    /// Exact L2 norm of each row (computed from the dense row before
    /// sparsification, so it equals the dense row norm bit-for-bit).
    pub fn row_norms(&self) -> &[f64] {
        &self.row_norms
    }
}

/// Sampled nnz/density statistics of a dense factor matrix — what OPTIMUS
/// feeds its sparse-vs-dense cost comparison. Sampling walks up to
/// `max_rows` evenly spaced rows, the same spirit as the planner's user
/// sampling: an O(sample) scan instead of O(matrix) per plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsityStats {
    /// Rows actually scanned.
    pub rows_sampled: usize,
    /// Nonzeros seen in the sampled rows.
    pub sampled_nnz: usize,
    /// Estimated fraction of nonzero entries, in `[0, 1]`.
    pub density: f64,
    /// Estimated mean nonzeros per row.
    pub avg_nnz_per_row: f64,
    /// Largest nonzero count among sampled rows.
    pub max_nnz_per_row: usize,
}

impl SparsityStats {
    /// Samples up to `max_rows` evenly spaced rows of `matrix`.
    ///
    /// # Panics
    /// Panics when `max_rows` is zero.
    pub fn sample(matrix: &Matrix<f64>, max_rows: usize) -> SparsityStats {
        assert!(max_rows > 0, "SparsityStats: max_rows must be > 0");
        let rows = matrix.rows();
        let take = rows.min(max_rows);
        let mut sampled_nnz = 0usize;
        let mut max_nnz = 0usize;
        for s in 0..take {
            // Evenly spaced deterministic row picks across the matrix.
            let r = s * rows / take;
            let nnz = matrix.row(r).iter().filter(|v| **v != 0.0).count();
            sampled_nnz += nnz;
            max_nnz = max_nnz.max(nnz);
        }
        let avg = if take == 0 {
            0.0
        } else {
            sampled_nnz as f64 / take as f64
        };
        let density = if matrix.cols() == 0 {
            0.0
        } else {
            avg / matrix.cols() as f64
        };
        SparsityStats {
            rows_sampled: take,
            sampled_nnz,
            density,
            avg_nnz_per_row: avg,
            max_nnz_per_row: max_nnz,
        }
    }
}

/// Knobs of the sparse/hybrid synthetic catalog generator.
#[derive(Debug, Clone)]
pub struct SparseSynthConfig {
    /// Number of user vectors.
    pub num_users: usize,
    /// Number of item vectors.
    pub num_items: usize,
    /// Latent dimensionality `f`.
    pub num_factors: usize,
    /// Probability that a tail coordinate is nonzero, in `(0, 1]`.
    /// `1 - density` is the catalog's sparsity (a `0.01` density is the
    /// "99%-sparse" workload).
    pub density: f64,
    /// Leading coordinates that are always dense — the hybrid head. `0`
    /// gives a purely sparse catalog; a nonzero head makes the workload a
    /// dense–sparse hybrid (Bruch et al.'s bridging setting).
    pub dense_head: usize,
    /// RNG seed (catalogs are fully deterministic).
    pub seed: u64,
}

impl Default for SparseSynthConfig {
    fn default() -> SparseSynthConfig {
        SparseSynthConfig {
            num_users: 800,
            num_items: 2000,
            num_factors: 256,
            density: 0.01,
            dense_head: 0,
            seed: 0x5AB5E,
        }
    }
}

/// Generates a sparse or hybrid dense–sparse model: every user and item
/// vector has a dense head of `dense_head` coordinates and a Bernoulli
/// (`density`) sparse tail, values standard normal. Rows that would come
/// out all-zero get one deterministic nonzero so norms stay positive (every
/// norm-sorted backend stays well-posed).
///
/// # Panics
/// Panics if a dimension is zero, `density` is outside `(0, 1]`, or
/// `dense_head > num_factors`.
pub fn synth_sparse_model(config: &SparseSynthConfig) -> MfModel {
    assert!(
        config.num_users > 0,
        "synth_sparse_model: num_users must be > 0"
    );
    assert!(
        config.num_items > 0,
        "synth_sparse_model: num_items must be > 0"
    );
    assert!(
        config.num_factors > 0,
        "synth_sparse_model: num_factors must be > 0"
    );
    assert!(
        config.density > 0.0 && config.density <= 1.0,
        "synth_sparse_model: density must be in (0, 1]"
    );
    assert!(
        config.dense_head <= config.num_factors,
        "synth_sparse_model: dense_head exceeds num_factors"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let f = config.num_factors;
    let mut fill = |rows: usize| -> Matrix<f64> {
        let mut m = Matrix::<f64>::zeros(rows, f);
        for r in 0..rows {
            let row = m.row_mut(r);
            let mut nnz = 0usize;
            for (j, v) in row.iter_mut().enumerate() {
                let keep = j < config.dense_head || rng.gen::<f64>() < config.density;
                if keep {
                    // Re-draw the (measure-zero) exact-zero sample so stored
                    // entries are true nonzeros and CSR round-trips stay
                    // canonical.
                    let mut value = gaussian(&mut rng);
                    while value == 0.0 {
                        value = gaussian(&mut rng);
                    }
                    *v = value;
                    nnz += 1;
                }
            }
            if nnz == 0 {
                // Deterministic rescue nonzero: row index spreads the picks.
                row[r % f] = 1.0 + (r % 7) as f64 * 0.25;
            }
        }
        m
    };

    let users = fill(config.num_users);
    let items = fill(config.num_items);
    MfModel::new(
        format!(
            "sparse-synth(u={},i={},f={},density={},head={})",
            config.num_users,
            config.num_items,
            config.num_factors,
            config.density,
            config.dense_head
        ),
        users,
        items,
    )
    .expect("generator produces finite, non-empty matrices")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_vec_round_trips_exactly() {
        let dense = vec![0.0, 1.5, 0.0, -2.25, 0.0, 1e-300];
        let sparse = SparseVec::from_dense(&dense);
        assert_eq!(sparse.dim(), 6);
        assert_eq!(sparse.nnz(), 3);
        assert_eq!(sparse.indices(), &[1, 3, 5]);
        assert_eq!(sparse.densify(), dense);
        // Canonical: re-sparsifying the densified form is identical.
        assert_eq!(SparseVec::from_dense(&sparse.densify()), sparse);
    }

    #[test]
    fn sparse_vec_rejects_malformed_input() {
        assert_eq!(
            SparseVec::new(4, vec![0, 2], vec![1.0]).unwrap_err(),
            SparseError::LengthMismatch {
                indices: 2,
                values: 1
            }
        );
        assert_eq!(
            SparseVec::new(4, vec![2, 2], vec![1.0, 1.0]).unwrap_err(),
            SparseError::DuplicateOrUnsorted { position: 1 }
        );
        assert_eq!(
            SparseVec::new(4, vec![2, 1], vec![1.0, 1.0]).unwrap_err(),
            SparseError::DuplicateOrUnsorted { position: 1 }
        );
        assert_eq!(
            SparseVec::new(4, vec![0, 4], vec![1.0, 1.0]).unwrap_err(),
            SparseError::IndexOutOfRange { index: 4, dim: 4 }
        );
        assert_eq!(
            SparseVec::new(4, vec![0, 1], vec![1.0, f64::NAN]).unwrap_err(),
            SparseError::NonFiniteValue { index: 1 }
        );
        assert_eq!(
            SparseVec::new(4, vec![0, 1], vec![1.0, 0.0]).unwrap_err(),
            SparseError::ExplicitZero { index: 1 }
        );
    }

    #[test]
    fn empty_vector_is_valid_and_densifies_to_zeros() {
        let empty = SparseVec::empty(5);
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.densify(), vec![0.0; 5]);
        assert_eq!(SparseVec::new(5, vec![], vec![]).unwrap(), empty);
        assert_eq!(empty.norm(), 0.0);
    }

    #[test]
    fn sparse_block_round_trips_and_caches_norms() {
        let dense = Matrix::from_vec(
            3,
            4,
            vec![
                1.0, 0.0, 2.0, 0.0, //
                0.0, 0.0, 0.0, 0.0, //
                0.5, 0.5, 0.0, -3.0,
            ],
        )
        .unwrap();
        let block = SparseBlock::from_dense(&dense);
        assert_eq!(block.num_rows(), 3);
        assert_eq!(block.dim(), 4);
        assert_eq!(block.nnz(), 5);
        assert!((block.density() - 5.0 / 12.0).abs() < 1e-12);
        let (indices, values) = block.row(0);
        assert_eq!(indices, &[0, 2]);
        assert_eq!(values, &[1.0, 2.0]);
        let (empty_idx, _) = block.row(1);
        assert!(empty_idx.is_empty(), "all-zero rows have empty postings");
        assert_eq!(block.to_dense().as_slice(), dense.as_slice());
        // Row norms equal the dense row norms bit-for-bit.
        for (r, row) in dense.iter_rows().enumerate() {
            assert_eq!(block.row_norms()[r].to_bits(), norm2(row).to_bits());
        }
        assert_eq!(block.row_vec(2).densify(), dense.row(2));
    }

    #[test]
    fn stats_sample_evenly_and_estimate_density() {
        let mut m = Matrix::<f64>::zeros(100, 10);
        for r in 0..100 {
            m.row_mut(r)[0] = 1.0; // exactly one nonzero per row
        }
        let full = SparsityStats::sample(&m, 1000);
        assert_eq!(full.rows_sampled, 100);
        assert_eq!(full.sampled_nnz, 100);
        assert!((full.density - 0.1).abs() < 1e-12);
        assert_eq!(full.max_nnz_per_row, 1);
        let sampled = SparsityStats::sample(&m, 16);
        assert_eq!(sampled.rows_sampled, 16);
        assert!((sampled.density - 0.1).abs() < 1e-12);
        assert!((sampled.avg_nnz_per_row - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synth_sparse_is_deterministic_and_hits_the_density() {
        let cfg = SparseSynthConfig {
            num_users: 60,
            num_items: 300,
            num_factors: 128,
            density: 0.02,
            ..SparseSynthConfig::default()
        };
        let a = synth_sparse_model(&cfg);
        let b = synth_sparse_model(&cfg);
        assert_eq!(a.users().as_slice(), b.users().as_slice());
        assert_eq!(a.items().as_slice(), b.items().as_slice());
        let stats = SparsityStats::sample(a.items(), 300);
        assert!(
            (stats.density - 0.02).abs() < 0.01,
            "items density {} far from configured 0.02",
            stats.density
        );
        // Every row has at least one nonzero (norm-sorted backends need it).
        for row in a.items().iter_rows().chain(a.users().iter_rows()) {
            assert!(row.iter().any(|v| *v != 0.0));
        }
    }

    #[test]
    fn hybrid_head_is_fully_dense() {
        let cfg = SparseSynthConfig {
            num_users: 20,
            num_items: 50,
            num_factors: 64,
            density: 0.01,
            dense_head: 8,
            ..SparseSynthConfig::default()
        };
        let m = synth_sparse_model(&cfg);
        for row in m.items().iter_rows() {
            assert!(row[..8].iter().all(|v| *v != 0.0), "head must be dense");
        }
    }

    #[test]
    #[should_panic(expected = "density")]
    fn rejects_zero_density() {
        let _ = synth_sparse_model(&SparseSynthConfig {
            density: 0.0,
            ..SparseSynthConfig::default()
        });
    }
}
