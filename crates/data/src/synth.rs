//! Synthetic factor-matrix generators.
//!
//! Which MIPS solver wins on a model is decided by a handful of
//! distributional properties of its factor matrices (§V of the paper, and
//! the LEMP/FEXIPRO papers before it):
//!
//! * **user clusteredness** — how tightly user vectors bundle around a few
//!   directions. Tight bundles → small θ_b → MAXIMUS prunes aggressively.
//! * **item-norm skew** — a heavy-tailed norm distribution lets norm-sorted
//!   indexes (LEMP's buckets, MAXIMUS's bound) discard most of the tail.
//! * **spectral decay** — energy concentrated in few directions makes
//!   FEXIPRO's SVD partial products tight.
//! * **shape** (`|U|`, `|I|`, `f`) — raw FLOP count, BMM's home turf.
//!
//! [`SynthConfig`] exposes exactly these knobs; [`crate::catalog`] picks
//! values per reference model to mimic the paper's win/loss pattern.

use crate::model::MfModel;
use mips_linalg::kernels::normalize;
use mips_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Knobs controlling a synthetic latent-factor model.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of user vectors.
    pub num_users: usize,
    /// Number of item vectors.
    pub num_items: usize,
    /// Latent dimensionality `f`.
    pub num_factors: usize,
    /// RNG seed (models are fully deterministic).
    pub seed: u64,
    /// Number of directional bundles user vectors are drawn around.
    pub user_clusters: usize,
    /// Angular spread within a user bundle; `0` collapses the bundle onto its
    /// axis, `≳1` approaches an isotropic Gaussian (no cluster structure).
    pub user_spread: f64,
    /// Log-normal σ of item norms; `0` gives equal norms, `≥ 1` a heavy tail.
    pub item_norm_skew: f64,
    /// Per-coordinate geometric scale `decay^j`; below `1` concentrates
    /// energy in the leading coordinates.
    pub spectral_decay: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            num_users: 1000,
            num_items: 500,
            num_factors: 50,
            seed: 0xA11CE,
            user_clusters: 8,
            user_spread: 0.5,
            item_norm_skew: 0.5,
            spectral_decay: 0.97,
        }
    }
}

/// Standard normal sample via Box–Muller (keeps `rand` usage to `gen`).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Generates a model from the given knobs.
///
/// # Panics
/// Panics if any dimension is zero or a knob is non-finite/negative.
pub fn synth_model(config: &SynthConfig) -> MfModel {
    assert!(config.num_users > 0, "synth_model: num_users must be > 0");
    assert!(config.num_items > 0, "synth_model: num_items must be > 0");
    assert!(
        config.num_factors > 0,
        "synth_model: num_factors must be > 0"
    );
    assert!(
        config.user_clusters > 0,
        "synth_model: user_clusters must be > 0"
    );
    assert!(
        config.user_spread >= 0.0 && config.user_spread.is_finite(),
        "synth_model: user_spread must be finite and non-negative"
    );
    assert!(
        config.item_norm_skew >= 0.0 && config.item_norm_skew.is_finite(),
        "synth_model: item_norm_skew must be finite and non-negative"
    );
    assert!(
        config.spectral_decay > 0.0 && config.spectral_decay <= 1.0,
        "synth_model: spectral_decay must be in (0, 1]"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let f = config.num_factors;

    // Per-coordinate scales shared by users and items, so the spectral decay
    // shows up in the item Gram matrix (what FEXIPRO's SVD sees).
    let coord_scale: Vec<f64> = (0..f)
        .map(|j| config.spectral_decay.powi(j as i32))
        .collect();

    // --- Users: mixture of directional bundles. ---
    let mut bundle_axes = Matrix::<f64>::zeros(config.user_clusters, f);
    for c in 0..config.user_clusters {
        let row = bundle_axes.row_mut(c);
        for (j, v) in row.iter_mut().enumerate() {
            *v = gaussian(&mut rng) * coord_scale[j];
        }
        normalize(row);
    }
    let mut users = Matrix::<f64>::zeros(config.num_users, f);
    for u in 0..config.num_users {
        let c = u % config.user_clusters; // balanced bundles, deterministic
        let magnitude = (0.25 + rng.gen::<f64>()).sqrt() * 2.0;
        let row = users.row_mut(u);
        let axis = bundle_axes.row(c);
        for j in 0..f {
            let noise = gaussian(&mut rng) * config.user_spread * coord_scale[j];
            row[j] = (axis[j] + noise) * magnitude;
        }
    }

    // --- Items: decayed Gaussian directions with log-normal norms. ---
    let mut items = Matrix::<f64>::zeros(config.num_items, f);
    for i in 0..config.num_items {
        let row = items.row_mut(i);
        for (j, v) in row.iter_mut().enumerate() {
            *v = gaussian(&mut rng) * coord_scale[j];
        }
        normalize(row);
        // Log-normal magnitude: median 1, heavier right tail as skew grows.
        let magnitude = (config.item_norm_skew * gaussian(&mut rng)).exp();
        for v in row.iter_mut() {
            *v *= magnitude;
        }
    }

    MfModel::new(
        format!(
            "synth(u={},i={},f={})",
            config.num_users, config.num_items, config.num_factors
        ),
        users,
        items,
    )
    .expect("generator produces finite, non-empty matrices")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_linalg::kernels::{angle, norm2};

    #[test]
    fn deterministic_for_seed() {
        let cfg = SynthConfig::default();
        let a = synth_model(&cfg);
        let b = synth_model(&cfg);
        assert_eq!(a.users().as_slice(), b.users().as_slice());
        assert_eq!(a.items().as_slice(), b.items().as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_model(&SynthConfig::default());
        let b = synth_model(&SynthConfig {
            seed: 999,
            ..SynthConfig::default()
        });
        assert_ne!(a.users().as_slice(), b.users().as_slice());
    }

    #[test]
    fn shapes_match_config() {
        let cfg = SynthConfig {
            num_users: 12,
            num_items: 34,
            num_factors: 7,
            ..SynthConfig::default()
        };
        let m = synth_model(&cfg);
        assert_eq!(m.num_users(), 12);
        assert_eq!(m.num_items(), 34);
        assert_eq!(m.num_factors(), 7);
    }

    #[test]
    fn tighter_spread_means_tighter_bundles() {
        let base = SynthConfig {
            num_users: 200,
            num_items: 10,
            num_factors: 16,
            user_clusters: 4,
            ..SynthConfig::default()
        };
        let tight = synth_model(&SynthConfig {
            user_spread: 0.05,
            ..base.clone()
        });
        let loose = synth_model(&SynthConfig {
            user_spread: 1.5,
            ..base
        });
        // Mean pairwise angle within a bundle (users u, u+4 share a bundle).
        let mean_angle = |m: &MfModel| {
            let mut total = 0.0;
            let mut count = 0;
            for u in 0..50 {
                total += angle(m.users().row(u), m.users().row(u + 4));
                count += 1;
            }
            total / count as f64
        };
        assert!(
            mean_angle(&tight) < mean_angle(&loose),
            "tight {} vs loose {}",
            mean_angle(&tight),
            mean_angle(&loose)
        );
    }

    #[test]
    fn higher_skew_means_heavier_norm_tail() {
        let base = SynthConfig {
            num_users: 10,
            num_items: 2000,
            ..SynthConfig::default()
        };
        let flat = synth_model(&SynthConfig {
            item_norm_skew: 0.0,
            ..base.clone()
        });
        let skewed = synth_model(&SynthConfig {
            item_norm_skew: 1.2,
            ..base
        });
        let tail_ratio = |m: &MfModel| {
            let mut norms: Vec<f64> = m.items().iter_rows().map(norm2).collect();
            norms.sort_by(|a, b| a.total_cmp(b));
            norms[norms.len() * 99 / 100] / norms[norms.len() / 2]
        };
        assert!(
            (tail_ratio(&flat) - 1.0).abs() < 1e-9,
            "flat skew should be 1"
        );
        assert!(tail_ratio(&skewed) > 3.0);
    }

    #[test]
    fn spectral_decay_concentrates_energy() {
        let base = SynthConfig {
            num_users: 10,
            num_items: 800,
            num_factors: 32,
            ..SynthConfig::default()
        };
        let flat = synth_model(&SynthConfig {
            spectral_decay: 1.0,
            ..base.clone()
        });
        let decayed = synth_model(&SynthConfig {
            spectral_decay: 0.8,
            ..base
        });
        let head_energy = |m: &MfModel| {
            let mut head = 0.0;
            let mut total = 0.0;
            for row in m.items().iter_rows() {
                for (j, v) in row.iter().enumerate() {
                    total += v * v;
                    if j < 8 {
                        head += v * v;
                    }
                }
            }
            head / total
        };
        assert!(head_energy(&decayed) > head_energy(&flat) + 0.2);
    }

    #[test]
    #[should_panic(expected = "num_users")]
    fn rejects_zero_users() {
        let _ = synth_model(&SynthConfig {
            num_users: 0,
            ..SynthConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "spectral_decay")]
    fn rejects_bad_decay() {
        let _ = synth_model(&SynthConfig {
            spectral_decay: 0.0,
            ..SynthConfig::default()
        });
    }
}
