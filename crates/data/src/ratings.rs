//! Synthetic ratings data: the input to the MF training substrate.
//!
//! The paper's models are trained on real rating matrices (Fig. 1). We
//! reproduce the pipeline by sampling ratings from a ground-truth low-rank
//! model plus noise, which gives the trainers in [`crate::sgd`] and
//! [`crate::bpr`] a learnable signal with known structure.

use crate::model::MfModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sparse ratings dataset as `(user, item, rating)` triples.
#[derive(Debug, Clone)]
pub struct RatingsData {
    /// Number of distinct users (ids are dense in `0..num_users`).
    pub num_users: usize,
    /// Number of distinct items (ids are dense in `0..num_items`).
    pub num_items: usize,
    /// Observed ratings.
    pub triples: Vec<(u32, u32, f64)>,
}

impl RatingsData {
    /// Samples `per_user` ratings for every user from a ground-truth model,
    /// with additive Gaussian noise of the given standard deviation.
    ///
    /// Sampled item ids are distinct within a user. Deterministic per seed.
    ///
    /// # Panics
    /// Panics if `per_user` is zero or exceeds the item count.
    pub fn from_ground_truth(
        truth: &MfModel,
        per_user: usize,
        noise_std: f64,
        seed: u64,
    ) -> RatingsData {
        assert!(per_user > 0, "from_ground_truth: per_user must be > 0");
        assert!(
            per_user <= truth.num_items(),
            "from_ground_truth: per_user exceeds item count"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let n_items = truth.num_items();
        let mut triples = Vec::with_capacity(truth.num_users() * per_user);
        let mut chosen = vec![false; n_items];
        for u in 0..truth.num_users() {
            chosen.fill(false);
            let mut picked = 0;
            while picked < per_user {
                let i = rng.gen_range(0..n_items);
                if chosen[i] {
                    continue;
                }
                chosen[i] = true;
                picked += 1;
                let noise = if noise_std > 0.0 {
                    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let u2: f64 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos() * noise_std
                } else {
                    0.0
                };
                triples.push((u as u32, i as u32, truth.predict(u, i) + noise));
            }
        }
        RatingsData {
            num_users: truth.num_users(),
            num_items: truth.num_items(),
            triples,
        }
    }

    /// Number of observed ratings.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// `true` when no ratings are present.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Mean of all ratings (`0` when empty).
    pub fn global_mean(&self) -> f64 {
        if self.triples.is_empty() {
            return 0.0;
        }
        self.triples.iter().map(|t| t.2).sum::<f64>() / self.triples.len() as f64
    }

    /// Deterministically splits into (train, test) with roughly
    /// `test_fraction` of ratings held out.
    ///
    /// # Panics
    /// Panics unless `0 < test_fraction < 1`.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (RatingsData, RatingsData) {
        assert!(
            test_fraction > 0.0 && test_fraction < 1.0,
            "split: test_fraction must be in (0,1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for &t in &self.triples {
            if rng.gen::<f64>() < test_fraction {
                test.push(t);
            } else {
                train.push(t);
            }
        }
        (
            RatingsData {
                num_users: self.num_users,
                num_items: self.num_items,
                triples: train,
            },
            RatingsData {
                num_users: self.num_users,
                num_items: self.num_items,
                triples: test,
            },
        )
    }

    /// Root-mean-square error of a model's predictions on these ratings.
    pub fn rmse(&self, model: &MfModel) -> f64 {
        if self.triples.is_empty() {
            return 0.0;
        }
        let sse: f64 = self
            .triples
            .iter()
            .map(|&(u, i, r)| {
                let e = model.predict(u as usize, i as usize) - r;
                e * e
            })
            .sum();
        (sse / self.triples.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_model, SynthConfig};

    fn truth() -> MfModel {
        synth_model(&SynthConfig {
            num_users: 30,
            num_items: 40,
            num_factors: 5,
            ..SynthConfig::default()
        })
    }

    #[test]
    fn sampling_shape_and_determinism() {
        let t = truth();
        let a = RatingsData::from_ground_truth(&t, 10, 0.1, 7);
        assert_eq!(a.len(), 300);
        assert_eq!(a.num_users, 30);
        let b = RatingsData::from_ground_truth(&t, 10, 0.1, 7);
        assert_eq!(a.triples, b.triples);
    }

    #[test]
    fn items_distinct_within_user() {
        let t = truth();
        let data = RatingsData::from_ground_truth(&t, 20, 0.0, 3);
        for u in 0..30u32 {
            let mut items: Vec<u32> = data
                .triples
                .iter()
                .filter(|t| t.0 == u)
                .map(|t| t.1)
                .collect();
            let before = items.len();
            items.sort_unstable();
            items.dedup();
            assert_eq!(items.len(), before, "user {u} has duplicate items");
        }
    }

    #[test]
    fn zero_noise_reproduces_truth() {
        let t = truth();
        let data = RatingsData::from_ground_truth(&t, 5, 0.0, 1);
        for &(u, i, r) in &data.triples {
            assert!((r - t.predict(u as usize, i as usize)).abs() < 1e-12);
        }
        assert!(data.rmse(&t) < 1e-12);
    }

    #[test]
    fn noise_increases_rmse() {
        let t = truth();
        let noisy = RatingsData::from_ground_truth(&t, 10, 0.5, 2);
        let r = noisy.rmse(&t);
        assert!(r > 0.3 && r < 0.8, "rmse {r} should be near the noise std");
    }

    #[test]
    fn split_partitions_ratings() {
        let t = truth();
        let data = RatingsData::from_ground_truth(&t, 10, 0.1, 4);
        let (train, test) = data.split(0.25, 9);
        assert_eq!(train.len() + test.len(), data.len());
        assert!(test.len() > data.len() / 10);
        assert!(test.len() < data.len() / 2);
    }

    #[test]
    fn global_mean_matches_manual() {
        let data = RatingsData {
            num_users: 2,
            num_items: 2,
            triples: vec![(0, 0, 1.0), (0, 1, 3.0), (1, 0, 5.0)],
        };
        assert!((data.global_mean() - 3.0).abs() < 1e-12);
        let empty = RatingsData {
            num_users: 0,
            num_items: 0,
            triples: vec![],
        };
        assert_eq!(empty.global_mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "per_user")]
    fn rejects_oversampling() {
        let t = truth();
        let _ = RatingsData::from_ground_truth(&t, 41, 0.0, 1);
    }
}
