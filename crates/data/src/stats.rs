//! Dataset statistics: the numbers behind Table I and the knob sanity
//! checks.

use crate::model::MfModel;
use mips_linalg::kernels::norm2;

/// Summary statistics of a model's factor matrices.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Number of users `|U|`.
    pub num_users: usize,
    /// Number of items `|I|`.
    pub num_items: usize,
    /// Latent factors `f`.
    pub num_factors: usize,
    /// Mean item vector norm.
    pub mean_item_norm: f64,
    /// Maximum item vector norm.
    pub max_item_norm: f64,
    /// Ratio of the 99th-percentile to median item norm — the "skew" that
    /// norm-sorted indexes exploit.
    pub item_norm_p99_over_p50: f64,
    /// Mean user vector norm.
    pub mean_user_norm: f64,
}

impl DatasetStats {
    /// Computes statistics for a model.
    pub fn compute(model: &MfModel) -> DatasetStats {
        let mut item_norms: Vec<f64> = model.items().iter_rows().map(norm2).collect();
        item_norms.sort_by(|a, b| a.total_cmp(b));
        let n = item_norms.len();
        let mean_item_norm = item_norms.iter().sum::<f64>() / n as f64;
        let median = item_norms[n / 2];
        let p99 = item_norms[(n * 99 / 100).min(n - 1)];
        let user_norms: Vec<f64> = model.users().iter_rows().map(norm2).collect();
        DatasetStats {
            num_users: model.num_users(),
            num_items: model.num_items(),
            num_factors: model.num_factors(),
            mean_item_norm,
            max_item_norm: item_norms[n - 1],
            item_norm_p99_over_p50: if median > 0.0 {
                p99 / median
            } else {
                f64::INFINITY
            },
            mean_user_norm: user_norms.iter().sum::<f64>() / user_norms.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_model, SynthConfig};
    use mips_linalg::Matrix;

    #[test]
    fn computes_basic_shape() {
        let m = synth_model(&SynthConfig {
            num_users: 20,
            num_items: 50,
            num_factors: 6,
            ..SynthConfig::default()
        });
        let s = DatasetStats::compute(&m);
        assert_eq!(s.num_users, 20);
        assert_eq!(s.num_items, 50);
        assert_eq!(s.num_factors, 6);
        assert!(s.mean_item_norm > 0.0);
        assert!(s.max_item_norm >= s.mean_item_norm);
        assert!(s.item_norm_p99_over_p50 >= 1.0);
    }

    #[test]
    fn known_norms() {
        let users = Matrix::from_vec(1, 2, vec![3.0, 4.0]).unwrap();
        let items = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]).unwrap();
        let m = MfModel::new("t", users, items).unwrap();
        let s = DatasetStats::compute(&m);
        assert!((s.mean_user_norm - 5.0).abs() < 1e-12);
        assert!((s.mean_item_norm - 1.5).abs() < 1e-12);
        assert!((s.max_item_norm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn skew_knob_is_visible_in_stats() {
        let flat = synth_model(&SynthConfig {
            num_items: 1000,
            item_norm_skew: 0.0,
            ..SynthConfig::default()
        });
        let skewed = synth_model(&SynthConfig {
            num_items: 1000,
            item_norm_skew: 1.2,
            ..SynthConfig::default()
        });
        let sf = DatasetStats::compute(&flat);
        let ss = DatasetStats::compute(&skewed);
        assert!(ss.item_norm_p99_over_p50 > sf.item_norm_p99_over_p50 * 2.0);
    }
}
