//! Bayesian Personalized Ranking: the implicit-feedback trainer.
//!
//! The paper's `Netflix-BPR` models come from BPR \[28\]: instead of fitting
//! rating values, BPR maximizes `σ(uᵀi − uᵀj)` over sampled triples where the
//! user interacted with `i` but not `j`. The resulting factor geometry is
//! characteristically different from explicit MF — flatter item norms,
//! more diffuse users — which is exactly why the paper's BPR models favour
//! blocked matrix multiply over indexes.

use crate::model::MfModel;
use crate::ratings::RatingsData;
use mips_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters for [`train_bpr`].
#[derive(Debug, Clone, Copy)]
pub struct BprConfig {
    /// Latent dimensionality of the learned factors.
    pub num_factors: usize,
    /// Number of sampled (user, positive, negative) update steps.
    pub steps: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength λ.
    pub regularization: f64,
    /// Ratings at or above this value count as positive interactions.
    pub positive_threshold: f64,
    /// Seed for initialization and sampling.
    pub seed: u64,
}

impl Default for BprConfig {
    fn default() -> Self {
        BprConfig {
            num_factors: 16,
            steps: 50_000,
            learning_rate: 0.05,
            regularization: 0.01,
            positive_threshold: 0.0,
            seed: 0xB9,
        }
    }
}

/// Logistic sigmoid with clamping against overflow.
#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x.clamp(-35.0, 35.0)).exp())
}

/// Trains an implicit-feedback model with BPR-Opt SGD.
///
/// Ratings at or above `positive_threshold` define each user's positive item
/// set; negatives are sampled uniformly from the rest. Users without
/// positives are skipped during sampling (their factors stay at the random
/// initialization). Deterministic for a fixed config.
///
/// # Panics
/// Panics if the data is empty, no user has a positive item, or the config is
/// degenerate.
pub fn train_bpr(data: &RatingsData, config: &BprConfig) -> MfModel {
    assert!(!data.is_empty(), "train_bpr: no ratings");
    assert!(config.num_factors > 0, "train_bpr: num_factors must be > 0");
    assert!(config.steps > 0, "train_bpr: steps must be > 0");

    // Positive item lists per user.
    let mut positives: Vec<Vec<u32>> = vec![Vec::new(); data.num_users];
    for &(u, i, r) in &data.triples {
        if r >= config.positive_threshold {
            positives[u as usize].push(i);
        }
    }
    let active_users: Vec<u32> = (0..data.num_users as u32)
        .filter(|&u| !positives[u as usize].is_empty())
        .collect();
    assert!(
        !active_users.is_empty(),
        "train_bpr: no user has positive interactions at this threshold"
    );

    let f = config.num_factors;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let init_scale = (1.0 / f as f64).sqrt();
    let mut users = Matrix::from_fn(data.num_users, f, |_, _| {
        (rng.gen::<f64>() - 0.5) * init_scale
    });
    let mut items = Matrix::from_fn(data.num_items, f, |_, _| {
        (rng.gen::<f64>() - 0.5) * init_scale
    });

    let lr = config.learning_rate;
    let reg = config.regularization;
    for _ in 0..config.steps {
        let u = active_users[rng.gen_range(0..active_users.len())] as usize;
        let pos_list = &positives[u];
        let i = pos_list[rng.gen_range(0..pos_list.len())] as usize;
        // Rejection-sample a negative; bounded tries guards pathological
        // users who rated everything.
        let mut j = rng.gen_range(0..data.num_items);
        let mut tries = 0;
        while pos_list.contains(&(j as u32)) && tries < 16 {
            j = rng.gen_range(0..data.num_items);
            tries += 1;
        }
        if pos_list.contains(&(j as u32)) {
            continue;
        }

        let x_uij: f64 = users
            .row(u)
            .iter()
            .zip(items.row(i).iter().zip(items.row(j)))
            .map(|(w, (pi, pj))| w * (pi - pj))
            .sum();
        let g = 1.0 - sigmoid(x_uij); // d/dx −ln σ(x) = −(1−σ)

        let urow: Vec<f64> = users.row(u).to_vec();
        let irow: Vec<f64> = items.row(i).to_vec();
        let jrow: Vec<f64> = items.row(j).to_vec();
        for d in 0..f {
            users.row_mut(u)[d] += lr * (g * (irow[d] - jrow[d]) - reg * urow[d]);
            items.row_mut(i)[d] += lr * (g * urow[d] - reg * irow[d]);
            items.row_mut(j)[d] += lr * (-g * urow[d] - reg * jrow[d]);
        }
    }

    MfModel::new(format!("bpr(f={f},steps={})", config.steps), users, items)
        .expect("BPR training keeps factors finite")
}

/// AUC of the model on held-out positives: the probability that a true
/// positive outranks a random other item for the same user, estimated with
/// 32 sampled comparisons per positive to keep the variance low.
pub fn auc(model: &MfModel, test: &RatingsData, positive_threshold: f64, seed: u64) -> f64 {
    const NEGATIVES_PER_POSITIVE: usize = 32;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wins = 0.0f64;
    let mut total = 0u64;
    for &(u, i, r) in &test.triples {
        if r < positive_threshold {
            continue;
        }
        let pos = model.predict(u as usize, i as usize);
        for _ in 0..NEGATIVES_PER_POSITIVE {
            let j = rng.gen_range(0..model.num_items());
            if j == i as usize {
                continue;
            }
            let neg = model.predict(u as usize, j);
            if pos > neg {
                wins += 1.0;
            } else if pos == neg {
                wins += 0.5;
            }
            total += 1;
        }
    }
    if total == 0 {
        return 0.5;
    }
    wins / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synth_model, SynthConfig};

    /// Implicit data: positives are the truth model's high ratings. Enough
    /// users per preference bundle that the collaborative signal generalizes
    /// (few users per bundle → BPR memorizes observed positives instead).
    fn implicit_data() -> (RatingsData, f64) {
        let truth = synth_model(&SynthConfig {
            num_users: 200,
            num_items: 80,
            num_factors: 4,
            user_clusters: 6,
            user_spread: 0.25,
            ..SynthConfig::default()
        });
        let data = RatingsData::from_ground_truth(&truth, 30, 0.0, 21);
        let threshold = data.global_mean();
        (data, threshold)
    }

    #[test]
    fn learns_better_than_random_ranking() {
        let (data, threshold) = implicit_data();
        let (train, test) = data.split(0.2, 13);
        let model = train_bpr(
            &train,
            &BprConfig {
                num_factors: 4,
                steps: 150_000,
                learning_rate: 0.05,
                regularization: 0.1,
                positive_threshold: threshold,
                ..BprConfig::default()
            },
        );
        // The oracle (ground-truth factors) reaches ~0.75 on this split; a
        // useful trainer should recover most of that headroom over 0.5.
        let score = auc(&model, &test, threshold, 99);
        assert!(score > 0.62, "test AUC {score}; expected well above chance");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, threshold) = implicit_data();
        let cfg = BprConfig {
            steps: 2000,
            positive_threshold: threshold,
            ..BprConfig::default()
        };
        let a = train_bpr(&data, &cfg);
        let b = train_bpr(&data, &cfg);
        assert_eq!(a.users().as_slice(), b.users().as_slice());
    }

    #[test]
    fn sigmoid_sane() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!(sigmoid(1e300).is_finite());
    }

    #[test]
    #[should_panic(expected = "no user has positive interactions")]
    fn rejects_threshold_above_all_ratings() {
        let (data, _) = implicit_data();
        let _ = train_bpr(
            &data,
            &BprConfig {
                positive_threshold: f64::INFINITY,
                ..BprConfig::default()
            },
        );
    }

    #[test]
    fn output_shape() {
        let (data, threshold) = implicit_data();
        let model = train_bpr(
            &data,
            &BprConfig {
                num_factors: 5,
                steps: 500,
                positive_threshold: threshold,
                ..BprConfig::default()
            },
        );
        assert_eq!(model.num_users(), 200);
        assert_eq!(model.num_items(), 80);
        assert_eq!(model.num_factors(), 5);
    }
}
