//! Matrix-factorization models, synthetic dataset stand-ins, and trainers.
//!
//! The paper evaluates MIPS solvers on factor matrices from 23 reference
//! models over four datasets (Netflix Prize, Yahoo Music KDD, Yahoo Music R2,
//! GloVe-Twitter; Table I). Those raw datasets are proprietary or multi-GB
//! downloads, but MIPS solver behaviour depends only on the *distribution of
//! the factor vectors*, so this crate provides:
//!
//! * [`model`] — the [`model::MfModel`] type every solver consumes,
//! * [`synth`] — generators with the four knobs that decide which solver wins
//!   (user clusteredness, item-norm skew, spectral decay, shape),
//! * [`catalog`] — one scaled stand-in per paper model
//!   (`Netflix-DSGD f=50`, `KDD-REF f=51`, …),
//! * [`ratings`] / [`sgd`] / [`bpr`] — an end-to-end training substrate
//!   (synthetic ratings → explicit-SGD or BPR MF → factor matrices), standing
//!   in for the paper's DSGD/NOMAD/BPR toolkits,
//! * [`sparse`] — sparse/hybrid vector and CSR block types plus sparse
//!   catalog generators for the inverted-index backend,
//! * [`stats`] — the dataset statistics printed by the Table I bench.
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod als;
pub mod bpr;
pub mod catalog;
pub mod model;
pub mod ratings;
pub mod sgd;
pub mod sparse;
pub mod stats;
pub mod synth;

pub use catalog::{reference_models, ModelSpec};
pub use model::{MfModel, Mirror32, MirrorI8, ModelError, ModelView};
pub use ratings::RatingsData;
pub use sparse::{
    synth_sparse_model, SparseBlock, SparseError, SparseSynthConfig, SparseVec, SparsityStats,
};
pub use stats::DatasetStats;
pub use synth::{synth_model, SynthConfig};
