//! Property tests for the data substrate.

use mips_data::ratings::RatingsData;
use mips_data::synth::{synth_model, SynthConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any valid knob combination produces a well-formed model.
    #[test]
    fn synth_models_are_always_valid(n_users in 1usize..60,
                                     n_items in 1usize..60,
                                     f in 1usize..16,
                                     clusters in 1usize..10,
                                     spread in 0.0f64..2.0,
                                     skew in 0.0f64..1.5,
                                     decay in 0.5f64..1.0,
                                     seed in 0u64..10_000) {
        let m = synth_model(&SynthConfig {
            num_users: n_users,
            num_items: n_items,
            num_factors: f,
            user_clusters: clusters,
            user_spread: spread,
            item_norm_skew: skew,
            spectral_decay: decay,
            seed,
        });
        prop_assert_eq!(m.num_users(), n_users);
        prop_assert_eq!(m.num_items(), n_items);
        prop_assert_eq!(m.num_factors(), f);
        prop_assert!(m.users().all_finite());
        prop_assert!(m.items().all_finite());
    }

    /// Train/test splits partition the ratings exactly.
    #[test]
    fn splits_partition(per_user in 1usize..20,
                        frac in 0.05f64..0.95,
                        seed in 0u64..1000) {
        let truth = synth_model(&SynthConfig {
            num_users: 20,
            num_items: 25,
            num_factors: 4,
            ..SynthConfig::default()
        });
        let data = RatingsData::from_ground_truth(&truth, per_user, 0.1, seed);
        let (train, test) = data.split(frac, seed ^ 0xF00D);
        prop_assert_eq!(train.len() + test.len(), data.len());
        // Every triple lands in exactly one side, order preserved.
        let mut merged: Vec<_> = train.triples.clone();
        merged.extend(test.triples.iter().copied());
        merged.sort_by_key(|&(u, i, _)| (u, i));
        let mut original = data.triples.clone();
        original.sort_by_key(|&(u, i, _)| (u, i));
        prop_assert_eq!(merged, original);
    }

    /// RMSE against the generating model is bounded by the injected noise
    /// (up to sampling variance).
    #[test]
    fn rmse_tracks_noise(noise in 0.0f64..1.0, seed in 0u64..500) {
        let truth = synth_model(&SynthConfig {
            num_users: 40,
            num_items: 30,
            num_factors: 4,
            seed: 9,
            ..SynthConfig::default()
        });
        let data = RatingsData::from_ground_truth(&truth, 20, noise, seed);
        let rmse = data.rmse(&truth);
        prop_assert!(rmse <= noise * 1.3 + 1e-9, "rmse {rmse} vs noise {noise}");
        if noise > 0.2 {
            prop_assert!(rmse >= noise * 0.7, "rmse {rmse} vs noise {noise}");
        }
    }
}
