//! Property tests for the sparse data substrate.
//!
//! The canonical-form contract is *exact*: sparsify ∘ densify and its
//! converse are bit-for-bit identities (no arithmetic happens either way),
//! CSR blocks reproduce their dense source verbatim, and every malformed
//! posting list is rejected with a typed [`SparseError`] — never a panic,
//! never a silently repaired vector.

use mips_data::sparse::{
    synth_sparse_model, SparseBlock, SparseError, SparseSynthConfig, SparseVec, SparsityStats,
};
use mips_linalg::{norm2, Matrix};
use proptest::prelude::*;

/// Deterministic dense vector in `[-2, 2]` with exact `+0.0` holes: each
/// coordinate survives with probability `density`. Surviving values are
/// redrawn away from the (measure-zero) exact zero so the nonzero count is
/// exactly what [`SparseVec::from_dense`] must preserve.
fn random_dense(len: usize, density: f64, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..len)
        .map(|_| {
            if next() < density {
                let v = next() * 4.0 - 2.0;
                if v == 0.0 {
                    1.0
                } else {
                    v
                }
            } else {
                0.0
            }
        })
        .collect()
}

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `from_dense` ∘ `densify` is the identity on dense vectors, to the
    /// bit, at every density including all-zero and fully dense.
    #[test]
    fn sparsify_then_densify_is_identity(len in 0usize..120,
                                         density in 0.0f64..=1.0,
                                         seed in 0u64..5_000) {
        let dense = random_dense(len, density, seed);
        let sparse = SparseVec::from_dense(&dense);
        prop_assert_eq!(sparse.dim(), len);
        prop_assert_eq!(sparse.nnz(), dense.iter().filter(|v| **v != 0.0).count());
        prop_assert!(sparse.indices().windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(bits(&sparse.densify()), bits(&dense));
    }

    /// `densify` ∘ `from_dense` is the identity on canonical sparse
    /// vectors: postings built by hand survive the round trip verbatim.
    #[test]
    fn densify_then_sparsify_is_identity(dim in 1usize..200,
                                         stride in 1usize..9,
                                         seed in 0u64..5_000) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 * 4.0 - 2.0
        };
        // Strictly ascending strided indices; values finite and nonzero.
        let indices: Vec<u32> = (0..dim).step_by(stride).map(|j| j as u32).collect();
        let values: Vec<f64> = indices
            .iter()
            .map(|_| {
                let v = next();
                if v == 0.0 { 0.5 } else { v }
            })
            .collect();
        let sparse = SparseVec::new(dim, indices.clone(), values.clone()).unwrap();
        let round = SparseVec::from_dense(&sparse.densify());
        prop_assert_eq!(round.dim(), dim);
        prop_assert_eq!(round.indices(), &indices[..]);
        prop_assert_eq!(bits(round.values()), bits(&values));
    }

    /// CSR blocks are exact: `to_dense` reproduces the source matrix to the
    /// bit, per-row postings match `from_dense` of each row, and the cached
    /// row norms equal the dense-row norms bit-for-bit.
    #[test]
    fn csr_round_trip_is_exact(rows in 0usize..20,
                               cols in 0usize..40,
                               density in 0.0f64..=1.0,
                               seed in 0u64..5_000) {
        let source = Matrix::from_fn(rows, cols, |r, c| {
            random_dense(1, density, seed ^ ((r as u64) << 24) ^ c as u64)[0]
        });
        let block = SparseBlock::from_dense(&source);
        prop_assert_eq!(block.num_rows(), rows);
        prop_assert_eq!(block.dim(), cols);

        let dense = block.to_dense();
        let mut nnz = 0usize;
        for r in 0..rows {
            prop_assert_eq!(bits(dense.row(r)), bits(source.row(r)));
            let row_vec = block.row_vec(r);
            let expect = SparseVec::from_dense(source.row(r));
            prop_assert_eq!(row_vec.indices(), expect.indices());
            prop_assert_eq!(bits(row_vec.values()), bits(expect.values()));
            prop_assert_eq!(block.row_norms()[r].to_bits(), norm2(source.row(r)).to_bits());
            nnz += row_vec.nnz();
        }
        prop_assert_eq!(block.nnz(), nnz);
        if rows > 0 && cols > 0 {
            let exact = nnz as f64 / (rows * cols) as f64;
            prop_assert!((block.density() - exact).abs() < 1e-12);
        } else {
            prop_assert_eq!(block.density(), 0.0);
        }
    }

    /// Sampling every row makes the stats exact, not estimates.
    #[test]
    fn full_sample_stats_are_exact(rows in 1usize..16,
                                   cols in 1usize..24,
                                   density in 0.0f64..=1.0,
                                   seed in 0u64..2_000) {
        let source = Matrix::from_fn(rows, cols, |r, c| {
            random_dense(1, density, seed ^ ((r as u64) << 20) ^ c as u64)[0]
        });
        let stats = SparsityStats::sample(&source, rows);
        let block = SparseBlock::from_dense(&source);
        prop_assert_eq!(stats.rows_sampled, rows);
        prop_assert_eq!(stats.sampled_nnz, block.nnz());
        prop_assert!((stats.density - block.density()).abs() < 1e-12);
        let max = (0..rows).map(|r| block.row(r).0.len()).max().unwrap();
        prop_assert_eq!(stats.max_nnz_per_row, max);
    }

    /// The sparse synthetic generator never emits an all-zero row (the
    /// deterministic rescue nonzero), so every catalog it produces is a
    /// valid MIPS workload at any density.
    #[test]
    fn synth_sparse_rows_are_never_empty(users in 1usize..30,
                                         items in 1usize..30,
                                         f in 1usize..24,
                                         density in 0.001f64..0.2,
                                         seed in 0u64..500) {
        let model = synth_sparse_model(&SparseSynthConfig {
            num_users: users,
            num_items: items,
            num_factors: f,
            density,
            dense_head: 0,
            seed,
        });
        for block in [
            SparseBlock::from_dense(model.users()),
            SparseBlock::from_dense(model.items()),
        ] {
            for r in 0..block.num_rows() {
                prop_assert!(!block.row(r).0.is_empty(), "all-zero row {r}");
            }
        }
    }

    /// Every malformed posting list maps to its specific [`SparseError`]
    /// variant, for arbitrary dimensionalities and positions.
    #[test]
    fn malformed_postings_are_rejected(dim in 1usize..500, at in 0u32..400) {
        let j = at.min(dim as u32 - 1);
        prop_assert_eq!(
            SparseVec::new(dim, vec![j], vec![]),
            Err(SparseError::LengthMismatch { indices: 1, values: 0 })
        );
        prop_assert_eq!(
            SparseVec::new(dim, vec![j, j], vec![1.0, 2.0]),
            Err(SparseError::DuplicateOrUnsorted { position: 1 })
        );
        if j > 0 {
            prop_assert_eq!(
                SparseVec::new(dim, vec![j, j - 1], vec![1.0, 2.0]),
                Err(SparseError::DuplicateOrUnsorted { position: 1 })
            );
        }
        prop_assert_eq!(
            SparseVec::new(dim, vec![dim as u32], vec![1.0]),
            Err(SparseError::IndexOutOfRange { index: dim as u32, dim })
        );
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            prop_assert_eq!(
                SparseVec::new(dim, vec![j], vec![bad]),
                Err(SparseError::NonFiniteValue { index: j })
            );
        }
        for zero in [0.0, -0.0] {
            prop_assert_eq!(
                SparseVec::new(dim, vec![j], vec![zero]),
                Err(SparseError::ExplicitZero { index: j })
            );
        }
    }
}

/// Empty postings are first-class: `empty`, `new` with no postings, and
/// `from_dense` of an all-zero vector agree, and densify to exact `+0.0`.
#[test]
fn empty_postings_round_trip() {
    for dim in [0usize, 1, 7, 300] {
        let empty = SparseVec::empty(dim);
        assert_eq!(empty, SparseVec::new(dim, vec![], vec![]).unwrap());
        assert_eq!(empty, SparseVec::from_dense(&vec![0.0; dim]));
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.norm(), 0.0);
        let dense = empty.densify();
        assert_eq!(dense.len(), dim);
        assert!(dense.iter().all(|v| v.to_bits() == 0));
    }
}

/// An all-zero matrix is the empty CSR block and survives the round trip.
#[test]
fn empty_block_round_trip() {
    let zeros = Matrix::<f64>::zeros(5, 9);
    let block = SparseBlock::from_dense(&zeros);
    assert_eq!(block.nnz(), 0);
    assert_eq!(block.density(), 0.0);
    let back = block.to_dense();
    for r in 0..5 {
        assert!(back.row(r).iter().all(|v| v.to_bits() == 0));
        assert_eq!(block.row_norms()[r], 0.0);
    }
}
