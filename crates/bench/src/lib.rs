//! Shared harness for the paper-reproduction benches.
//!
//! Every table and figure of the paper's evaluation (§V) has a `harness =
//! false` bench target in `benches/` that prints the same rows or series the
//! paper reports. This library provides the pieces they share: scaled model
//! construction, the per-dataset MAXIMUS blocking factor, wall-clock timing,
//! and plain-text table printing.
//!
//! ## Scale
//!
//! Models are generated at roughly 1/100 of Table I's sizes so the whole
//! suite runs in minutes; set `MIPS_SCALE` to grow or shrink everything
//! (e.g. `MIPS_SCALE=2 cargo bench -p mips-bench`). Absolute seconds shift
//! with scale and host, but the comparisons the paper draws — who wins,
//! by roughly what factor, where the crossovers sit — are scale-stable;
//! `EXPERIMENTS.md` records a paper-vs-measured digest for each experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

use mips_core::bmm::BmmSolver;
use mips_core::engine::{
    BmmFactory, Engine, EngineBuilder, FexiproFactory, LempFactory, MaximusFactory, QueryRequest,
    SolverFactory, SparseFactory,
};
use mips_core::maximus::MaximusConfig;
use mips_core::precision::Precision;
use mips_core::serve::JsonWriter;
use mips_core::solver::MipsSolver;
use mips_data::catalog::ModelSpec;
use mips_data::MfModel;
use mips_lemp::LempConfig;
use mips_linalg::simd::Kernel;
use mips_linalg::{gemm_nt_blocked_with, BlockSizes, CacheConfig};
use mips_sparse::SparseConfig;
use mips_topk::rows_topk;
use std::sync::Arc;
use std::time::Instant;

/// The `K` values the paper evaluates throughout (Fig. 2, Fig. 5, Table II).
pub const PAPER_KS: [usize; 4] = [1, 5, 10, 50];

/// The benchmark scale factor from `MIPS_SCALE` (default 1.0).
pub fn scale() -> f64 {
    std::env::var("MIPS_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(1.0)
}

/// Builds a catalog model at the configured scale.
pub fn build_model(spec: &ModelSpec) -> Arc<MfModel> {
    Arc::new(spec.build(scale()))
}

/// The MAXIMUS configuration for a model: the paper's defaults with the
/// blocking factor scaled to the stand-in's catalog size (see
/// [`ModelSpec::scaled_block_size`]).
pub fn maximus_config(spec: &ModelSpec, model: &MfModel) -> MaximusConfig {
    MaximusConfig {
        block_size: spec.scaled_block_size(model.num_items()),
        ..MaximusConfig::default()
    }
}

/// A backend the figure benches time: the display name the paper's legends
/// use, the engine's registry key, and the factory that builds it.
#[derive(Clone)]
pub struct BenchBackend {
    /// Display name (`"Blocked MM"`, `"Maximus"`, `"LEMP"`, …).
    pub name: &'static str,
    /// Registry key (`"bmm"`, `"maximus"`, `"lemp"`, …).
    pub key: &'static str,
    /// The factory registered under [`BenchBackend::key`].
    pub factory: Arc<dyn SolverFactory>,
}

impl std::fmt::Debug for BenchBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchBackend")
            .field("name", &self.name)
            .field("key", &self.key)
            .finish()
    }
}

/// The brute-force baseline as a bench backend.
pub fn bmm_backend() -> BenchBackend {
    BenchBackend {
        name: "Blocked MM",
        key: "bmm",
        factory: Arc::new(BmmFactory),
    }
}

/// The inverted-index sparse backend as a bench backend (the sparse bench
/// family rows).
pub fn sparse_backend(config: SparseConfig) -> BenchBackend {
    BenchBackend {
        name: "Sparse-II",
        key: "sparse",
        factory: Arc::new(SparseFactory::new(config)),
    }
}

/// The five backends of Fig. 5, in its legend order.
pub fn figure5_backends(spec: &ModelSpec, model: &MfModel) -> Vec<BenchBackend> {
    vec![
        bmm_backend(),
        BenchBackend {
            name: "Maximus",
            key: "maximus",
            factory: Arc::new(MaximusFactory::new(maximus_config(spec, model))),
        },
        BenchBackend {
            name: "LEMP",
            key: "lemp",
            factory: Arc::new(LempFactory::new(LempConfig::default())),
        },
        BenchBackend {
            name: "FEXIPRO-SIR",
            key: "fexipro-sir",
            factory: Arc::new(FexiproFactory::sir()),
        },
        BenchBackend {
            name: "FEXIPRO-SI",
            key: "fexipro-si",
            factory: Arc::new(FexiproFactory::si()),
        },
    ]
}

/// Wall-clock seconds of one invocation.
pub fn time_seconds<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let value = f();
    (start.elapsed().as_secs_f64(), value)
}

/// An engine serving exactly one backend (the unit the figure benches
/// time): the backend's factory registered under its key, threads = 1.
pub fn single_backend_engine(backend: &BenchBackend, model: &Arc<MfModel>) -> Engine {
    single_backend_engine_at(backend, model, Precision::F64)
}

/// [`single_backend_engine`] with an explicit numeric-path mode — the unit
/// the mixed-precision bench rows time. Results are bit-identical across
/// modes; only the serve seconds may move.
pub fn single_backend_engine_at(
    backend: &BenchBackend,
    model: &Arc<MfModel>,
    precision: Precision,
) -> Engine {
    EngineBuilder::new()
        .model(Arc::clone(model))
        .register_arc(Arc::clone(&backend.factory))
        .precision(precision)
        .build()
        .expect("bench engine assembles")
}

/// The numeric-path modes a backend gets bench rows for: the scan
/// backends (BMM, MAXIMUS, LEMP) carry f32 and int8 screens and compete
/// under `Auto`; FEXIPRO's integer pipeline and the sparse inverted index
/// are f64-direct only, so extra modes would just duplicate their rows.
pub fn backend_precisions(backend: &BenchBackend) -> Vec<Precision> {
    match backend.key {
        "bmm" | "maximus" | "lemp" => {
            vec![
                Precision::F64,
                Precision::F32Rescore,
                Precision::I8Rescore,
                Precision::Auto,
            ]
        }
        _ => vec![Precision::F64],
    }
}

/// End-to-end seconds (build + serve-all) for one backend, as Fig. 5
/// measures it. Serving is dispatched through the engine facade.
pub fn end_to_end_seconds(backend: &BenchBackend, model: &Arc<MfModel>, k: usize) -> f64 {
    let engine = single_backend_engine(backend, model);
    let response = engine
        .execute_with(backend.key, &QueryRequest::top_k(k))
        .expect("valid bench request");
    assert_eq!(response.results.len(), model.num_users());
    let build_seconds = engine
        .solver(backend.key)
        .expect("solver was built")
        .build_seconds();
    build_seconds + response.serve_seconds
}

/// One engine-overhead measurement: serve-all seconds through the
/// [`Engine`] facade vs. the same solver called directly.
#[derive(Debug, Clone, Copy)]
pub struct OverheadSample {
    /// Seconds through `Engine::execute_with` (request validation +
    /// dispatch + response assembly included).
    pub engine_seconds: f64,
    /// Seconds calling `MipsSolver::query_all` on the identical solver.
    pub direct_seconds: f64,
}

impl OverheadSample {
    /// Engine seconds over direct seconds (1.0 = free facade).
    pub fn ratio(&self) -> f64 {
        if self.direct_seconds > 0.0 {
            self.engine_seconds / self.direct_seconds
        } else {
            1.0
        }
    }
}

/// Times `Engine` dispatch against direct `MipsSolver` calls on the same
/// built solver, taking the median of `runs` serve-all passes for each
/// path. The facade's per-batch cost (validation, lock on the solver
/// cache, response assembly) should vanish next to the multiply itself.
pub fn engine_overhead(
    backend: &BenchBackend,
    model: &Arc<MfModel>,
    k: usize,
    runs: usize,
) -> OverheadSample {
    assert!(runs >= 1, "engine_overhead: runs must be >= 1");
    let engine = single_backend_engine(backend, model);
    let request = QueryRequest::top_k(k);
    // Build once up front so neither path pays construction.
    let solver = engine.solver(backend.key).expect("solver builds");

    let median = |samples: &mut Vec<f64>| -> f64 {
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };

    let mut engine_runs: Vec<f64> = (0..runs)
        .map(|_| {
            let (t, response) = time_seconds(|| {
                engine
                    .execute_with(backend.key, &request)
                    .expect("valid bench request")
            });
            assert_eq!(response.results.len(), model.num_users());
            t
        })
        .collect();
    let mut direct_runs: Vec<f64> = (0..runs)
        .map(|_| {
            let (t, results) = time_seconds(|| solver.query_all(k));
            assert_eq!(results.len(), model.num_users());
            t
        })
        .collect();
    OverheadSample {
        engine_seconds: median(&mut engine_runs),
        direct_seconds: median(&mut direct_runs),
    }
}

/// The name of the process-wide active SIMD kernel set
/// (`"avx2-fma"`, `"neon"`, or `"scalar"`); recorded in every machine-
/// readable bench row so perf trajectories across PRs compare like with
/// like.
pub fn kernel_name() -> &'static str {
    mips_linalg::simd::active().name()
}

/// One fused-vs-seed BMM measurement (the ISSUE-2 acceptance quantity).
#[derive(Debug, Clone, Copy)]
pub struct FusionSample {
    /// Serve-all seconds on the fused GEMM→top-k path under the active
    /// (dispatched) kernel set.
    pub fused_seconds: f64,
    /// Serve-all seconds replaying the seed pipeline: full `batch × n`
    /// score buffer through the **scalar** micro-kernels, then a separate
    /// `rows_topk` pass — byte-for-byte the pre-SIMD serve loop.
    pub seed_scalar_seconds: f64,
}

impl FusionSample {
    /// Seed seconds over fused seconds (> 1 means the fused path wins).
    pub fn speedup(&self) -> f64 {
        if self.fused_seconds > 0.0 {
            self.seed_scalar_seconds / self.fused_seconds
        } else {
            f64::INFINITY
        }
    }
}

/// Times the fused SIMD BMM path against the seed scalar path on one model,
/// taking the best of `runs` serve-all passes for each (best-of tames
/// scheduler noise on shared hosts; both paths get identical treatment).
///
/// Both paths use the same batch geometry, so the ratio isolates
/// fusion + SIMD dispatch — exactly the constant factor this PR claims.
pub fn bmm_fusion_sample(model: &Arc<MfModel>, k: usize, runs: usize) -> FusionSample {
    assert!(runs >= 1, "bmm_fusion_sample: runs must be >= 1");
    let solver = BmmSolver::build(Arc::clone(model));
    let batch = solver.batch_rows();
    let n = model.num_items();
    let scalar = Kernel::scalar();
    let blocks = BlockSizes::for_scalar::<f64>(&CacheConfig::default());

    let best = |mut f: Box<dyn FnMut() -> usize>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..runs {
            let t = Instant::now();
            let lists = f();
            best = best.min(t.elapsed().as_secs_f64());
            assert_eq!(lists, model.num_users());
        }
        best
    };

    let fused_seconds = best(Box::new(|| solver.query_all(k).len()));

    let users = model.users();
    let items = model.items();
    let seed_scalar_seconds = best(Box::new(move || {
        // The seed serve loop: fresh score buffer per batch, scalar GEMM,
        // separate top-k scan.
        let mut served = 0usize;
        let mut start = 0usize;
        while start < users.rows() {
            let end = (start + batch).min(users.rows());
            let rows = end - start;
            let mut scores = vec![0.0f64; rows * n];
            gemm_nt_blocked_with(
                &scalar,
                users.row_block(start, end),
                items.into(),
                &mut scores,
                &blocks,
            );
            served += rows_topk(&scores, rows, n, k).len();
            start = end;
        }
        served
    }));

    FusionSample {
        fused_seconds,
        seed_scalar_seconds,
    }
}

/// One machine-readable bench row: a strategy served end to end on a
/// dataset stand-in at one `k`.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Dataset family (`"Netflix"`, `"KDD"`, `"R2"`, `"GloVe"`).
    pub dataset: String,
    /// Strategy display name.
    pub strategy: String,
    /// Numeric-path mode (`"f64"`, `"f32-rescore"`, `"auto"`) — part of the
    /// row's gate identity, so a precision mode cannot regress behind
    /// another mode's back.
    pub precision: String,
    /// Top-k size.
    pub k: usize,
    /// Index construction seconds (once per strategy, repeated per row).
    pub build_seconds: f64,
    /// Serve-all seconds at this `k`.
    pub serve_seconds: f64,
}

/// One fusion-speedup row for the JSON digest.
#[derive(Debug, Clone)]
pub struct FusionRecord {
    /// Dataset family.
    pub dataset: String,
    /// Top-k size.
    pub k: usize,
    /// The measurement.
    pub sample: FusionSample,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Run metadata stamped into every machine-readable bench digest, so
/// BENCH_* files are comparable across PRs: which bench produced it, at
/// what scale, under which kernel, from which commit, on how many cores.
#[derive(Debug, Clone)]
pub struct BenchMeta {
    /// The digest's name (`"BENCH_2"`, `"BENCH_3"`, …) — also the default
    /// output file stem, so benches never hardcode each other's paths.
    pub bench: String,
    /// The `MIPS_SCALE` the models were built at.
    pub scale: f64,
    /// Active SIMD kernel set name.
    pub kernel: String,
    /// `git rev-parse --short HEAD` at run time (`"unknown"` outside a
    /// checkout).
    pub git_sha: String,
    /// `std::thread::available_parallelism()` on the host.
    pub host_threads: usize,
}

impl BenchMeta {
    /// Collects the metadata for the named bench at the current scale.
    pub fn collect(bench: &str) -> BenchMeta {
        BenchMeta {
            bench: bench.to_string(),
            scale: scale(),
            kernel: kernel_name().to_string(),
            git_sha: git_short_sha(),
            host_threads: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }

    fn render_header(&self, out: &mut String) {
        out.push_str(&format!("  \"bench\": \"{}\",\n", json_escape(&self.bench)));
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!(
            "  \"kernel\": \"{}\",\n",
            json_escape(&self.kernel)
        ));
        out.push_str(&format!(
            "  \"git_sha\": \"{}\",\n",
            json_escape(&self.git_sha)
        ));
        out.push_str(&format!("  \"host_threads\": {},\n", self.host_threads));
    }
}

/// The short git sha of the working tree, `"unknown"` when unavailable.
pub fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders a figure-bench digest (the `BENCH_2.json` shape): run metadata,
/// the per-strategy/per-k end-to-end rows, and the fused-vs-seed BMM
/// speedups. Hand-rolled JSON keeps the harness dependency-free.
pub fn render_bench_json(
    meta: &BenchMeta,
    records: &[BenchRecord],
    fusion: &[FusionRecord],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    meta.render_header(&mut out);
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"strategy\": \"{}\", \"precision\": \"{}\", \"k\": {}, \
             \"build_seconds\": {:.6}, \"serve_seconds\": {:.6}, \"kernel\": \"{}\"}}{}\n",
            json_escape(&r.dataset),
            json_escape(&r.strategy),
            json_escape(&r.precision),
            r.k,
            r.build_seconds,
            r.serve_seconds,
            json_escape(&meta.kernel),
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"bmm_fusion_vs_seed_scalar\": [\n");
    for (i, f) in fusion.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"k\": {}, \"fused_seconds\": {:.6}, \
             \"seed_scalar_seconds\": {:.6}, \"speedup\": {:.3}}}{}\n",
            json_escape(&f.dataset),
            f.k,
            f.sample.fused_seconds,
            f.sample.seed_scalar_seconds,
            f.sample.speedup(),
            if i + 1 < fusion.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Where a digest bench writes its output: `MIPS_BENCH_OUT` if set, else
/// `<bench>.json` at the workspace root — the name is derived from the
/// bench's own [`BenchMeta`], never hardcoded (benches run with the package
/// as cwd, so the default is anchored to the manifest).
pub fn bench_out_path(meta: &BenchMeta) -> std::path::PathBuf {
    match std::env::var("MIPS_BENCH_OUT") {
        Ok(p) if !p.is_empty() => std::path::PathBuf::from(p),
        _ => std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("{}.json", meta.bench)),
    }
}

/// One serving-runtime measurement: a traffic workload pushed through a
/// [`mips_core::serve::MipsServer`] configuration.
#[derive(Debug, Clone)]
pub struct ServeRecord {
    /// Dataset family the model stands in for.
    pub dataset: String,
    /// Workload label (`"single-user"`, `"mixed"`, …).
    pub workload: String,
    /// Index scope label (`"global"`, `"per-shard"`, `"auto"`): the
    /// granularity of derived-state construction the server ran with.
    pub index_scope: String,
    /// Numeric-path mode the fronted engine ran with (`"f64"`,
    /// `"f32-rescore"`, `"auto"`); part of the row's gate identity.
    pub precision: String,
    /// Worker threads in the pool.
    pub workers: usize,
    /// User shards.
    pub shards: usize,
    /// Whether micro-batching was enabled.
    pub batching: bool,
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Deadline-flush window in microseconds (0 = adaptive only).
    pub batch_window_us: u64,
    /// Requests served.
    pub requests: u64,
    /// Model swaps the serving runtime picked up during the run (0 for
    /// steady-state workloads).
    pub swaps: u64,
    /// Mean sub-requests per solver call (1.0 = no coalescing happened).
    pub mean_batch: f64,
    /// Throughput in requests per second.
    pub requests_per_sec: f64,
    /// The gate metric: wall seconds per request (1 / throughput).
    pub seconds_per_request: f64,
    /// Median request latency in microseconds.
    pub p50_us: f64,
    /// 99th-percentile request latency in microseconds.
    pub p99_us: f64,
}

/// Renders the serving-runtime digest (the `BENCH_3.json` shape): run
/// metadata plus one row per (dataset, workload, server config).
///
/// Rows go through the same [`JsonWriter`] the serving runtime uses for
/// its `/metrics` endpoint — one serializer, one escaping policy, one
/// number format across the wire and the digests. The digest keeps its
/// one-row-object-per-line layout, which the regression gate's minimal
/// parser depends on.
pub fn render_serve_json(meta: &BenchMeta, records: &[ServeRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    meta.render_header(&mut out);
    out.push_str("  \"serve\": [\n");
    for (i, r) in records.iter().enumerate() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("dataset", &r.dataset);
        w.field_str("workload", &r.workload);
        w.field_str("index_scope", &r.index_scope);
        w.field_str("precision", &r.precision);
        w.field_u64("workers", r.workers as u64);
        w.field_u64("shards", r.shards as u64);
        w.field_bool("batching", r.batching);
        w.field_u64("max_batch", r.max_batch as u64);
        w.field_u64("batch_window_us", r.batch_window_us);
        w.field_u64("requests", r.requests);
        w.field_u64("swaps", r.swaps);
        w.field_f64("mean_batch", r.mean_batch, 2);
        w.field_f64("requests_per_sec", r.requests_per_sec, 2);
        w.field_f64("seconds_per_request", r.seconds_per_request, 8);
        w.field_f64("p50_us", r.p50_us, 1);
        w.field_f64("p99_us", r.p99_us, 1);
        w.end_obj();
        out.push_str("    ");
        out.push_str(&w.finish());
        out.push_str(if i + 1 < records.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// A minimal fixed-width table printer for bench output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "Table: column mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}", w = w))
                .collect();
            padded.join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with three significant digits.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 with fewer than two values).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Geometric mean (the paper's "average speedup" aggregation).
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_data::catalog::reference_models;

    #[test]
    fn scale_defaults_to_one() {
        // Cannot safely mutate the environment in tests; just check parsing
        // behaviour through the default path.
        assert!(scale() > 0.0);
    }

    #[test]
    fn maximus_config_scales_block_by_dataset() {
        let netflix = reference_models()
            .into_iter()
            .find(|s| s.dataset == "Netflix" && s.training == "DSGD" && s.f == 50)
            .unwrap();
        let kdd = reference_models()
            .into_iter()
            .find(|s| s.dataset == "KDD" && s.training == "REF")
            .unwrap();
        let nm = netflix.build(0.2);
        let km = kdd.build(0.2);
        let nb = maximus_config(&netflix, &nm).block_size;
        let kb = maximus_config(&kdd, &km).block_size;
        // Netflix's B is ~23% of its catalog, KDD's ~0.65%.
        assert!(nb as f64 / nm.num_items() as f64 > 0.15);
        assert!((kb as f64 / km.num_items() as f64) < 0.02);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(vec!["xxxx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    #[should_panic(expected = "column mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert!(
            (std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - (32.0f64 / 7.0).sqrt()).abs()
                < 1e-12
        );
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn engine_overhead_measures_both_paths() {
        use mips_data::synth::{synth_model, SynthConfig};
        let model = Arc::new(synth_model(&SynthConfig {
            num_users: 60,
            num_items: 80,
            num_factors: 8,
            ..SynthConfig::default()
        }));
        let sample = engine_overhead(&bmm_backend(), &model, 3, 3);
        assert!(sample.engine_seconds > 0.0 && sample.engine_seconds.is_finite());
        assert!(sample.direct_seconds > 0.0 && sample.direct_seconds.is_finite());
        assert!(sample.ratio() > 0.0);
    }

    #[test]
    fn end_to_end_uses_the_engine_and_stays_positive() {
        use mips_data::synth::{synth_model, SynthConfig};
        let model = Arc::new(synth_model(&SynthConfig {
            num_users: 30,
            num_items: 40,
            num_factors: 6,
            ..SynthConfig::default()
        }));
        let t = end_to_end_seconds(&bmm_backend(), &model, 2);
        assert!(t > 0.0 && t.is_finite());
    }

    #[test]
    fn fmt_secs_ranges() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(1.5), "1.50s");
        assert_eq!(fmt_secs(250.0), "250s");
    }
}
