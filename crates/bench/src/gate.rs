//! The CI performance-regression gate.
//!
//! Compares a freshly produced BENCH_* digest against a committed baseline
//! and fails when any row got slower beyond a tolerance. Two safeguards
//! make the comparison survive cross-machine noise (the baseline is
//! committed from one host, CI runs on another):
//!
//! * **Median normalization.** Every row's `current / baseline` ratio is
//!   divided by the median ratio across all rows. A uniformly faster or
//!   slower machine shifts the median, not the normalized ratios, so the
//!   gate reacts to *relative* regressions — one strategy falling behind
//!   the others — at the committed tolerance.
//! * **A hard cap on the median itself.** A catastrophic across-the-board
//!   regression moves the median, which normalization would otherwise hide;
//!   the gate also fails when the median ratio exceeds a (generous,
//!   machine-difference-absorbing) cap.
//!
//! The digests are this workspace's own hand-rolled JSON (one row object
//! per line), so the parser here is deliberately minimal — it understands
//! exactly that shape, keeping the gate dependency-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A scalar JSON value in a bench row.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonVal {
    /// A string field.
    Str(String),
    /// A numeric field.
    Num(f64),
    /// A boolean field.
    Bool(bool),
}

impl JsonVal {
    fn as_key_part(&self) -> Option<String> {
        match self {
            JsonVal::Str(s) => Some(s.clone()),
            JsonVal::Bool(b) => Some(b.to_string()),
            JsonVal::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => Some(format!("{}", *n as i64)),
            JsonVal::Num(_) => None,
        }
    }
}

/// Fields that are measurements, never identity — excluded from row keys by
/// name (a measurement that happens to land on an integral value, like
/// `1.000000` seconds, must not perturb the key).
pub const MEASUREMENT_FIELDS: [&str; 13] = [
    "serve_seconds",
    "build_seconds",
    "seconds_per_request",
    "requests_per_sec",
    "fused_seconds",
    "seed_scalar_seconds",
    "speedup",
    "p50_us",
    "p99_us",
    "mean_batch",
    "busy_seconds",
    "requests",
    "swaps",
];

/// One parsed bench row: field name → value, insertion-ordered by name.
pub type Row = BTreeMap<String, JsonVal>;

/// Parses every `{...}` row object out of a BENCH_* digest. Top-level
/// header fields (scale, kernel, …) are returned separately as a pseudo
/// row.
pub fn parse_digest(text: &str) -> (Row, Vec<Row>) {
    let mut header = Row::new();
    let mut rows = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim().trim_end_matches(',');
        if trimmed.starts_with('{') && trimmed.ends_with('}') && trimmed.len() > 2 {
            if let Some(row) = parse_object(trimmed) {
                rows.push(row);
            }
        } else if let Some(row) = parse_object(&format!("{{{trimmed}}}")) {
            // A `"key": value` header line parses as a one-field object.
            if row.len() == 1 {
                header.extend(row);
            }
        }
    }
    (header, rows)
}

/// Parses one `{"k": v, ...}` object with string/number/bool values.
fn parse_object(s: &str) -> Option<Row> {
    let mut row = Row::new();
    let bytes = s.as_bytes();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && (bytes[*i] as char).is_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if i >= bytes.len() || bytes[i] != b'{' {
        return None;
    }
    i += 1;
    loop {
        skip_ws(&mut i);
        if i < bytes.len() && bytes[i] == b'}' {
            return Some(row);
        }
        // Key.
        if i >= bytes.len() || bytes[i] != b'"' {
            return None;
        }
        i += 1;
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'"' {
            i += 1;
        }
        let key = s.get(key_start..i)?.to_string();
        i += 1; // closing quote
        skip_ws(&mut i);
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i += 1;
        skip_ws(&mut i);
        // Value.
        let value = if i < bytes.len() && bytes[i] == b'"' {
            i += 1;
            let val_start = i;
            while i < bytes.len() && bytes[i] != b'"' {
                if bytes[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            let raw = s.get(val_start..i)?;
            i += 1;
            JsonVal::Str(raw.replace("\\\"", "\"").replace("\\\\", "\\"))
        } else if s[i..].starts_with("true") {
            i += 4;
            JsonVal::Bool(true)
        } else if s[i..].starts_with("false") {
            i += 5;
            JsonVal::Bool(false)
        } else {
            let val_start = i;
            while i < bytes.len() && !matches!(bytes[i], b',' | b'}' | b']') {
                i += 1;
            }
            JsonVal::Num(s.get(val_start..i)?.trim().parse::<f64>().ok()?)
        };
        row.insert(key, value);
        skip_ws(&mut i);
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
    }
}

/// The lower-is-better metric of a row, if the row is gateable.
///
/// * `serve_seconds` (figure benches) and `seconds_per_request` (the serve
///   bench) gate directly.
/// * `speedup` rows (fused-vs-seed) gate inverted: a shrinking speedup is a
///   regression, and the ratio is machine-independent.
pub fn gate_metric(row: &Row) -> Option<(&'static str, f64)> {
    if let Some(JsonVal::Num(v)) = row.get("seconds_per_request") {
        return Some(("seconds_per_request", *v));
    }
    if let Some(JsonVal::Num(v)) = row.get("speedup") {
        return (*v > 0.0).then(|| ("1/speedup", 1.0 / *v));
    }
    if let Some(JsonVal::Num(v)) = row.get("serve_seconds") {
        return Some(("serve_seconds", *v));
    }
    None
}

/// The identity of a row: every string/bool/integer field, sorted by field
/// name — measurements excluded (by the [`MEASUREMENT_FIELDS`] denylist and
/// by numeric type for unknown float fields).
pub fn row_key(row: &Row) -> String {
    let mut parts: Vec<String> = Vec::new();
    for (name, value) in row {
        if MEASUREMENT_FIELDS.contains(&name.as_str()) {
            continue;
        }
        if let Some(part) = value.as_key_part() {
            parts.push(format!("{name}={part}"));
        }
    }
    parts.join(" ")
}

/// One row's comparison outcome.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// The row identity (see [`row_key`]).
    pub key: String,
    /// Which metric was gated.
    pub metric: &'static str,
    /// Baseline metric value.
    pub baseline: f64,
    /// Current metric value.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Ratio divided by the run's median ratio.
    pub normalized: f64,
    /// Whether the normalized ratio breached the tolerance.
    pub failed: bool,
}

/// The whole gate verdict.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-row outcomes, in baseline order.
    pub rows: Vec<GateRow>,
    /// Median `current / baseline` ratio (the machine-speed correction).
    pub median_ratio: f64,
    /// Rows present in current but not in baseline (informational).
    pub unmatched_current: usize,
    /// Rows present in baseline but missing from current (each a failure:
    /// a silently dropped measurement must not pass the gate).
    pub missing_in_current: Vec<String>,
    /// The per-row tolerance on the normalized ratio.
    pub tolerance: f64,
    /// The cap on the median ratio itself.
    pub median_cap: f64,
}

impl GateReport {
    /// `true` when nothing regressed.
    pub fn passed(&self) -> bool {
        self.missing_in_current.is_empty()
            && self.median_ratio <= self.median_cap
            && self.rows.iter().all(|r| !r.failed)
    }

    /// A human-readable comparison table (the CI artifact body).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "regression gate: tolerance {:.2}x (normalized), median cap {:.2}x",
            self.tolerance, self.median_cap
        );
        let _ = writeln!(
            out,
            "median current/baseline ratio: {:.3} ({} rows, {} current-only)",
            self.median_ratio,
            self.rows.len(),
            self.unmatched_current
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "  [{}] {}  {}: base {:.6} cur {:.6} ratio {:.3} norm {:.3}",
                if row.failed { "FAIL" } else { " ok " },
                row.key,
                row.metric,
                row.baseline,
                row.current,
                row.ratio,
                row.normalized,
            );
        }
        for key in &self.missing_in_current {
            let _ = writeln!(out, "  [FAIL] {key}  missing from current run");
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Compares two digests row by row. `tolerance` bounds each normalized
/// ratio; `median_cap` bounds the median raw ratio (see module docs).
pub fn compare(baseline: &str, current: &str, tolerance: f64, median_cap: f64) -> GateReport {
    let (_, base_rows) = parse_digest(baseline);
    let (_, cur_rows) = parse_digest(current);
    let mut current_by_key: BTreeMap<String, f64> = BTreeMap::new();
    for row in &cur_rows {
        if let Some((_, value)) = gate_metric(row) {
            current_by_key.insert(row_key(row), value);
        }
    }

    let mut pairs: Vec<(String, &'static str, f64, f64)> = Vec::new();
    let mut missing_in_current = Vec::new();
    let mut matched = 0usize;
    for row in &base_rows {
        if let Some((metric, base_value)) = gate_metric(row) {
            let key = row_key(row);
            match current_by_key.get(&key) {
                Some(&cur_value) => {
                    matched += 1;
                    pairs.push((key, metric, base_value, cur_value));
                }
                None => missing_in_current.push(key),
            }
        }
    }
    let unmatched_current = current_by_key.len() - matched;

    let mut ratios: Vec<f64> = pairs
        .iter()
        .map(
            |(_, _, base, cur)| {
                if *base > 0.0 {
                    cur / base
                } else {
                    1.0
                }
            },
        )
        .collect();
    let median_ratio = median(&mut ratios.clone());

    let rows: Vec<GateRow> = pairs
        .into_iter()
        .zip(ratios.drain(..))
        .map(|((key, metric, baseline, current), ratio)| {
            let normalized = if median_ratio > 0.0 {
                ratio / median_ratio
            } else {
                ratio
            };
            GateRow {
                key,
                metric,
                baseline,
                current,
                ratio,
                normalized,
                failed: normalized > tolerance,
            }
        })
        .collect();

    GateReport {
        rows,
        median_ratio,
        unmatched_current,
        missing_in_current,
        tolerance,
        median_cap,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.sort_by(|a, b| a.total_cmp(b));
    let mid = xs.len() / 2;
    if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        0.5 * (xs[mid - 1] + xs[mid])
    }
}

/// Artificially slows one gateable row of `digest` by `factor` — the gate's
/// self-test: a gate that cannot fail is not a gate, so CI perturbs a real
/// digest and asserts the comparison FAILs before trusting a PASS.
pub fn inject_slowdown(digest: &str, factor: f64) -> String {
    let mut injected = false;
    let mut out = String::new();
    for line in digest.lines() {
        let mut emitted = false;
        if !injected {
            let trimmed = line.trim().trim_end_matches(',');
            if trimmed.starts_with('{') {
                if let Some(row) = parse_object(trimmed) {
                    if let Some((metric, value)) = gate_metric(&row) {
                        // Rewrite only the metric field, preserving the rest
                        // of the line verbatim.
                        let field = match metric {
                            "1/speedup" => "speedup",
                            other => other,
                        };
                        let new_value = match metric {
                            "1/speedup" => value.recip() / factor,
                            _ => value * factor,
                        };
                        if let Some(start) = line.find(&format!("\"{field}\":")) {
                            // Replace the numeric span between the colon and
                            // the next delimiter.
                            let value_start = start + field.len() + 3;
                            if let Some(rel_end) = line[value_start..].find([',', '}']) {
                                let value_end = value_start + rel_end;
                                out.push_str(&line[..value_start]);
                                out.push_str(&format!(" {new_value:.6}"));
                                out.push_str(&line[value_end..]);
                                out.push('\n');
                                injected = true;
                                emitted = true;
                            }
                        }
                    }
                }
            }
        }
        if !emitted {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIGEST: &str = r#"{
  "bench": "BENCH_T",
  "scale": 1,
  "kernel": "avx2-fma",
  "git_sha": "abc123",
  "host_threads": 4,
  "results": [
    {"dataset": "Netflix", "strategy": "Blocked MM", "k": 1, "build_seconds": 0.000010, "serve_seconds": 0.100000, "kernel": "avx2-fma"},
    {"dataset": "Netflix", "strategy": "LEMP", "k": 1, "build_seconds": 0.200000, "serve_seconds": 0.400000, "kernel": "avx2-fma"},
    {"dataset": "KDD", "strategy": "Blocked MM", "k": 5, "build_seconds": 0.000010, "serve_seconds": 0.250000, "kernel": "avx2-fma"}
  ],
  "bmm_fusion_vs_seed_scalar": [
    {"dataset": "Netflix", "k": 1, "fused_seconds": 0.010000, "seed_scalar_seconds": 0.070000, "speedup": 7.000}
  ]
}
"#;

    #[test]
    fn parses_header_and_rows() {
        let (header, rows) = parse_digest(DIGEST);
        assert_eq!(header.get("bench"), Some(&JsonVal::Str("BENCH_T".into())));
        assert_eq!(header.get("host_threads"), Some(&JsonVal::Num(4.0)));
        assert_eq!(rows.len(), 4);
        assert_eq!(
            rows[0].get("serve_seconds"),
            Some(&JsonVal::Num(0.1)),
            "{rows:?}"
        );
        let key = row_key(&rows[0]);
        assert!(
            key.contains("dataset=Netflix") && key.contains("k=1"),
            "{key}"
        );
        assert!(
            !key.contains("serve_seconds"),
            "measurements excluded: {key}"
        );
    }

    #[test]
    fn identical_digests_pass() {
        let report = compare(DIGEST, DIGEST, 1.5, 6.0);
        assert_eq!(report.rows.len(), 4);
        assert!((report.median_ratio - 1.0).abs() < 1e-12);
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn uniform_machine_speed_difference_passes() {
        // The "current machine" is uniformly 2.5x slower: median
        // normalization absorbs it.
        let slower = DIGEST
            .lines()
            .map(|l| {
                let mut l = l.to_string();
                for field in ["serve_seconds", "fused_seconds", "seed_scalar_seconds"] {
                    if let Some(start) = l.find(&format!("\"{field}\": ")) {
                        let vs = start + field.len() + 4;
                        let end = vs + l[vs..].find([',', '}']).unwrap();
                        let v: f64 = l[vs..end].parse().unwrap();
                        l = format!("{}{:.6}{}", &l[..vs], v * 2.5, &l[end..]);
                    }
                }
                l
            })
            .collect::<Vec<_>>()
            .join("\n");
        let report = compare(DIGEST, &slower, 1.5, 6.0);
        assert!(report.passed(), "{}", report.render());
        assert!((report.median_ratio - 2.5).abs() < 0.01);
    }

    #[test]
    fn single_row_slowdown_fails_the_gate() {
        let slowed = inject_slowdown(DIGEST, 10.0);
        assert_ne!(slowed, DIGEST, "injection must change the digest");
        let report = compare(DIGEST, &slowed, 1.5, 6.0);
        assert!(!report.passed(), "{}", report.render());
        assert_eq!(report.rows.iter().filter(|r| r.failed).count(), 1);
    }

    #[test]
    fn across_the_board_catastrophe_trips_the_median_cap() {
        let slowed = DIGEST.replace("\"serve_seconds\": 0.", "\"serve_seconds\": 9.");
        let report = compare(DIGEST, &slowed, 1.5, 6.0);
        assert!(report.median_ratio > 6.0);
        assert!(!report.passed());
    }

    #[test]
    fn missing_rows_fail_instead_of_passing_silently() {
        let truncated: String = DIGEST
            .lines()
            .filter(|l| !l.contains("\"strategy\": \"LEMP\""))
            .collect::<Vec<_>>()
            .join("\n");
        let report = compare(DIGEST, &truncated, 1.5, 6.0);
        assert_eq!(report.missing_in_current.len(), 1);
        assert!(!report.passed());
        // The reverse direction (new rows in current) is fine.
        let report = compare(&truncated, DIGEST, 1.5, 6.0);
        assert!(report.passed());
        assert_eq!(report.unmatched_current, 1);
    }

    const SCOPE_DIGEST: &str = r#"{
  "bench": "BENCH_T3",
  "serve": [
    {"dataset": "GloVe", "workload": "per-shard-index", "index_scope": "global", "workers": 1, "shards": 4, "batching": true, "requests": 384, "swaps": 0, "mean_batch": 24.00, "requests_per_sec": 100000.0, "seconds_per_request": 0.00001000, "p50_us": 400.0, "p99_us": 900.0},
    {"dataset": "GloVe", "workload": "per-shard-index", "index_scope": "per-shard", "workers": 1, "shards": 4, "batching": true, "requests": 384, "swaps": 0, "mean_batch": 24.00, "requests_per_sec": 110000.0, "seconds_per_request": 0.00000909, "p50_us": 380.0, "p99_us": 800.0},
    {"dataset": "GloVe", "workload": "per-shard-index", "index_scope": "auto", "workers": 1, "shards": 4, "batching": true, "requests": 384, "swaps": 0, "mean_batch": 24.00, "requests_per_sec": 108000.0, "seconds_per_request": 0.00000926, "p50_us": 385.0, "p99_us": 820.0}
  ]
}
"#;

    #[test]
    fn index_scope_rows_key_separately_and_gate_individually() {
        // Three rows identical except for index_scope must be three
        // distinct identities...
        let (_, rows) = parse_digest(SCOPE_DIGEST);
        assert_eq!(rows.len(), 3);
        let keys: Vec<String> = rows.iter().map(row_key).collect();
        assert!(keys[0].contains("index_scope=global"), "{}", keys[0]);
        assert!(keys[1].contains("index_scope=per-shard"), "{}", keys[1]);
        assert!(keys[2].contains("index_scope=auto"), "{}", keys[2]);
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[1], keys[2]);
        // ...so a slowdown in one scope fails exactly that scope's row.
        let slowed = SCOPE_DIGEST.replace(
            "\"index_scope\": \"per-shard\", \"workers\": 1, \"shards\": 4, \"batching\": true, \"requests\": 384, \"swaps\": 0, \"mean_batch\": 24.00, \"requests_per_sec\": 110000.0, \"seconds_per_request\": 0.00000909",
            "\"index_scope\": \"per-shard\", \"workers\": 1, \"shards\": 4, \"batching\": true, \"requests\": 384, \"swaps\": 0, \"mean_batch\": 24.00, \"requests_per_sec\": 11000.0, \"seconds_per_request\": 0.00009090",
        );
        assert_ne!(slowed, SCOPE_DIGEST);
        let report = compare(SCOPE_DIGEST, &slowed, 1.5, 6.0);
        assert!(!report.passed(), "{}", report.render());
        let failed: Vec<&GateRow> = report.rows.iter().filter(|r| r.failed).collect();
        assert_eq!(failed.len(), 1);
        assert!(failed[0].key.contains("index_scope=per-shard"));
        // A missing scope row is a gate failure, not a silent pass.
        let truncated: String = SCOPE_DIGEST
            .lines()
            .filter(|l| !l.contains("\"index_scope\": \"auto\""))
            .collect::<Vec<_>>()
            .join("\n");
        let report = compare(SCOPE_DIGEST, &truncated, 1.5, 6.0);
        assert_eq!(report.missing_in_current.len(), 1);
        assert!(!report.passed());
        // And the self-test's slowdown injector can perturb scope rows.
        let injected = inject_slowdown(SCOPE_DIGEST, 10.0);
        assert_ne!(injected, SCOPE_DIGEST);
        assert!(!compare(SCOPE_DIGEST, &injected, 1.5, 6.0).passed());
    }

    const WIRE_DIGEST: &str = r#"{
  "bench": "BENCH_T3",
  "serve": [
    {"dataset": "Netflix", "workload": "single-user", "index_scope": "global", "workers": 1, "shards": 1, "batching": true, "max_batch": 32, "batch_window_us": 200, "requests": 96, "swaps": 0, "mean_batch": 32.00, "requests_per_sec": 250000.0, "seconds_per_request": 0.00000400, "p50_us": 180.0, "p99_us": 260.0},
    {"dataset": "Netflix", "workload": "loopback-http", "index_scope": "global", "workers": 1, "shards": 1, "batching": true, "max_batch": 32, "batch_window_us": 0, "requests": 96, "swaps": 0, "mean_batch": 4.00, "requests_per_sec": 85000.0, "seconds_per_request": 0.00001176, "p50_us": 200.0, "p99_us": 300.0}
  ]
}
"#;

    #[test]
    fn loopback_rows_key_separately_and_gate_individually() {
        // The wire row and the in-process row differ in workload (and
        // window) — distinct identities, gated independently.
        let (_, rows) = parse_digest(WIRE_DIGEST);
        assert_eq!(rows.len(), 2);
        let keys: Vec<String> = rows.iter().map(row_key).collect();
        assert!(keys[0].contains("workload=single-user"), "{}", keys[0]);
        assert!(keys[1].contains("workload=loopback-http"), "{}", keys[1]);
        assert_ne!(keys[0], keys[1]);
        // A slowdown confined to the wire path fails exactly the wire row:
        // the socket layer cannot regress behind the in-process rows'
        // backs.
        let slowed = WIRE_DIGEST.replace(
            "\"seconds_per_request\": 0.00001176",
            "\"seconds_per_request\": 0.00011760",
        );
        assert_ne!(slowed, WIRE_DIGEST);
        let report = compare(WIRE_DIGEST, &slowed, 1.5, 6.0);
        assert!(!report.passed(), "{}", report.render());
        let failed: Vec<&GateRow> = report.rows.iter().filter(|r| r.failed).collect();
        assert_eq!(failed.len(), 1);
        assert!(failed[0].key.contains("workload=loopback-http"));
        // A dropped wire row is a gate failure, not a silent pass.
        let truncated: String = WIRE_DIGEST
            .lines()
            .filter(|l| !l.contains("\"workload\": \"loopback-http\""))
            .collect::<Vec<_>>()
            .join("\n");
        let report = compare(WIRE_DIGEST, &truncated, 1.5, 6.0);
        assert_eq!(report.missing_in_current.len(), 1);
        assert!(!report.passed());
        // And the self-test's slowdown injector perturbs wire digests too.
        let injected = inject_slowdown(WIRE_DIGEST, 10.0);
        assert_ne!(injected, WIRE_DIGEST);
        assert!(!compare(WIRE_DIGEST, &injected, 1.5, 6.0).passed());
    }

    const PRECISION_DIGEST: &str = r#"{
  "bench": "BENCH_T",
  "results": [
    {"dataset": "Netflix", "strategy": "Blocked MM", "precision": "f64", "k": 1, "build_seconds": 0.000010, "serve_seconds": 0.100000, "kernel": "avx2-fma"},
    {"dataset": "Netflix", "strategy": "Blocked MM", "precision": "f32-rescore", "k": 1, "build_seconds": 0.000020, "serve_seconds": 0.060000, "kernel": "avx2-fma"},
    {"dataset": "Netflix", "strategy": "Blocked MM", "precision": "i8-rescore", "k": 1, "build_seconds": 0.000025, "serve_seconds": 0.040000, "kernel": "avx2-fma"},
    {"dataset": "Netflix", "strategy": "Blocked MM", "precision": "auto", "k": 1, "build_seconds": 0.000020, "serve_seconds": 0.061000, "kernel": "avx2-fma"}
  ],
  "serve": [
    {"dataset": "Netflix", "workload": "precision-sweep", "index_scope": "global", "precision": "f64", "workers": 1, "shards": 1, "batching": true, "max_batch": 32, "batch_window_us": 200, "requests": 96, "swaps": 0, "mean_batch": 32.00, "requests_per_sec": 250000.0, "seconds_per_request": 0.00000400, "p50_us": 180.0, "p99_us": 260.0},
    {"dataset": "Netflix", "workload": "precision-sweep", "index_scope": "global", "precision": "f32-rescore", "workers": 1, "shards": 1, "batching": true, "max_batch": 32, "batch_window_us": 200, "requests": 96, "swaps": 0, "mean_batch": 32.00, "requests_per_sec": 330000.0, "seconds_per_request": 0.00000303, "p50_us": 150.0, "p99_us": 220.0},
    {"dataset": "Netflix", "workload": "precision-sweep", "index_scope": "global", "precision": "i8-rescore", "workers": 1, "shards": 1, "batching": true, "max_batch": 32, "batch_window_us": 200, "requests": 96, "swaps": 0, "mean_batch": 32.00, "requests_per_sec": 440000.0, "seconds_per_request": 0.00000227, "p50_us": 120.0, "p99_us": 180.0}
  ]
}
"#;

    #[test]
    fn precision_rows_key_separately_and_gate_individually() {
        // Rows identical except for precision must be distinct identities,
        // in both the figure digest and the serve digest.
        let (_, rows) = parse_digest(PRECISION_DIGEST);
        assert_eq!(rows.len(), 7);
        let keys: Vec<String> = rows.iter().map(row_key).collect();
        assert!(keys[0].contains("precision=f64"), "{}", keys[0]);
        assert!(keys[1].contains("precision=f32-rescore"), "{}", keys[1]);
        assert!(keys[2].contains("precision=i8-rescore"), "{}", keys[2]);
        assert!(keys[3].contains("precision=auto"), "{}", keys[3]);
        assert_eq!(
            keys.iter().collect::<std::collections::BTreeSet<_>>().len(),
            7
        );
        // A slowdown confined to the f32 screen fails exactly that row:
        // the mixed-precision path cannot regress behind the f64 rows'
        // backs (nor vice versa).
        let slowed = PRECISION_DIGEST.replace(
            "\"precision\": \"f32-rescore\", \"k\": 1, \"build_seconds\": 0.000020, \"serve_seconds\": 0.060000",
            "\"precision\": \"f32-rescore\", \"k\": 1, \"build_seconds\": 0.000020, \"serve_seconds\": 0.600000",
        );
        assert_ne!(slowed, PRECISION_DIGEST);
        let report = compare(PRECISION_DIGEST, &slowed, 1.5, 6.0);
        assert!(!report.passed(), "{}", report.render());
        let failed: Vec<&GateRow> = report.rows.iter().filter(|r| r.failed).collect();
        assert_eq!(failed.len(), 1);
        assert!(failed[0].key.contains("precision=f32-rescore"));
        assert!(failed[0].key.contains("strategy=Blocked MM"));
        // Same isolation for the int8 tier: only its own row fails.
        let slowed_i8 = PRECISION_DIGEST.replace(
            "\"precision\": \"i8-rescore\", \"k\": 1, \"build_seconds\": 0.000025, \"serve_seconds\": 0.040000",
            "\"precision\": \"i8-rescore\", \"k\": 1, \"build_seconds\": 0.000025, \"serve_seconds\": 0.400000",
        );
        assert_ne!(slowed_i8, PRECISION_DIGEST);
        let report = compare(PRECISION_DIGEST, &slowed_i8, 1.5, 6.0);
        assert!(!report.passed(), "{}", report.render());
        let failed: Vec<&GateRow> = report.rows.iter().filter(|r| r.failed).collect();
        assert_eq!(failed.len(), 1);
        assert!(failed[0].key.contains("precision=i8-rescore"));
        // A dropped precision row is a gate failure, not a silent pass.
        let truncated: String = PRECISION_DIGEST
            .lines()
            .filter(|l| !l.contains("\"precision\": \"auto\""))
            .collect::<Vec<_>>()
            .join("\n");
        let report = compare(PRECISION_DIGEST, &truncated, 1.5, 6.0);
        assert_eq!(report.missing_in_current.len(), 1);
        assert!(!report.passed());
        // And the self-test's slowdown injector perturbs precision digests.
        let injected = inject_slowdown(PRECISION_DIGEST, 10.0);
        assert_ne!(injected, PRECISION_DIGEST);
        assert!(!compare(PRECISION_DIGEST, &injected, 1.5, 6.0).passed());
    }

    const SPARSE_DIGEST: &str = r#"{
  "bench": "BENCH_T",
  "results": [
    {"dataset": "SparseSynth", "strategy": "Blocked MM", "precision": "f64", "k": 1, "build_seconds": 0.000010, "serve_seconds": 0.500000, "kernel": "avx2-fma"},
    {"dataset": "SparseSynth", "strategy": "Sparse-II", "precision": "f64", "k": 1, "build_seconds": 0.004000, "serve_seconds": 0.020000, "kernel": "avx2-fma"},
    {"dataset": "SparseSynth", "strategy": "Sparse-II", "precision": "f64", "k": 50, "build_seconds": 0.004000, "serve_seconds": 0.030000, "kernel": "avx2-fma"},
    {"dataset": "Netflix", "strategy": "Blocked MM", "precision": "f64", "k": 1, "build_seconds": 0.000010, "serve_seconds": 0.100000, "kernel": "avx2-fma"}
  ]
}
"#;

    #[test]
    fn sparse_rows_key_separately_and_gate_individually() {
        // The SparseSynth rows are ordinary gate rows: distinct identities
        // per (dataset, strategy, k), so the inverted index cannot regress
        // behind the dense rows' back.
        let (_, rows) = parse_digest(SPARSE_DIGEST);
        assert_eq!(rows.len(), 4);
        let keys: Vec<String> = rows.iter().map(row_key).collect();
        assert!(keys[0].contains("dataset=SparseSynth"), "{}", keys[0]);
        assert!(keys[1].contains("strategy=Sparse-II"), "{}", keys[1]);
        assert_eq!(
            keys.iter().collect::<std::collections::BTreeSet<_>>().len(),
            4
        );
        // A slowdown confined to the sparse backend fails exactly that row.
        let slowed = SPARSE_DIGEST.replace(
            "\"strategy\": \"Sparse-II\", \"precision\": \"f64\", \"k\": 1, \"build_seconds\": 0.004000, \"serve_seconds\": 0.020000",
            "\"strategy\": \"Sparse-II\", \"precision\": \"f64\", \"k\": 1, \"build_seconds\": 0.004000, \"serve_seconds\": 0.200000",
        );
        assert_ne!(slowed, SPARSE_DIGEST);
        let report = compare(SPARSE_DIGEST, &slowed, 1.5, 6.0);
        assert!(!report.passed(), "{}", report.render());
        let failed: Vec<&GateRow> = report.rows.iter().filter(|r| r.failed).collect();
        assert_eq!(failed.len(), 1);
        assert!(failed[0].key.contains("strategy=Sparse-II"));
        assert!(failed[0].key.contains("k=1"));
        // A dropped sparse row is a gate failure, not a silent pass.
        let truncated: String = SPARSE_DIGEST
            .lines()
            .filter(|l| !l.contains("\"k\": 50"))
            .collect::<Vec<_>>()
            .join("\n");
        let report = compare(SPARSE_DIGEST, &truncated, 1.5, 6.0);
        assert_eq!(report.missing_in_current.len(), 1);
        assert!(!report.passed());
        // And the self-test's slowdown injector perturbs sparse digests.
        let injected = inject_slowdown(SPARSE_DIGEST, 10.0);
        assert_ne!(injected, SPARSE_DIGEST);
        assert!(!compare(SPARSE_DIGEST, &injected, 1.5, 6.0).passed());
    }

    #[test]
    fn speedup_rows_gate_inverted() {
        // Fusion speedup collapsing from 7x to 2x is a regression even
        // though no absolute time moved.
        let collapsed = DIGEST.replace("\"speedup\": 7.000", "\"speedup\": 2.000");
        let report = compare(DIGEST, &collapsed, 1.5, 6.0);
        assert!(!report.passed(), "{}", report.render());
    }
}
