//! CI performance-regression gate over BENCH_* digests.
//!
//! ```sh
//! # Compare a fresh digest against the committed baseline:
//! cargo run -p mips-bench --bin bench_gate -- ci/bench_baseline_2.json bench_smoke.json
//!
//! # Prove the gate can fail (CI runs this before trusting a PASS):
//! cargo run -p mips-bench --bin bench_gate -- --self-test ci/bench_baseline_2.json
//! ```
//!
//! Options: `--tolerance <x>` (default 1.5) bounds each row's normalized
//! current/baseline ratio; `--median-cap <x>` (default 6.0) bounds the
//! median raw ratio (machine-speed correction ceiling); `--out <path>`
//! writes the comparison table (the CI artifact) as well as printing it.
//! Exit code 0 = gate passed, 1 = regression (or self-test did not trip).

use mips_bench::gate::{compare, inject_slowdown};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bench_gate [--tolerance X] [--median-cap X] [--out PATH] BASELINE CURRENT\n\
                bench_gate --self-test BASELINE"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut tolerance = 1.5f64;
    let mut median_cap = 6.0f64;
    let mut out_path: Option<String> = None;
    let mut self_test = false;
    let mut files: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--median-cap" => {
                median_cap = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            "--self-test" => self_test = true,
            _ if arg.starts_with("--") => usage(),
            _ => files.push(arg),
        }
    }

    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };

    if self_test {
        // A gate that cannot fail is not a gate: slow one row of the
        // baseline by 10x and require the comparison to FAIL.
        if files.len() != 1 {
            usage();
        }
        let baseline = read(&files[0]);
        let slowed = inject_slowdown(&baseline, 10.0);
        if slowed == baseline {
            eprintln!("bench_gate self-test: found no gateable row to perturb");
            return ExitCode::FAILURE;
        }
        let report = compare(&baseline, &slowed, tolerance, median_cap);
        print!("{}", report.render());
        if report.passed() {
            eprintln!("bench_gate self-test: artificial 10x slowdown was NOT caught");
            return ExitCode::FAILURE;
        }
        println!("bench_gate self-test: artificial slowdown correctly caught");
        return ExitCode::SUCCESS;
    }

    if files.len() != 2 {
        usage();
    }
    let report = compare(&read(&files[0]), &read(&files[1]), tolerance, median_cap);
    let rendered = report.render();
    print!("{rendered}");
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("bench_gate: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
