//! Table I: the evaluation datasets.
//!
//! Prints the paper's dataset statistics next to the scaled synthetic
//! stand-ins this reproduction benchmarks, including the distributional
//! properties (item-norm skew) that drive solver choice.

use mips_bench::{build_model, scale, Table};
use mips_data::catalog::reference_models;
use mips_data::DatasetStats;

fn main() {
    println!(
        "== Table I: datasets (stand-ins generated at scale {}) ==\n",
        scale()
    );
    let mut table = Table::new(&[
        "dataset",
        "paper users",
        "paper items",
        "ours users",
        "ours items",
        "item-norm p99/p50",
        "mean item norm",
    ]);
    for dataset in ["Netflix", "KDD", "R2", "GloVe"] {
        // One representative spec per dataset family.
        let spec = reference_models()
            .into_iter()
            .find(|s| s.dataset == dataset)
            .expect("family present");
        let model = build_model(&spec);
        let stats = DatasetStats::compute(&model);
        let (paper_users, paper_items) = spec.paper_shape();
        table.row(vec![
            dataset.to_string(),
            paper_users.to_string(),
            paper_items.to_string(),
            stats.num_users.to_string(),
            stats.num_items.to_string(),
            format!("{:.2}", stats.item_norm_p99_over_p50),
            format!("{:.2}", stats.mean_item_norm),
        ]);
    }
    table.print();
    println!("\npaper ratings counts (not materialized here; solvers consume factor matrices):");
    println!("  Netflix 100,480,507 | KDD 252,810,175 | R2 699,640,226 | GloVe: n/a");
}
