//! Table II: effectiveness of the online optimizer.
//!
//! For each optimizer pairing (BMM + one index, plus the three-way
//! BMM + LEMP + MAXIMUS) over every model/K combination:
//!
//! * **accuracy** — how often OPTIMUS picks the truly fastest strategy,
//! * **overhead** — OPTIMUS's total time over the best strategy's full
//!   runtime, minus one,
//! * **speedups vs the LEMP-only baseline** — for the index alone, for
//!   OPTIMUS (overhead included), and for a zero-overhead oracle.
//!
//! The paper reports 84.8–97.8 % accuracy, 4.3–9.1 % average overhead, and
//! OPTIMUS within ~12 % of the oracle.

use mips_bench::{build_model, figure5_backends, mean, std_dev, BenchBackend, Table, PAPER_KS};
use mips_core::engine::SolverFactory;
use mips_core::optimus::{Optimus, OptimusConfig};
use mips_data::catalog::reference_models;
use std::sync::Arc;
use std::time::Instant;

/// Full measured end-to-end times for the five Fig. 5 backends, in the
/// order BMM, Maximus, LEMP, FEXIPRO-SIR, FEXIPRO-SI.
fn measure_all(model: &Arc<mips_data::MfModel>, backends: &[BenchBackend], k: usize) -> Vec<f64> {
    backends
        .iter()
        .map(|b| {
            let solver = b.factory.build(model).expect("bench index builds");
            let t0 = Instant::now();
            let r = solver.query_all(k);
            assert_eq!(r.len(), model.num_users());
            solver.build_seconds() + t0.elapsed().as_secs_f64()
        })
        .collect()
}

struct PairingAccumulator {
    label: &'static str,
    correct: usize,
    total: usize,
    overheads: Vec<f64>,
    index_only_speedup: Vec<f64>,
    optimus_speedup: Vec<f64>,
    oracle_speedup: Vec<f64>,
}

fn main() {
    println!("== Table II: optimizer effectiveness on the reference models ==\n");
    // Candidate index sets per pairing; indexes refer to positions in the
    // Fig. 5 strategy vector: 1 = Maximus, 2 = LEMP, 3 = SIR, 4 = SI.
    let pairings: Vec<(&'static str, Vec<usize>)> = vec![
        ("BMM + LEMP", vec![2]),
        ("BMM + FEXIPRO-SI", vec![4]),
        ("BMM + FEXIPRO-SIR", vec![3]),
        ("BMM + MAXIMUS", vec![1]),
        ("BMM + LEMP + MAXIMUS", vec![2, 1]),
    ];
    let mut accs: Vec<PairingAccumulator> = pairings
        .iter()
        .map(|(label, _)| PairingAccumulator {
            label,
            correct: 0,
            total: 0,
            overheads: Vec::new(),
            index_only_speedup: Vec::new(),
            optimus_speedup: Vec::new(),
            oracle_speedup: Vec::new(),
        })
        .collect();

    for spec in reference_models() {
        let model = build_model(&spec);
        let backends = figure5_backends(&spec, &model);
        for k in PAPER_KS {
            let times = measure_all(&model, &backends, k);
            let lemp_baseline = times[2];
            for (p, (_, index_ids)) in pairings.iter().enumerate() {
                let candidates: Vec<Arc<dyn SolverFactory>> = index_ids
                    .iter()
                    .map(|&i| Arc::clone(&backends[i].factory))
                    .collect();
                // True best among BMM + these indexes.
                let candidate_times: Vec<f64> = std::iter::once(times[0])
                    .chain(index_ids.iter().map(|&i| times[i]))
                    .collect();
                let best_time = candidate_times
                    .iter()
                    .cloned()
                    .fold(f64::INFINITY, f64::min);
                let best_name = if best_time == times[0] {
                    "Blocked MM".to_string()
                } else {
                    let pos = index_ids
                        .iter()
                        .position(|&i| times[i] == best_time)
                        .expect("best among candidates");
                    backends[index_ids[pos]].name.to_string()
                };

                // Scaled-down analogue of the paper's 0.5% sample: the
                // L2-occupancy floor assumes ≥480k users and would swallow
                // 13-30% of our miniature user sets, so the bench shrinks
                // the floor along with everything else (see EXPERIMENTS.md).
                let optimus = Optimus::new(OptimusConfig {
                    sample_fraction: 0.01,
                    cache: mips_linalg::CacheConfig {
                        l1_bytes: 1024,
                        l2_bytes: 2048,
                        l3_bytes: 4096,
                    },
                    ..OptimusConfig::default()
                });
                let t0 = Instant::now();
                let outcome = optimus.run(&model, k, &candidates);
                let optimus_total = t0.elapsed().as_secs_f64();

                let acc = &mut accs[p];
                acc.total += 1;
                if outcome.chosen == best_name {
                    acc.correct += 1;
                }
                acc.overheads
                    .push((optimus_total / best_time - 1.0).max(0.0));
                // "Index only": always use this pairing's (first) index.
                acc.index_only_speedup
                    .push(lemp_baseline / times[index_ids[0]]);
                acc.optimus_speedup.push(lemp_baseline / optimus_total);
                acc.oracle_speedup.push(lemp_baseline / best_time);
            }
        }
    }

    let mut table = Table::new(&[
        "Optimizer Choices",
        "Accuracy",
        "Avg Overhead",
        "Std Dev Overhead",
        "Index Only",
        "OPTIMUS (w/ overhead)",
        "Oracle (no overhead)",
    ]);
    for acc in &accs {
        table.row(vec![
            acc.label.to_string(),
            format!("{:.1}%", acc.correct as f64 / acc.total as f64 * 100.0),
            format!("{:.1}%", mean(&acc.overheads) * 100.0),
            format!("{:.1}%", std_dev(&acc.overheads) * 100.0),
            if acc.label.contains("LEMP + MAXIMUS") {
                "-".to_string()
            } else {
                format!("{:.2}x", mean(&acc.index_only_speedup))
            },
            format!("{:.2}x", mean(&acc.optimus_speedup)),
            format!("{:.2}x", mean(&acc.oracle_speedup)),
        ]);
    }
    table.print();
    println!(
        "\npaper row for comparison (BMM + MAXIMUS): 93.5% accuracy, 5.5% overhead, \
         1.78x index-only, 3.15x OPTIMUS, 3.43x oracle (all vs the LEMP-only baseline)."
    );
}
