//! Ablation: MAXIMUS parameter robustness (§III-D).
//!
//! The paper claims MAXIMUS's runtime is robust across the blocking factor
//! `B`, the cluster count `|C|`, and the k-means iteration budget `i`, and
//! settles on `B = 4096, |C| = 8, i = 3`. We sweep each parameter around the
//! (scaled) defaults on one index-friendly and one BMM-friendly model.

use mips_bench::{build_model, fmt_secs, maximus_config, time_seconds, Table};
use mips_core::maximus::{MaximusConfig, MaximusIndex};
use mips_core::solver::MipsSolver;
use mips_data::catalog::find;
use std::sync::Arc;

fn run(model: &Arc<mips_data::MfModel>, cfg: &MaximusConfig) -> (f64, f64) {
    let index = MaximusIndex::build(Arc::clone(model), cfg);
    let (serve, _) = time_seconds(|| index.query_all(1));
    (
        index.build_seconds() + serve,
        index.query_stats().avg_items_visited(),
    )
}

fn main() {
    println!("== Ablation: MAXIMUS parameters (K = 1) ==\n");
    for (dataset, training) in [("R2", "NOMAD"), ("Netflix", "DSGD")] {
        let spec = find(dataset, training, 50).expect("catalog model");
        let model = build_model(&spec);
        let base = maximus_config(&spec, &model);
        println!(
            "{} (scaled defaults: B = {}, |C| = {}, i = {})",
            model.name(),
            base.block_size,
            base.num_clusters,
            base.kmeans_iters
        );

        let mut table = Table::new(&["parameter", "value", "end-to-end", "w̄"]);
        for b in [16usize, 64, 256, 1024, 4096] {
            let (t, w) = run(
                &model,
                &MaximusConfig {
                    block_size: b,
                    ..base
                },
            );
            table.row(vec![
                "B".into(),
                b.to_string(),
                fmt_secs(t),
                format!("{w:.0}"),
            ]);
        }
        for c in [1usize, 2, 4, 8, 16, 32] {
            let (t, w) = run(
                &model,
                &MaximusConfig {
                    num_clusters: c,
                    ..base
                },
            );
            table.row(vec![
                "|C|".into(),
                c.to_string(),
                fmt_secs(t),
                format!("{w:.0}"),
            ]);
        }
        for i in [1usize, 3, 10] {
            let (t, w) = run(
                &model,
                &MaximusConfig {
                    kmeans_iters: i,
                    ..base
                },
            );
            table.row(vec![
                "i".into(),
                i.to_string(),
                fmt_secs(t),
                format!("{w:.0}"),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "paper shape: runtime varies mildly across |C| and i; oversized B degrades \
         toward brute force on index-friendly models (wasted shared work)."
    );
}
