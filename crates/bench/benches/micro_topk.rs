//! Micro-benchmark: heap-based top-k selection.
//!
//! The BMM pipeline's second stage (§II-B): select top-K per score row with
//! a bounded min-heap. The paper notes this stage is data-dependent and
//! non-negligible (≥ 9.5 % of runtime on their largest models), which is why
//! OPTIMUS measures it online instead of modelling it analytically.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mips_topk::row_topk;

fn scores(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 10.0
        })
        .collect()
}

fn bench_row_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("row_topk");
    let row = scores(100_000, 7);
    group.throughput(Throughput::Elements(row.len() as u64));
    for k in [1usize, 10, 50, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, &k| {
            bench.iter(|| row_topk(&row, k))
        });
    }
    group.finish();

    // Sorted-ascending input is the heap's worst case: every element beats
    // the threshold and forces a push.
    let mut worst = row.clone();
    worst.sort_by(|a, b| a.total_cmp(b));
    let mut group = c.benchmark_group("row_topk_adversarial");
    group.throughput(Throughput::Elements(worst.len() as u64));
    group.bench_function("ascending_k10", |bench| bench.iter(|| row_topk(&worst, 10)));
    group.finish();
}

criterion_group!(benches, bench_row_topk);
criterion_main!(benches);
