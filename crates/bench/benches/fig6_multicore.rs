//! Figure 6: multi-core scaling of K = 1 serving.
//!
//! Blocked MM, MAXIMUS and LEMP are all read-only after construction, so the
//! paper parallelizes them by partitioning users across cores and observes
//! near-linear speedups from 1 to 16 cores. We sweep the same thread counts;
//! speedups saturate at the host's physical core count (printed), which on
//! the paper's 16-core Xeon they did not reach.

use mips_bench::{bmm_backend, build_model, maximus_config, time_seconds, BenchBackend, Table};
use mips_core::engine::{EngineBuilder, LempFactory, MaximusFactory, QueryRequest};
use mips_data::catalog::find;
use mips_lemp::LempConfig;
use std::sync::Arc;

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("== Figure 6: multi-core scaling, K = 1 (host has {cores} cores) ==\n");
    let spec = find("Netflix", "DSGD", 50).expect("catalog model");
    let model = build_model(&spec);
    let backends = [
        bmm_backend(),
        BenchBackend {
            name: "Maximus",
            key: "maximus",
            factory: Arc::new(MaximusFactory::new(maximus_config(&spec, &model))),
        },
        BenchBackend {
            name: "LEMP",
            key: "lemp",
            factory: Arc::new(LempFactory::new(LempConfig::default())),
        },
    ];

    let mut table = Table::new(&["threads", "Blocked MM", "Maximus", "LEMP"]);
    let mut base = [0.0f64; 3];
    for &threads in &[1usize, 2, 4, 8, 16] {
        let mut cells = vec![threads.to_string()];
        for (i, backend) in backends.iter().enumerate() {
            // Threading is an engine option: the same request fans out over
            // `threads` workers inside the facade.
            let engine = EngineBuilder::new()
                .model(Arc::clone(&model))
                .register_arc(Arc::clone(&backend.factory))
                .threads(threads)
                .build()
                .expect("bench engine assembles");
            let request = QueryRequest::top_k(1);
            let _ = engine.solver(backend.key).expect("pre-build the index");
            // Median of three runs: thread spawn noise is visible at these
            // sub-second scales.
            let mut runs: Vec<f64> = (0..3)
                .map(|_| {
                    time_seconds(|| {
                        engine
                            .execute_with(backend.key, &request)
                            .expect("valid bench request")
                    })
                    .0
                })
                .collect();
            runs.sort_by(|a, b| a.total_cmp(b));
            let t = runs[1];
            if threads == 1 {
                base[i] = t;
            }
            cells.push(format!("{:.1}ms ({:.2}x)", t * 1e3, base[i] / t));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\npaper shape: near-linear speedup for all three up to the machine's core count \
         (expect saturation beyond {cores} threads here)."
    );
}
