//! Figure 8: MAXIMUS stage breakdown and the item-blocking lesion study.
//!
//! For Netflix-NOMAD f=50 and R2-NOMAD f=50 at K=1, break MAXIMUS's
//! wall-clock into the paper's four stages — clustering, index construction,
//! cost estimation (the OPTIMUS sampling step), and index traversal — with
//! item blocking disabled and enabled. The paper measures blocking speeding
//! traversal up by 2.4× (Netflix) and 1.4× (R2), with the first three
//! stages a small fraction of the total.

use mips_bench::{build_model, fmt_secs, maximus_config, time_seconds, Table};
use mips_core::engine::{MaximusFactory, SolverFactory};
use mips_core::maximus::{MaximusConfig, MaximusIndex};
use mips_core::optimus::{Optimus, OptimusConfig};
use mips_core::solver::MipsSolver;
use mips_data::catalog::find;
use std::sync::Arc;

fn main() {
    println!("== Figure 8: MAXIMUS runtime breakdown, K = 1 ==\n");
    let mut table = Table::new(&[
        "configuration",
        "clustering",
        "construction",
        "cost estimation",
        "traversal",
        "w̄",
    ]);
    let mut lesion: Vec<(String, f64, f64)> = Vec::new();
    for (dataset, training) in [("Netflix", "NOMAD"), ("R2", "NOMAD")] {
        let spec = find(dataset, training, 50).expect("catalog model");
        let model = build_model(&spec);
        let base_cfg = maximus_config(&spec, &model);
        let mut traversal_by_blocking = [0.0f64; 2];
        for (slot, blocking) in [(0usize, false), (1usize, true)] {
            let cfg = MaximusConfig {
                item_blocking: blocking,
                ..base_cfg
            };
            let index = MaximusIndex::build(Arc::clone(&model), &cfg);
            let build = index.build_stats();

            // Cost estimation: OPTIMUS's sampling phase for this index.
            let optimus = Optimus::new(OptimusConfig::default());
            let candidates: [Arc<dyn SolverFactory>; 1] = [Arc::new(MaximusFactory::new(cfg))];
            let (estimation, _) = time_seconds(|| optimus.estimate_only(&model, 1, &candidates));

            let (traversal, _) = time_seconds(|| index.query_all(1));
            traversal_by_blocking[slot] = traversal;
            table.row(vec![
                format!(
                    "{} ({} item blocking)",
                    model.name(),
                    if blocking { "with" } else { "w/o" }
                ),
                fmt_secs(build.clustering_seconds),
                fmt_secs(build.construction_seconds),
                fmt_secs(estimation),
                fmt_secs(traversal),
                format!("{:.0}", index.query_stats().avg_items_visited()),
            ]);
        }
        lesion.push((
            model.name().to_string(),
            traversal_by_blocking[0],
            traversal_by_blocking[1],
        ));
    }
    table.print();

    println!("\n-- item blocking lesion --");
    for (name, without, with) in lesion {
        println!(
            "{name}: traversal {} -> {} ({:.2}x)   (paper: 2.4x Netflix, 1.4x R2)",
            fmt_secs(without),
            fmt_secs(with),
            without / with
        );
    }
    println!(
        "\npaper shape: clustering + construction + estimation are a small share of \
         end-to-end time (1.8% average overhead)."
    );
}
