//! Machine-readable perf digest: writes `<bench>.json` (BENCH_2) at the
//! workspace root so future PRs have a trajectory to diff against; the
//! header records scale, kernel, git sha, and host threads so digests are
//! comparable across PRs and machines.
//!
//! Two sections:
//!
//! * `results` — end-to-end serve seconds for every Fig. 5 strategy at every
//!   paper `k`, per Table I dataset stand-in, with the active SIMD kernel
//!   name on every row.
//! * `bmm_fusion_vs_seed_scalar` — the ISSUE-2 acceptance measurement: the
//!   fused SIMD BMM path against a faithful replay of the seed pipeline
//!   (fresh `batch × n` score buffer, scalar micro-kernels, separate top-k
//!   pass), per dataset and `k`, with the speedup ratio.
//!
//! `MIPS_SCALE` scales the models (CI smoke uses 0.05); `MIPS_BENCH_OUT`
//! overrides the output path.

use mips_bench::{
    bench_out_path, bmm_fusion_sample, build_model, figure5_strategies, fmt_secs,
    render_bench_json, scale, single_backend_engine, BenchMeta, BenchRecord, FusionRecord, Table,
    PAPER_KS,
};
use mips_core::engine::QueryRequest;
use mips_data::catalog::reference_models;

fn main() {
    let meta = BenchMeta::collect("BENCH_2");
    println!(
        "== {}.json digest (scale {}, kernel {}, sha {}, {} host threads) ==\n",
        meta.bench, meta.scale, meta.kernel, meta.git_sha, meta.host_threads
    );

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut fusion: Vec<FusionRecord> = Vec::new();
    let mut table = Table::new(&["dataset", "strategy", "k", "serve", "note"]);

    for dataset in ["Netflix", "KDD", "R2", "GloVe"] {
        let spec = reference_models()
            .into_iter()
            .find(|s| s.dataset == dataset)
            .expect("family present");
        let model = build_model(&spec);
        // At tiny MIPS_SCALE a stand-in can hold fewer items than the
        // largest paper k; skip those rows rather than crash the smoke run.
        let ks: Vec<usize> = PAPER_KS
            .iter()
            .copied()
            .filter(|&k| k <= model.num_items())
            .collect();

        // End-to-end rows: build each strategy once, serve at every k.
        for strategy in figure5_strategies(&spec, &model) {
            let engine = single_backend_engine(&strategy, &model);
            let build_seconds = engine
                .solver(strategy.key())
                .expect("solver builds")
                .build_seconds();
            for &k in &ks {
                // Adaptive best-of: sub-millisecond rows (tiny CI scale)
                // repeat up to 9 times inside a 0.25s budget so the digest
                // is stable enough for the 1.5x regression gate; seconds-
                // scale rows (full scale) run once.
                let mut serve_seconds = f64::INFINITY;
                let mut spent = 0.0;
                let mut runs = 0;
                while runs == 0 || (runs < 9 && spent < 0.25) {
                    let response = engine
                        .execute_with(strategy.key(), &QueryRequest::top_k(k))
                        .expect("valid bench request");
                    assert_eq!(response.results.len(), model.num_users());
                    serve_seconds = serve_seconds.min(response.serve_seconds);
                    spent += response.serve_seconds;
                    runs += 1;
                }
                table.row(vec![
                    dataset.to_string(),
                    strategy.name().to_string(),
                    k.to_string(),
                    fmt_secs(serve_seconds),
                    String::new(),
                ]);
                records.push(BenchRecord {
                    dataset: dataset.to_string(),
                    strategy: strategy.name().to_string(),
                    k,
                    build_seconds,
                    serve_seconds,
                });
            }
        }

        // Fusion acceptance rows: fused SIMD vs seed scalar; more repeats
        // at tiny scale where a single pass is noise-dominated.
        let fusion_runs = if scale() < 0.5 { 4 } else { 2 };
        for &k in &ks {
            let sample = bmm_fusion_sample(&model, k, fusion_runs);
            table.row(vec![
                dataset.to_string(),
                "BMM fused vs seed".to_string(),
                k.to_string(),
                fmt_secs(sample.fused_seconds),
                format!(
                    "seed {} ({:.2}x)",
                    fmt_secs(sample.seed_scalar_seconds),
                    sample.speedup()
                ),
            ]);
            fusion.push(FusionRecord {
                dataset: dataset.to_string(),
                k,
                sample,
            });
        }
    }

    table.print();

    let json = render_bench_json(&meta, &records, &fusion);
    let path = bench_out_path(&meta);
    std::fs::write(&path, json).expect("write bench digest");
    let worst = fusion
        .iter()
        .map(|f| f.sample.speedup())
        .fold(f64::INFINITY, f64::min);
    let geo = mips_bench::geo_mean(
        &fusion
            .iter()
            .map(|f| f.sample.speedup())
            .collect::<Vec<_>>(),
    );
    println!(
        "\nwrote {} — fused-vs-seed speedup: min {:.2}x, geo-mean {:.2}x",
        path.display(),
        worst,
        geo
    );
}
