//! Machine-readable perf digest: writes `<bench>.json` (BENCH_2) at the
//! workspace root so future PRs have a trajectory to diff against; the
//! header records scale, kernel, git sha, and host threads so digests are
//! comparable across PRs and machines.
//!
//! Two sections:
//!
//! * `results` — end-to-end serve seconds for every Fig. 5 strategy at every
//!   paper `k`, per Table I dataset stand-in, with the active SIMD kernel
//!   name on every row. The scan strategies (BMM, MAXIMUS, LEMP) get one
//!   row per numeric-path mode — `f64`, `f32-rescore` (f32 screen + exact
//!   f64 rescore), `i8-rescore` (int8 screen + exact f64 rescore), and
//!   `auto` (OPTIMUS prices the three modes against each other) — and
//!   `precision` is part of every row's gate identity, so a mode cannot
//!   regress behind another mode's back and `auto` rows guard the
//!   planner's choice staying no worse than `f64`.
//! * `bmm_fusion_vs_seed_scalar` — the ISSUE-2 acceptance measurement: the
//!   fused SIMD BMM path against a faithful replay of the seed pipeline
//!   (fresh `batch × n` score buffer, scalar micro-kernels, separate top-k
//!   pass), per dataset and `k`, with the speedup ratio.
//!
//! A fifth "dataset" — `SparseSynth`, a ≥99%-sparse synthetic catalog — adds
//! the sparse bench family: the inverted-index backend against brute force
//! on the workload it exists for, with the same gate identity as every other
//! row.
//!
//! `MIPS_SCALE` scales the models (CI smoke uses 0.05); `MIPS_BENCH_OUT`
//! overrides the output path.

use mips_bench::{
    backend_precisions, bench_out_path, bmm_backend, bmm_fusion_sample, build_model,
    figure5_backends, fmt_secs, geo_mean, render_bench_json, scale, single_backend_engine_at,
    sparse_backend, BenchBackend, BenchMeta, BenchRecord, FusionRecord, Table, PAPER_KS,
};
use mips_core::engine::QueryRequest;
use mips_data::catalog::reference_models;
use mips_data::sparse::{synth_sparse_model, SparseSynthConfig};
use mips_data::MfModel;
use mips_sparse::SparseConfig;
use std::sync::Arc;

/// End-to-end rows for one backend on one dataset stand-in: one row per
/// numeric-path mode per k. All of one backend's mode engines are built up
/// front and their repeats interleaved per k, so the modes share process
/// state — scheduler noise bursts and allocator layout hit every mode's
/// measurement alike instead of biasing whichever block they land in, which
/// is what makes the f32-vs-f64 and auto-vs-f64 ratios meaningful at
/// sub-millisecond row durations.
fn backend_rows(
    dataset: &str,
    backend: &BenchBackend,
    model: &Arc<MfModel>,
    ks: &[usize],
    table: &mut Table,
    records: &mut Vec<BenchRecord>,
) {
    let engines: Vec<_> = backend_precisions(backend)
        .into_iter()
        .map(|precision| {
            (
                precision,
                single_backend_engine_at(backend, model, precision),
            )
        })
        .collect();
    for &k in ks {
        // Adaptive best-of: sub-millisecond rows (tiny CI scale) repeat up
        // to 201 times inside a 0.25s-per-mode budget so the digest is
        // stable enough for the 1.5x regression gate even on a
        // single-threaded noisy host — the min only escapes a scheduler
        // noise burst when the repeat window outlasts the burst.
        // Seconds-scale rows (full scale) run once.
        let request = QueryRequest::top_k(k);
        let mut best = vec![f64::INFINITY; engines.len()];
        let mut spent = vec![0.0; engines.len()];
        let mut runs = 0;
        while runs == 0 || (runs < 201 && spent.iter().all(|&s| s < 0.25)) {
            for (slot, (precision, engine)) in engines.iter().enumerate() {
                // Named dispatch under f64/f32-rescore pins the row to this
                // backend's direct/screened solver; under auto the
                // precision decision belongs to the planner, so the row
                // goes through planned dispatch (the engine holds only
                // this backend, so the plan chooses between its f64 build
                // and its +f32 screen variant — exactly the choice the row
                // guards).
                let response = if *precision == mips_core::precision::Precision::Auto {
                    engine.execute(&request).expect("valid bench request")
                } else {
                    engine
                        .execute_with(backend.key, &request)
                        .expect("valid bench request")
                };
                assert_eq!(response.results.len(), model.num_users());
                best[slot] = best[slot].min(response.serve_seconds);
                spent[slot] += response.serve_seconds;
            }
            runs += 1;
        }
        for (slot, (precision, engine)) in engines.iter().enumerate() {
            table.row(vec![
                dataset.to_string(),
                backend.name.to_string(),
                precision.as_str().to_string(),
                k.to_string(),
                fmt_secs(best[slot]),
                String::new(),
            ]);
            records.push(BenchRecord {
                dataset: dataset.to_string(),
                strategy: backend.name.to_string(),
                precision: precision.as_str().to_string(),
                k,
                build_seconds: engine
                    .solver(backend.key)
                    .expect("solver builds")
                    .build_seconds(),
                serve_seconds: best[slot],
            });
        }
    }
}

fn main() {
    let meta = BenchMeta::collect("BENCH_2");
    println!(
        "== {}.json digest (scale {}, kernel {}, sha {}, {} host threads) ==\n",
        meta.bench, meta.scale, meta.kernel, meta.git_sha, meta.host_threads
    );

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut fusion: Vec<FusionRecord> = Vec::new();
    let mut table = Table::new(&["dataset", "strategy", "precision", "k", "serve", "note"]);

    for dataset in ["Netflix", "KDD", "R2", "GloVe"] {
        let spec = reference_models()
            .into_iter()
            .find(|s| s.dataset == dataset)
            .expect("family present");
        let model = build_model(&spec);
        // At tiny MIPS_SCALE a stand-in can hold fewer items than the
        // largest paper k; skip those rows rather than crash the smoke run.
        let ks: Vec<usize> = PAPER_KS
            .iter()
            .copied()
            .filter(|&k| k <= model.num_items())
            .collect();

        // End-to-end rows: build each backend once per numeric-path mode,
        // serve at every k. The scan backends get f64, f32-rescore,
        // i8-rescore, and auto rows; FEXIPRO stays f64-direct (see
        // `backend_precisions`).
        for backend in figure5_backends(&spec, &model) {
            backend_rows(dataset, &backend, &model, &ks, &mut table, &mut records);
        }

        // Fusion acceptance rows: fused SIMD vs seed scalar; more repeats
        // at tiny scale where a single pass is noise-dominated.
        let fusion_runs = if scale() < 0.5 { 4 } else { 2 };
        for &k in &ks {
            let sample = bmm_fusion_sample(&model, k, fusion_runs);
            table.row(vec![
                dataset.to_string(),
                "BMM fused vs seed".to_string(),
                "f64".to_string(),
                k.to_string(),
                fmt_secs(sample.fused_seconds),
                format!(
                    "seed {} ({:.2}x)",
                    fmt_secs(sample.seed_scalar_seconds),
                    sample.speedup()
                ),
            ]);
            fusion.push(FusionRecord {
                dataset: dataset.to_string(),
                k,
                sample,
            });
        }
    }

    // Sparse bench family: the inverted-index backend vs brute force on a
    // ≥99%-sparse synthetic catalog (the workload OPTIMUS's sparse prior
    // routes to the index). Sizes scale with MIPS_SCALE like every other
    // stand-in; rows share the gate identity scheme, so the sparse path
    // cannot regress behind the dense rows' back.
    {
        let s = scale();
        let model = Arc::new(synth_sparse_model(&SparseSynthConfig {
            num_users: ((800.0 * s) as usize).max(16),
            num_items: ((2000.0 * s) as usize).max(32),
            ..SparseSynthConfig::default()
        }));
        let ks: Vec<usize> = PAPER_KS
            .iter()
            .copied()
            .filter(|&k| k <= model.num_items())
            .collect();
        for backend in [bmm_backend(), sparse_backend(SparseConfig::default())] {
            backend_rows(
                "SparseSynth",
                &backend,
                &model,
                &ks,
                &mut table,
                &mut records,
            );
        }
    }

    table.print();

    let json = render_bench_json(&meta, &records, &fusion);
    let path = bench_out_path(&meta);
    std::fs::write(&path, json).expect("write bench digest");
    let worst = fusion
        .iter()
        .map(|f| f.sample.speedup())
        .fold(f64::INFINITY, f64::min);
    let geo = mips_bench::geo_mean(
        &fusion
            .iter()
            .map(|f| f.sample.speedup())
            .collect::<Vec<_>>(),
    );
    println!(
        "\nwrote {} — fused-vs-seed speedup: min {:.2}x, geo-mean {:.2}x",
        path.display(),
        worst,
        geo
    );

    // Mixed-precision roll-up: per scan strategy, how the f32 and i8
    // screens and the auto planner compare against f64-direct across
    // datasets and ks. (PR acceptance reads these at scale 1: at least one
    // f32 ratio >= 1.3x on a scan row, at least one i8-vs-f32 ratio >=
    // 1.3x on a Table-1 stand-in, and no auto row slower than its f64 twin
    // beyond noise.)
    let at = |strategy: &str, precision: &str, dataset: &str, k: usize| -> Option<f64> {
        records
            .iter()
            .find(|r| {
                r.strategy == strategy
                    && r.precision == precision
                    && r.dataset == dataset
                    && r.k == k
            })
            .map(|r| r.serve_seconds)
    };
    for strategy in ["Blocked MM", "Maximus", "LEMP"] {
        let mut f32_ratios = Vec::new();
        let mut i8_vs_f32 = Vec::new();
        let mut auto_worst = f64::INFINITY;
        for r in records
            .iter()
            .filter(|r| r.strategy == strategy && r.precision == "f64")
        {
            let f32_secs = at(strategy, "f32-rescore", &r.dataset, r.k);
            let i8_secs = at(strategy, "i8-rescore", &r.dataset, r.k);
            if let Some(f32_secs) = f32_secs {
                f32_ratios.push(r.serve_seconds / f32_secs);
            }
            if let (Some(f32_secs), Some(i8_secs)) = (f32_secs, i8_secs) {
                i8_vs_f32.push(f32_secs / i8_secs);
            }
            if let Some(auto_secs) = at(strategy, "auto", &r.dataset, r.k) {
                auto_worst = auto_worst.min(r.serve_seconds / auto_secs);
            }
        }
        if !f32_ratios.is_empty() {
            let best = f32_ratios.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "{strategy}: f32 screen vs f64 — best {:.2}x, geo-mean {:.2}x; auto vs f64 worst {:.2}x",
                best,
                geo_mean(&f32_ratios),
                auto_worst
            );
        }
        if !i8_vs_f32.is_empty() {
            let best = i8_vs_f32.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "{strategy}: i8 screen vs f32 screen — best {:.2}x, geo-mean {:.2}x",
                best,
                geo_mean(&i8_vs_f32),
            );
        }
    }
}
