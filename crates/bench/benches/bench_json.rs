//! Machine-readable perf digest: writes `<bench>.json` (BENCH_2) at the
//! workspace root so future PRs have a trajectory to diff against; the
//! header records scale, kernel, git sha, and host threads so digests are
//! comparable across PRs and machines.
//!
//! Two sections:
//!
//! * `results` — end-to-end serve seconds for every Fig. 5 strategy at every
//!   paper `k`, per Table I dataset stand-in, with the active SIMD kernel
//!   name on every row. The scan strategies (BMM, MAXIMUS, LEMP) get one
//!   row per numeric-path mode — `f64`, `f32-rescore` (f32 screen + exact
//!   f64 rescore), and `auto` (OPTIMUS prices the two modes against each
//!   other) — and `precision` is part of every row's gate identity, so a
//!   mode cannot regress behind another mode's back and `auto` rows guard
//!   the planner's choice staying no worse than `f64`.
//! * `bmm_fusion_vs_seed_scalar` — the ISSUE-2 acceptance measurement: the
//!   fused SIMD BMM path against a faithful replay of the seed pipeline
//!   (fresh `batch × n` score buffer, scalar micro-kernels, separate top-k
//!   pass), per dataset and `k`, with the speedup ratio.
//!
//! `MIPS_SCALE` scales the models (CI smoke uses 0.05); `MIPS_BENCH_OUT`
//! overrides the output path.

use mips_bench::{
    bench_out_path, bmm_fusion_sample, build_model, figure5_strategies, fmt_secs, geo_mean,
    render_bench_json, scale, single_backend_engine_at, strategy_precisions, BenchMeta,
    BenchRecord, FusionRecord, Table, PAPER_KS,
};
use mips_core::engine::QueryRequest;
use mips_data::catalog::reference_models;

fn main() {
    let meta = BenchMeta::collect("BENCH_2");
    println!(
        "== {}.json digest (scale {}, kernel {}, sha {}, {} host threads) ==\n",
        meta.bench, meta.scale, meta.kernel, meta.git_sha, meta.host_threads
    );

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut fusion: Vec<FusionRecord> = Vec::new();
    let mut table = Table::new(&["dataset", "strategy", "precision", "k", "serve", "note"]);

    for dataset in ["Netflix", "KDD", "R2", "GloVe"] {
        let spec = reference_models()
            .into_iter()
            .find(|s| s.dataset == dataset)
            .expect("family present");
        let model = build_model(&spec);
        // At tiny MIPS_SCALE a stand-in can hold fewer items than the
        // largest paper k; skip those rows rather than crash the smoke run.
        let ks: Vec<usize> = PAPER_KS
            .iter()
            .copied()
            .filter(|&k| k <= model.num_items())
            .collect();

        // End-to-end rows: build each strategy once per numeric-path mode,
        // serve at every k. The scan strategies get f64, f32-rescore, and
        // auto rows; FEXIPRO stays f64-direct (see `strategy_precisions`).
        // All of one strategy's mode engines are built up front and their
        // repeats interleaved per k, so the modes share process state —
        // scheduler noise bursts and allocator layout hit every mode's
        // measurement alike instead of biasing whichever block they land
        // in, which is what makes the f32-vs-f64 and auto-vs-f64 ratios
        // meaningful at sub-millisecond row durations.
        for strategy in figure5_strategies(&spec, &model) {
            let engines: Vec<_> = strategy_precisions(&strategy)
                .into_iter()
                .map(|precision| {
                    (
                        precision,
                        single_backend_engine_at(&strategy, &model, precision),
                    )
                })
                .collect();
            for &k in &ks {
                // Adaptive best-of: sub-millisecond rows (tiny CI scale)
                // repeat up to 201 times inside a 0.25s-per-mode budget so
                // the digest is stable enough for the 1.5x regression gate
                // even on a single-threaded noisy host — the min only
                // escapes a scheduler noise burst when the repeat window
                // outlasts the burst. Seconds-scale rows (full scale) run
                // once.
                let request = QueryRequest::top_k(k);
                let mut best = vec![f64::INFINITY; engines.len()];
                let mut spent = vec![0.0; engines.len()];
                let mut runs = 0;
                while runs == 0 || (runs < 201 && spent.iter().all(|&s| s < 0.25)) {
                    for (slot, (precision, engine)) in engines.iter().enumerate() {
                        // Named dispatch under f64/f32-rescore pins the
                        // row to this strategy's direct/screened solver;
                        // under auto the precision decision belongs to the
                        // planner, so the row goes through planned
                        // dispatch (the engine holds only this strategy,
                        // so the plan chooses between its f64 build and
                        // its +f32 screen variant — exactly the choice the
                        // row guards).
                        let response = if *precision == mips_core::precision::Precision::Auto {
                            engine.execute(&request).expect("valid bench request")
                        } else {
                            engine
                                .execute_with(strategy.key(), &request)
                                .expect("valid bench request")
                        };
                        assert_eq!(response.results.len(), model.num_users());
                        best[slot] = best[slot].min(response.serve_seconds);
                        spent[slot] += response.serve_seconds;
                    }
                    runs += 1;
                }
                for (slot, (precision, engine)) in engines.iter().enumerate() {
                    table.row(vec![
                        dataset.to_string(),
                        strategy.name().to_string(),
                        precision.as_str().to_string(),
                        k.to_string(),
                        fmt_secs(best[slot]),
                        String::new(),
                    ]);
                    records.push(BenchRecord {
                        dataset: dataset.to_string(),
                        strategy: strategy.name().to_string(),
                        precision: precision.as_str().to_string(),
                        k,
                        build_seconds: engine
                            .solver(strategy.key())
                            .expect("solver builds")
                            .build_seconds(),
                        serve_seconds: best[slot],
                    });
                }
            }
        }

        // Fusion acceptance rows: fused SIMD vs seed scalar; more repeats
        // at tiny scale where a single pass is noise-dominated.
        let fusion_runs = if scale() < 0.5 { 4 } else { 2 };
        for &k in &ks {
            let sample = bmm_fusion_sample(&model, k, fusion_runs);
            table.row(vec![
                dataset.to_string(),
                "BMM fused vs seed".to_string(),
                "f64".to_string(),
                k.to_string(),
                fmt_secs(sample.fused_seconds),
                format!(
                    "seed {} ({:.2}x)",
                    fmt_secs(sample.seed_scalar_seconds),
                    sample.speedup()
                ),
            ]);
            fusion.push(FusionRecord {
                dataset: dataset.to_string(),
                k,
                sample,
            });
        }
    }

    table.print();

    let json = render_bench_json(&meta, &records, &fusion);
    let path = bench_out_path(&meta);
    std::fs::write(&path, json).expect("write bench digest");
    let worst = fusion
        .iter()
        .map(|f| f.sample.speedup())
        .fold(f64::INFINITY, f64::min);
    let geo = mips_bench::geo_mean(
        &fusion
            .iter()
            .map(|f| f.sample.speedup())
            .collect::<Vec<_>>(),
    );
    println!(
        "\nwrote {} — fused-vs-seed speedup: min {:.2}x, geo-mean {:.2}x",
        path.display(),
        worst,
        geo
    );

    // Mixed-precision roll-up: per scan strategy, how the f32 screen and
    // the auto planner compare against f64-direct across datasets and ks.
    // (The PR's acceptance reads these at scale 1: at least one f32 ratio
    // >= 1.3x on a scan row, and no auto row slower than its f64 twin
    // beyond noise.)
    let at = |strategy: &str, precision: &str, dataset: &str, k: usize| -> Option<f64> {
        records
            .iter()
            .find(|r| {
                r.strategy == strategy
                    && r.precision == precision
                    && r.dataset == dataset
                    && r.k == k
            })
            .map(|r| r.serve_seconds)
    };
    for strategy in ["Blocked MM", "Maximus", "LEMP"] {
        let mut f32_ratios = Vec::new();
        let mut auto_worst = f64::INFINITY;
        for r in records
            .iter()
            .filter(|r| r.strategy == strategy && r.precision == "f64")
        {
            if let Some(f32_secs) = at(strategy, "f32-rescore", &r.dataset, r.k) {
                f32_ratios.push(r.serve_seconds / f32_secs);
            }
            if let Some(auto_secs) = at(strategy, "auto", &r.dataset, r.k) {
                auto_worst = auto_worst.min(r.serve_seconds / auto_secs);
            }
        }
        if !f32_ratios.is_empty() {
            let best = f32_ratios.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "{strategy}: f32 screen vs f64 — best {:.2}x, geo-mean {:.2}x; auto vs f64 worst {:.2}x",
                best,
                geo_mean(&f32_ratios),
                auto_worst
            );
        }
    }
}
