//! Micro-benchmark: the §II-B hardware-efficiency constants.
//!
//! The paper's premise is that one blocked matrix-matrix multiply is far
//! faster than per-pair `sdot` calls (≈40× on their machine) or repeated
//! matrix–vector products (≈20×). This Criterion bench measures our packed
//! GEMM against both on a MIPS-shaped workload (users × items × f), plus
//! the square sizes where the gap is widest.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mips_linalg::{gemm_flops, gemm_nt, matvec, naive_gemm_nt, Matrix};

fn deterministic_matrix(rows: usize, cols: usize, seed: u64) -> Matrix<f64> {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    })
}

fn bench_gemm_vs_alternatives(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_vs_alternatives");
    group.sample_size(10);
    for &(m, n, k) in &[(1024usize, 1024usize, 64usize), (512, 512, 512)] {
        let a = deterministic_matrix(m, k, 3);
        let b = deterministic_matrix(n, k, 5);
        group.throughput(Throughput::Elements(gemm_flops(m, n, k) as u64));
        group.bench_with_input(
            BenchmarkId::new("blocked_gemm", format!("{m}x{n}x{k}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| gemm_nt(a, b)),
        );
        group.bench_with_input(
            BenchmarkId::new("naive_dots", format!("{m}x{n}x{k}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| naive_gemm_nt(a, b)),
        );
        group.bench_with_input(
            BenchmarkId::new("matvec_loop", format!("{m}x{n}x{k}")),
            &(&a, &b),
            |bench, (a, b)| {
                bench.iter(|| {
                    // One matvec per user row, as a non-blocked server would.
                    let mut acc = 0.0f64;
                    for r in 0..a.rows() {
                        let y = matvec(b, a.row(r));
                        acc += y[0];
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_vs_alternatives);
criterion_main!(benches);
