//! Figure 2: the motivating experiment.
//!
//! End-to-end top-K runtime of blocked matrix multiply vs LEMP vs FEXIPRO on
//! Netflix f=50 and Yahoo R2 f=50 for K ∈ {1, 5, 10, 50}. The paper's
//! finding: BMM is 1.9–3.1× faster on Netflix, while LEMP/FEXIPRO are
//! 2–3.5× faster on R2 — no strategy dominates.

use mips_bench::{
    bmm_backend, build_model, end_to_end_seconds, fmt_secs, BenchBackend, Table, PAPER_KS,
};
use mips_core::engine::{FexiproFactory, LempFactory};
use mips_data::catalog::find;
use mips_lemp::LempConfig;
use std::sync::Arc;

fn main() {
    println!("== Figure 2: BMM vs LEMP vs FEXIPRO (motivation) ==\n");
    for (dataset, training) in [("Netflix", "DSGD"), ("R2", "NOMAD")] {
        let spec = find(dataset, training, 50).expect("catalog model");
        let model = build_model(&spec);
        println!(
            "{} ({} users x {} items)",
            model.name(),
            model.num_users(),
            model.num_items()
        );
        let mut table = Table::new(&["K", "Blocked MM", "LEMP", "FEXIPRO", "fastest"]);
        let lemp_backend = BenchBackend {
            name: "LEMP",
            key: "lemp",
            factory: Arc::new(LempFactory::new(LempConfig::default())),
        };
        let fexipro_backend = BenchBackend {
            name: "FEXIPRO-SI",
            key: "fexipro-si",
            factory: Arc::new(FexiproFactory::si()),
        };
        for k in PAPER_KS {
            let bmm = end_to_end_seconds(&bmm_backend(), &model, k);
            let lemp = end_to_end_seconds(&lemp_backend, &model, k);
            let fexipro = end_to_end_seconds(&fexipro_backend, &model, k);
            let fastest = [("Blocked MM", bmm), ("LEMP", lemp), ("FEXIPRO", fexipro)]
                .into_iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap()
                .0;
            table.row(vec![
                k.to_string(),
                fmt_secs(bmm),
                fmt_secs(lemp),
                fmt_secs(fexipro),
                fastest.to_string(),
            ]);
        }
        table.print();
        println!();
    }
    println!("paper shape: BMM fastest on every Netflix K; LEMP/FEXIPRO fastest on every R2 K.");
}
