//! Serving-runtime digest: writes `BENCH_3.json` — requests/sec and
//! p50/p99 latency for concurrent traffic through the sharded
//! [`MipsServer`], across worker counts and batching policies.
//!
//! The workload is the one the engine alone serves worst: floods of
//! single-user requests (the recommender front-end shape). Each
//! configuration pushes the same request stream through a server and
//! reads throughput and latency off the server's own metrics.
//!
//! A `swap-under-load` row per dataset measures the hot-model-swap path:
//! the same single-user flood while a background thread calls
//! `Engine::swap_model` every few milliseconds, so the row's throughput
//! captures the dip from epoch rebuilds (topology re-cut, solver rebuild,
//! re-planning). The regression gate guards it like every other row.
//!
//! `precision-sweep` rows compare the numeric-path knob — `f64` direct vs
//! `f32-rescore` (f32 screen + exact f64 rescore) vs `i8-rescore` (int8
//! screen + exact f64 rescore) vs `auto` (OPTIMUS prices the three) — on
//! the same BMM-backed single-user flood. `precision`
//! is part of every row's gate identity, so each mode gates individually
//! and the auto row guards the planner never serving slower than the
//! committed f64 row drifts.
//!
//! `per-shard-index` rows compare the `IndexScope` knob — Global vs
//! PerShard vs Auto — on a MAXIMUS-backed engine (the index whose
//! structure actually depends on which users it is built over: per-shard
//! clustering tightens every cluster's worst angle θ_b, so shard-local
//! lists prune harder). Construction and planning are warmed through a
//! sibling server with identical bounds (the epoch's per-shard cache tier
//! is keyed by bounds, so the timed server starts cache-hot), leaving the
//! rows to measure steady-state serving. The gate guards all three
//! scopes, so a regression in shard-local serving — or the scope machinery
//! slowing the global path — fails CI.
//!
//! `loopback-http` rows push the same single-user flood through the
//! `mips-net` front door over a real loopback socket — pipelined bursts on
//! one keep-alive connection, latency measured at the client from burst
//! write to each response read. Compared against the in-process
//! `single-user` rows they price the wire: HTTP parse, JSON codec, event
//! loop, kernel socket hops. The gate guards them like every other row.
//!
//! Environment knobs: `MIPS_SCALE` scales the models (as everywhere in the
//! harness); `MIPS_SERVE_MAX_WORKERS` caps the worker-count sweep (the
//! regression-gate run pins it to 1 so committed baselines stay
//! machine-comparable); `MIPS_SERVE_REQUESTS` overrides the per-config
//! request count; `MIPS_BENCH_OUT` overrides the output path.

use mips_bench::{
    bench_out_path, build_model, fmt_secs, maximus_config, render_serve_json, scale, BenchMeta,
    ServeRecord, Table,
};
use mips_core::engine::{BmmFactory, Engine, EngineBuilder, MaximusFactory, QueryRequest};
use mips_core::precision::Precision;
use mips_core::serve::{IndexScope, ServerBuilder};
use mips_data::catalog::reference_models;
use mips_data::MfModel;
use mips_net::client::Client;
use mips_net::HttpServerBuilder;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Submitter threads driving each server configuration.
const SUBMITTERS: usize = 8;
/// Requests each submitter keeps in flight (windowed closed loop). A burst
/// bigger than one gives the micro-batcher a backlog to coalesce, like a
/// real fan-out front-end would.
const BURST: usize = 16;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// How often the swap-under-load workload installs a new model epoch.
const SWAP_EVERY: Duration = Duration::from_millis(3);

/// One server shape under measurement.
#[derive(Clone, Copy)]
struct ServerShape {
    shards: usize,
    workers: usize,
    batching: bool,
    /// Deadline-flush window in microseconds (0 = adaptive flush only).
    batch_window_us: u64,
    scope: IndexScope,
}

impl ServerShape {
    /// The historical single-knob shape: `workers` shards, one per worker,
    /// global index scope, a 200µs deadline window when batching.
    fn classic(workers: usize, batching: bool) -> ServerShape {
        ServerShape {
            shards: workers,
            workers,
            batching,
            batch_window_us: if batching { 200 } else { 0 },
            scope: IndexScope::Global,
        }
    }

    /// The loopback shape: like [`ServerShape::classic`] batched, but with
    /// adaptive flush only. Wire traffic keeps fewer requests in flight
    /// than `max_batch`, so a deadline window would hold every partial
    /// batch open for its full length — pure added latency, no extra
    /// coalescing to buy.
    fn wire(workers: usize) -> ServerShape {
        ServerShape {
            shards: workers,
            workers,
            batching: true,
            batch_window_us: 0,
            scope: IndexScope::Global,
        }
    }

    fn build(&self, engine: &Arc<Engine>) -> mips_core::serve::MipsServer {
        ServerBuilder::new()
            .engine(Arc::clone(engine))
            .shards(self.shards)
            .workers(self.workers)
            .max_batch(32)
            .batch_window(Duration::from_micros(self.batch_window_us))
            .batching(self.batching)
            .queue_capacity(4096)
            .index_scope(self.scope)
            .build()
            .expect("bench server assembles")
    }
}

/// One configuration's run: `requests` single-user top-10 requests pushed
/// by [`SUBMITTERS`] windowed submitters. With `swap_with`, a background
/// thread alternates `Engine::swap_model` between the served model and the
/// given stand-in every [`SWAP_EVERY`] for the whole run.
fn run_config(
    engine: &Arc<Engine>,
    model: &MfModel,
    shape: ServerShape,
    requests: usize,
    swap_with: Option<&[Arc<MfModel>; 2]>,
) -> (f64, mips_core::serve::ServerMetrics) {
    let server = shape.build(engine);
    // Warm up through the engine the server fronts: solver build + plan
    // happen outside the timed window, and the warmup sample stays out of
    // the server's latency histogram (at gate scale, p99 is only a handful
    // of samples deep — one cold outlier would *be* the p99).
    engine
        .execute(&QueryRequest::top_k(10).users(vec![0]))
        .expect("warmup");
    if shape.scope != IndexScope::Global && swap_with.is_none() {
        // Scoped runs also warm the epoch's per-shard tier (solvers +
        // plans, keyed by shard bounds) through a sibling server with
        // identical bounds; the timed server below then starts cache-hot,
        // so the row measures steady-state serving, not construction.
        let warm = shape.build(engine);
        warm.execute(&QueryRequest::top_k(10))
            .expect("scope warmup");
        warm.shutdown().expect("scope warmup shutdown");
    }

    let num_users = model.num_users();
    let done = std::sync::atomic::AtomicBool::new(false);
    /// Stops the swapper even when a submitter panics: without this, an
    /// unwound scope closure would never set `done` and `thread::scope`
    /// would block forever joining the swapper — hanging the CI job
    /// instead of reporting the failure.
    struct StopOnDrop<'a>(&'a std::sync::atomic::AtomicBool);
    impl Drop for StopOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    }
    let started = Instant::now();
    // The scope returns the serving time measured right after the last
    // submitter joins: the swapper thread's shutdown (it may be mid-swap
    // or mid-sleep) must not count against the row's throughput.
    let elapsed = std::thread::scope(|scope| {
        let _stop_guard = StopOnDrop(&done);
        if let Some(pair) = swap_with {
            let engine = Arc::clone(engine);
            let done = &done;
            scope.spawn(move || {
                let mut next = 0usize;
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    engine
                        .swap_model(Arc::clone(&pair[next]))
                        .expect("bench swap");
                    next = 1 - next;
                    std::thread::sleep(SWAP_EVERY);
                }
            });
        }
        let submitters: Vec<_> = (0..SUBMITTERS)
            .map(|t| {
                let server = &server;
                scope.spawn(move || {
                    // Spread the remainder so exactly `requests` are sent.
                    let mine = requests / SUBMITTERS + usize::from(t < requests % SUBMITTERS);
                    let mut sent = 0usize;
                    while sent < mine {
                        let burst = BURST.min(mine - sent);
                        let handles: Vec<_> = (0..burst)
                            .map(|i| {
                                // Deterministic spread over users so shards see
                                // even traffic.
                                let n = t + SUBMITTERS * (sent + i);
                                let user = (n.wrapping_mul(2654435761)) % num_users;
                                server
                                    .submit(&QueryRequest::top_k(10).users(vec![user]))
                                    .expect("bench submit")
                            })
                            .collect();
                        for handle in handles {
                            handle.wait().expect("bench request serves");
                        }
                        sent += burst;
                    }
                })
            })
            .collect();
        for submitter in submitters {
            submitter.join().expect("bench submitter");
        }
        let elapsed = started.elapsed().as_secs_f64();
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        elapsed
    });
    let metrics = server.metrics();
    (elapsed, metrics)
}

/// Requests kept pipelined on the loopback connection per burst — the
/// wire analog of [`BURST`]: written back-to-back, read back in order.
const WIRE_BURST: usize = 16;

/// One loopback pass: `requests` single-user top-10 queries through a
/// fresh HTTP front door over a real socket, pipelined [`WIRE_BURST`] at
/// a time on one keep-alive connection. A single connection keeps the
/// thread count minimal (client + net loop + workers), so on the 1-worker
/// gate shape the row prices the wire itself, not scheduler contention.
/// Returns wall seconds plus client-measured p50/p99 (burst write →
/// response read) in microseconds.
fn run_wire(
    engine: &Arc<Engine>,
    model: &MfModel,
    shape: ServerShape,
    requests: usize,
) -> WirePass {
    let server = Arc::new(shape.build(engine));
    engine
        .execute(&QueryRequest::top_k(10).users(vec![0]))
        .expect("warmup");
    let http = HttpServerBuilder::new()
        .server(Arc::clone(&server))
        .build()
        .expect("bench front door assembles");
    let mut client = Client::connect(http.local_addr()).expect("bench loopback connect");
    // One warmup round trip: connection setup and first-parse costs stay
    // out of the timed window, mirroring the in-process warmup.
    let warm = client
        .request("POST", "/query", Some("{\"k\": 10, \"users\": [0]}"))
        .expect("wire warmup");
    assert_eq!(warm.status, 200, "{}", warm.body);

    let num_users = model.num_users();
    let mut latencies: Vec<Duration> = Vec::with_capacity(requests);
    let started = Instant::now();
    let mut sent = 0usize;
    while sent < requests {
        let burst = WIRE_BURST.min(requests - sent);
        let burst_started = Instant::now();
        for i in 0..burst {
            let n = sent + i;
            let user = (n.wrapping_mul(2654435761)) % num_users;
            client
                .send(
                    "POST",
                    "/query",
                    Some(&format!("{{\"k\": 10, \"users\": [{user}]}}")),
                )
                .expect("wire send");
        }
        for _ in 0..burst {
            let response = client.recv().expect("wire response");
            assert_eq!(
                response.status, 200,
                "wire request must serve: {}",
                response.body
            );
            latencies.push(burst_started.elapsed());
        }
        sent += burst;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let metrics = server.metrics();
    assert_eq!(
        metrics.completed as usize,
        requests + 1,
        "warmup + timed requests"
    );
    assert_eq!(metrics.failed, 0, "wire requests must not fail");
    http.shutdown().expect("bench front door shutdown");

    latencies.sort();
    let quantile = |q: f64| -> f64 {
        latencies[((latencies.len() - 1) as f64 * q) as usize].as_secs_f64() * 1e6
    };
    WirePass {
        elapsed,
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        mean_batch: metrics.mean_batch_size(),
    }
}

/// One measured loopback pass (see [`run_wire`]).
#[derive(Clone, Copy)]
struct WirePass {
    elapsed: f64,
    p50_us: f64,
    p99_us: f64,
    mean_batch: f64,
}

/// Best-of wrapper for the loopback leg, same noise policy as [`best_of`].
fn best_of_wire(
    engine: &Arc<Engine>,
    model: &MfModel,
    shape: ServerShape,
    requests: usize,
) -> WirePass {
    let mut best: Option<WirePass> = None;
    let mut spent = 0.0;
    let mut runs = 0;
    while runs == 0 || (runs < 5 && spent < 0.3) {
        let pass = run_wire(engine, model, shape, requests);
        spent += pass.elapsed;
        let improved = match &best {
            None => true,
            Some(fastest) => pass.elapsed < fastest.elapsed,
        };
        if improved {
            best = Some(pass);
        }
        runs += 1;
    }
    best.expect("at least one wire pass ran")
}

/// Adaptive best-of wrapper around [`run_config`], shared by the steady
/// and swap-under-load rows so both get identical noise treatment: at tiny
/// CI scale one pass is only a few milliseconds, so repeat inside a 0.3s
/// budget and keep the fastest pass (and its metrics); full-scale passes
/// run once or twice.
fn best_of(
    engine: &Arc<Engine>,
    model: &MfModel,
    shape: ServerShape,
    requests: usize,
    swap_with: Option<&[Arc<MfModel>; 2]>,
) -> (f64, mips_core::serve::ServerMetrics) {
    let mut best: Option<(f64, mips_core::serve::ServerMetrics)> = None;
    let mut spent = 0.0;
    let mut runs = 0;
    while runs == 0 || (runs < 5 && spent < 0.3) {
        let (elapsed, metrics) = run_config(engine, model, shape, requests, swap_with);
        assert_eq!(metrics.completed as usize, requests);
        assert_eq!(metrics.failed, 0, "bench requests must not fail");
        spent += elapsed;
        let improved = match &best {
            None => true,
            Some((fastest, _)) => elapsed < *fastest,
        };
        if improved {
            best = Some((elapsed, metrics));
        }
        runs += 1;
    }
    best.expect("at least one pass ran")
}

/// Appends one digest row (record + printed table line) for a measured
/// configuration. `metrics.swaps` is 0 for steady workloads by
/// construction, so the same emitter serves both workload kinds. The
/// fronted engine's precision mode comes off the metrics snapshot, so the
/// row records what actually served rather than what the caller intended.
#[allow(clippy::too_many_arguments)]
fn emit_row(
    table: &mut Table,
    records: &mut Vec<ServeRecord>,
    dataset: &str,
    workload: &str,
    shape: ServerShape,
    requests: usize,
    elapsed: f64,
    metrics: &mips_core::serve::ServerMetrics,
) {
    let rps = requests as f64 / elapsed;
    let record = ServeRecord {
        dataset: dataset.to_string(),
        workload: workload.to_string(),
        index_scope: shape.scope.as_str().to_string(),
        precision: metrics.precision.as_str().to_string(),
        workers: shape.workers,
        shards: shape.shards,
        batching: shape.batching,
        max_batch: 32,
        batch_window_us: shape.batch_window_us,
        requests: requests as u64,
        swaps: metrics.swaps,
        mean_batch: metrics.mean_batch_size(),
        requests_per_sec: rps,
        seconds_per_request: elapsed / requests as f64,
        p50_us: metrics.latency.p50_us,
        p99_us: metrics.latency.p99_us,
    };
    table.row(vec![
        dataset.to_string(),
        workload.to_string(),
        record.index_scope.clone(),
        record.precision.clone(),
        shape.workers.to_string(),
        shape.batching.to_string(),
        format!("{rps:.0}"),
        fmt_secs(record.seconds_per_request),
        format!("{:.0}us", record.p50_us),
        format!("{:.0}us", record.p99_us),
        format!("{:.1}", record.mean_batch),
        record.swaps.to_string(),
    ]);
    records.push(record);
}

fn main() {
    let meta = BenchMeta::collect("BENCH_3");
    println!(
        "== {}.json serving digest (scale {}, kernel {}, sha {}, {} host threads) ==\n",
        meta.bench, meta.scale, meta.kernel, meta.git_sha, meta.host_threads
    );

    let max_workers = env_usize("MIPS_SERVE_MAX_WORKERS", 8);
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w <= max_workers)
        .collect();
    let requests = env_usize(
        "MIPS_SERVE_REQUESTS",
        ((768.0 * scale()) as usize).clamp(96, 1536),
    );

    let mut records: Vec<ServeRecord> = Vec::new();
    let mut table = Table::new(&[
        "dataset", "workload", "scope", "prec", "workers", "batching", "req/s", "s/req", "p50",
        "p99", "batch", "swaps",
    ]);

    for dataset in ["Netflix", "GloVe"] {
        let spec = reference_models()
            .into_iter()
            .find(|s| s.dataset == dataset)
            .expect("family present");
        let model = build_model(&spec);
        // One backend, shared across every configuration: the run times
        // the serving runtime, not index construction or planning.
        let engine = Arc::new(
            EngineBuilder::new()
                .model(Arc::clone(&model))
                .register(BmmFactory)
                .build()
                .expect("bench engine assembles"),
        );

        for &workers in &worker_counts {
            for batching in [true, false] {
                let shape = ServerShape::classic(workers, batching);
                let (elapsed, metrics) = best_of(&engine, &model, shape, requests, None);
                emit_row(
                    &mut table,
                    &mut records,
                    dataset,
                    "single-user",
                    shape,
                    requests,
                    elapsed,
                    &metrics,
                );
            }
        }

        // Loopback HTTP: the batched single-user flood again, but through
        // the network front door over a real socket. The delta against
        // the in-process batched row at the same worker count is the
        // price of the wire.
        for &workers in &worker_counts {
            let shape = ServerShape::wire(workers);
            let pass = best_of_wire(&engine, &model, shape, requests);
            let rps = requests as f64 / pass.elapsed;
            let record = ServeRecord {
                dataset: dataset.to_string(),
                workload: "loopback-http".to_string(),
                index_scope: shape.scope.as_str().to_string(),
                precision: engine.precision().as_str().to_string(),
                workers: shape.workers,
                shards: shape.shards,
                batching: shape.batching,
                max_batch: 32,
                batch_window_us: shape.batch_window_us,
                requests: requests as u64,
                swaps: 0,
                mean_batch: pass.mean_batch,
                requests_per_sec: rps,
                seconds_per_request: pass.elapsed / requests as f64,
                p50_us: pass.p50_us,
                p99_us: pass.p99_us,
            };
            table.row(vec![
                dataset.to_string(),
                "loopback-http".to_string(),
                record.index_scope.clone(),
                record.precision.clone(),
                shape.workers.to_string(),
                shape.batching.to_string(),
                format!("{rps:.0}"),
                fmt_secs(record.seconds_per_request),
                format!("{:.0}us", record.p50_us),
                format!("{:.0}us", record.p99_us),
                format!("{:.1}", record.mean_batch),
                "0".to_string(),
            ]);
            records.push(record);
        }

        // Precision-sweep: the same single-user flood on fresh BMM engines
        // differing only in the numeric-path knob. A distinct workload
        // label keeps the f64 row from colliding with the steady
        // single-user row's identity; within the sweep, `precision`
        // separates the four rows so each mode gates on its own.
        {
            let w = *worker_counts.first().unwrap();
            for precision in [
                Precision::F64,
                Precision::F32Rescore,
                Precision::I8Rescore,
                Precision::Auto,
            ] {
                let engine = Arc::new(
                    EngineBuilder::new()
                        .model(Arc::clone(&model))
                        .register(BmmFactory)
                        .precision(precision)
                        .build()
                        .expect("bench engine assembles"),
                );
                let shape = ServerShape::classic(w, true);
                let (elapsed, metrics) = best_of(&engine, &model, shape, requests, None);
                emit_row(
                    &mut table,
                    &mut records,
                    dataset,
                    "precision-sweep",
                    shape,
                    requests,
                    elapsed,
                    &metrics,
                );
            }
        }

        // Swap-under-load: the same single-user flood with a background
        // thread hot-swapping the model the whole time. A dedicated engine
        // keeps the epoch churn out of the steady-state rows; the two
        // swapped models are fresh same-spec builds, so every epoch serves
        // the same workload shape.
        let swap_models = [build_model(&spec), build_model(&spec)];
        for &workers in &worker_counts {
            let engine = Arc::new(
                EngineBuilder::new()
                    .model(Arc::clone(&swap_models[0]))
                    .register(BmmFactory)
                    .build()
                    .expect("bench engine assembles"),
            );
            let shape = ServerShape::classic(workers, true);
            let (elapsed, metrics) = best_of(&engine, &model, shape, requests, Some(&swap_models));
            emit_row(
                &mut table,
                &mut records,
                dataset,
                "swap-under-load",
                shape,
                requests,
                elapsed,
                &metrics,
            );
        }

        // Per-shard-index rows: the same single-user flood on a
        // MAXIMUS-backed engine, under each IndexScope. MAXIMUS is the
        // backend whose index structure depends on which users it covers —
        // shard-local clustering tightens θ_b, so `per-shard` lists prune
        // harder than the one global clustering (visible on the skewed
        // GloVe norms; Netflix's flat norms leave little for any index to
        // prune, shard-local or not). Four shards at every worker count
        // keep Global and PerShard serving the same topology; a fresh
        // engine per scope keeps the epoch cache tiers honest (scopes must
        // not warm each other). The scope rows compare against each other
        // at a 4x request count so the comparison is not noise-bound at
        // gate scale.
        let scope_requests = requests * 4;
        for &workers in &worker_counts {
            for scope in [IndexScope::Global, IndexScope::PerShard, IndexScope::Auto] {
                let engine = Arc::new(
                    EngineBuilder::new()
                        .model(Arc::clone(&model))
                        .register(MaximusFactory::new(maximus_config(&spec, &model)))
                        .build()
                        .expect("bench engine assembles"),
                );
                let shape = ServerShape {
                    shards: 4,
                    workers,
                    batching: true,
                    batch_window_us: 200,
                    scope,
                };
                let (elapsed, metrics) = best_of(&engine, &model, shape, scope_requests, None);
                emit_row(
                    &mut table,
                    &mut records,
                    dataset,
                    "per-shard-index",
                    shape,
                    scope_requests,
                    elapsed,
                    &metrics,
                );
            }
        }
    }

    table.print();

    // Roll-up: worker scaling (batched), batching speedup, and index-scope
    // comparison, per dataset.
    println!();
    for dataset in ["Netflix", "GloVe"] {
        let scoped_rps = |workload: &str, workers: usize, scope: &str| -> Option<f64> {
            records
                .iter()
                .find(|r| {
                    r.dataset == dataset
                        && r.workload == workload
                        && r.workers == workers
                        && r.index_scope == scope
                })
                .map(|r| r.requests_per_sec)
        };
        let rps = |workload: &str, workers: usize, batching: bool| -> Option<f64> {
            records
                .iter()
                .find(|r| {
                    r.dataset == dataset
                        && r.workload == workload
                        && r.workers == workers
                        && r.batching == batching
                })
                .map(|r| r.requests_per_sec)
        };
        let w_min = *worker_counts.first().unwrap();
        let w_max = *worker_counts.last().unwrap();
        if let (Some(lo), Some(hi)) = (
            rps("single-user", w_min, true),
            rps("single-user", w_max, true),
        ) {
            println!(
                "{dataset}: {w_min}->{w_max} workers scales {:.2}x (batched, {} host threads)",
                hi / lo,
                meta.host_threads
            );
        }
        if let (Some(unbatched), Some(batched)) = (
            rps("single-user", w_max, false),
            rps("single-user", w_max, true),
        ) {
            println!(
                "{dataset}: micro-batching {:.2}x vs unbatched at {w_max} workers",
                batched / unbatched
            );
        }
        if let (Some(steady), Some(swapped)) = (
            rps("single-user", w_max, true),
            rps("swap-under-load", w_max, true),
        ) {
            println!(
                "{dataset}: continuous hot swap keeps {:.0}% of steady throughput at {w_max} workers",
                100.0 * swapped / steady
            );
        }
        let p50 = |workload: &str, workers: usize| -> Option<f64> {
            records
                .iter()
                .find(|r| {
                    r.dataset == dataset
                        && r.workload == workload
                        && r.workers == workers
                        && r.batching
                })
                .map(|r| r.p50_us)
        };
        if let (Some(in_proc), Some(wire)) =
            (p50("single-user", w_min), p50("loopback-http", w_min))
        {
            println!(
                "{dataset}: loopback HTTP p50 {wire:.0}us = {:.2}x in-process at {w_min} worker(s)",
                wire / in_proc
            );
        }
        if let (Some(global), Some(per_shard), Some(auto)) = (
            scoped_rps("per-shard-index", w_min, "global"),
            scoped_rps("per-shard-index", w_min, "per-shard"),
            scoped_rps("per-shard-index", w_min, "auto"),
        ) {
            println!(
                "{dataset}: per-shard MAXIMUS serves {:.2}x global (auto {:.2}x) at {w_min} worker(s)",
                per_shard / global,
                auto / global
            );
        }
        let prec_rps = |precision: &str| -> Option<f64> {
            records
                .iter()
                .find(|r| {
                    r.dataset == dataset
                        && r.workload == "precision-sweep"
                        && r.precision == precision
                })
                .map(|r| r.requests_per_sec)
        };
        if let (Some(f64_rps), Some(f32_rps), Some(auto_rps)) =
            (prec_rps("f64"), prec_rps("f32-rescore"), prec_rps("auto"))
        {
            println!(
                "{dataset}: f32 screen serves {:.2}x f64 (auto {:.2}x) at {w_min} worker(s)",
                f32_rps / f64_rps,
                auto_rps / f64_rps
            );
            if let Some(i8_rps) = prec_rps("i8-rescore") {
                println!(
                    "{dataset}: i8 screen serves {:.2}x f64 ({:.2}x the f32 screen) at {w_min} worker(s)",
                    i8_rps / f64_rps,
                    i8_rps / f32_rps
                );
            }
        }
    }

    let json = render_serve_json(&meta, &records);
    let path = bench_out_path(&meta);
    std::fs::write(&path, json).expect("write serve digest");
    println!("\nwrote {}", path.display());
}
