//! Serving-runtime digest: writes `BENCH_3.json` — requests/sec and
//! p50/p99 latency for concurrent traffic through the sharded
//! [`MipsServer`], across worker counts and batching policies.
//!
//! The workload is the one the engine alone serves worst: floods of
//! single-user requests (the recommender front-end shape). Each
//! configuration pushes the same request stream through a server and
//! reads throughput and latency off the server's own metrics.
//!
//! Environment knobs: `MIPS_SCALE` scales the models (as everywhere in the
//! harness); `MIPS_SERVE_MAX_WORKERS` caps the worker-count sweep (the
//! regression-gate run pins it to 1 so committed baselines stay
//! machine-comparable); `MIPS_SERVE_REQUESTS` overrides the per-config
//! request count; `MIPS_BENCH_OUT` overrides the output path.

use mips_bench::{
    bench_out_path, build_model, fmt_secs, render_serve_json, scale, BenchMeta, ServeRecord, Table,
};
use mips_core::engine::{BmmFactory, Engine, EngineBuilder, QueryRequest};
use mips_core::serve::ServerBuilder;
use mips_data::catalog::reference_models;
use mips_data::MfModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Submitter threads driving each server configuration.
const SUBMITTERS: usize = 8;
/// Requests each submitter keeps in flight (windowed closed loop). A burst
/// bigger than one gives the micro-batcher a backlog to coalesce, like a
/// real fan-out front-end would.
const BURST: usize = 16;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

/// One configuration's run: `requests` single-user top-10 requests pushed
/// by [`SUBMITTERS`] windowed submitters.
fn run_config(
    engine: &Arc<Engine>,
    model: &MfModel,
    workers: usize,
    batching: bool,
    requests: usize,
) -> (f64, mips_core::serve::ServerMetrics) {
    let server = ServerBuilder::new()
        .engine(Arc::clone(engine))
        .shards(workers)
        .workers(workers)
        .max_batch(32)
        .batch_window(if batching {
            Duration::from_micros(200)
        } else {
            Duration::ZERO
        })
        .batching(batching)
        .queue_capacity(4096)
        .build()
        .expect("bench server assembles");
    // Warm up through the engine the server fronts: solver build + plan
    // happen outside the timed window, and the warmup sample stays out of
    // the server's latency histogram (at gate scale, p99 is only a handful
    // of samples deep — one cold outlier would *be* the p99).
    engine
        .execute(&QueryRequest::top_k(10).users(vec![0]))
        .expect("warmup");

    let num_users = model.num_users();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..SUBMITTERS {
            let server = &server;
            scope.spawn(move || {
                // Spread the remainder so exactly `requests` are sent.
                let mine = requests / SUBMITTERS + usize::from(t < requests % SUBMITTERS);
                let mut sent = 0usize;
                while sent < mine {
                    let burst = BURST.min(mine - sent);
                    let handles: Vec<_> = (0..burst)
                        .map(|i| {
                            // Deterministic spread over users so shards see
                            // even traffic.
                            let n = t + SUBMITTERS * (sent + i);
                            let user = (n.wrapping_mul(2654435761)) % num_users;
                            server
                                .submit(&QueryRequest::top_k(10).users(vec![user]))
                                .expect("bench submit")
                        })
                        .collect();
                    for handle in handles {
                        handle.wait().expect("bench request serves");
                    }
                    sent += burst;
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let metrics = server.metrics();
    (elapsed, metrics)
}

fn main() {
    let meta = BenchMeta::collect("BENCH_3");
    println!(
        "== {}.json serving digest (scale {}, kernel {}, sha {}, {} host threads) ==\n",
        meta.bench, meta.scale, meta.kernel, meta.git_sha, meta.host_threads
    );

    let max_workers = env_usize("MIPS_SERVE_MAX_WORKERS", 8);
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w <= max_workers)
        .collect();
    let requests = env_usize(
        "MIPS_SERVE_REQUESTS",
        ((768.0 * scale()) as usize).clamp(96, 1536),
    );

    let mut records: Vec<ServeRecord> = Vec::new();
    let mut table = Table::new(&[
        "dataset", "workers", "batching", "req/s", "s/req", "p50", "p99", "batch",
    ]);

    for dataset in ["Netflix", "GloVe"] {
        let spec = reference_models()
            .into_iter()
            .find(|s| s.dataset == dataset)
            .expect("family present");
        let model = build_model(&spec);
        // One backend, shared across every configuration: the run times
        // the serving runtime, not index construction or planning.
        let engine = Arc::new(
            EngineBuilder::new()
                .model(Arc::clone(&model))
                .register(BmmFactory)
                .build()
                .expect("bench engine assembles"),
        );

        for &workers in &worker_counts {
            for batching in [true, false] {
                // Adaptive best-of: at tiny CI scale one pass is only a few
                // milliseconds, so repeat inside a 0.3s budget and keep the
                // fastest pass (and its metrics); full-scale passes run
                // once or twice.
                let mut best: Option<(f64, mips_core::serve::ServerMetrics)> = None;
                let mut spent = 0.0;
                let mut runs = 0;
                while runs == 0 || (runs < 5 && spent < 0.3) {
                    let (elapsed, metrics) =
                        run_config(&engine, &model, workers, batching, requests);
                    assert_eq!(metrics.completed as usize, requests);
                    spent += elapsed;
                    let improved = match &best {
                        None => true,
                        Some((fastest, _)) => elapsed < *fastest,
                    };
                    if improved {
                        best = Some((elapsed, metrics));
                    }
                    runs += 1;
                }
                let (elapsed, metrics) = best.expect("at least one pass ran");
                let rps = requests as f64 / elapsed;
                let record = ServeRecord {
                    dataset: dataset.to_string(),
                    workload: "single-user".to_string(),
                    workers,
                    shards: workers,
                    batching,
                    max_batch: 32,
                    batch_window_us: if batching { 200 } else { 0 },
                    requests: requests as u64,
                    mean_batch: metrics.mean_batch_size(),
                    requests_per_sec: rps,
                    seconds_per_request: elapsed / requests as f64,
                    p50_us: metrics.latency.p50_us,
                    p99_us: metrics.latency.p99_us,
                };
                table.row(vec![
                    dataset.to_string(),
                    workers.to_string(),
                    batching.to_string(),
                    format!("{rps:.0}"),
                    fmt_secs(record.seconds_per_request),
                    format!("{:.0}us", record.p50_us),
                    format!("{:.0}us", record.p99_us),
                    format!("{:.1}", record.mean_batch),
                ]);
                records.push(record);
            }
        }
    }

    table.print();

    // Roll-up: worker scaling (batched) and batching speedup, per dataset.
    println!();
    for dataset in ["Netflix", "GloVe"] {
        let rps = |workers: usize, batching: bool| -> Option<f64> {
            records
                .iter()
                .find(|r| r.dataset == dataset && r.workers == workers && r.batching == batching)
                .map(|r| r.requests_per_sec)
        };
        let w_min = *worker_counts.first().unwrap();
        let w_max = *worker_counts.last().unwrap();
        if let (Some(lo), Some(hi)) = (rps(w_min, true), rps(w_max, true)) {
            println!(
                "{dataset}: {w_min}->{w_max} workers scales {:.2}x (batched, {} host threads)",
                hi / lo,
                meta.host_threads
            );
        }
        if let (Some(unbatched), Some(batched)) = (rps(w_max, false), rps(w_max, true)) {
            println!(
                "{dataset}: micro-batching {:.2}x vs unbatched at {w_max} workers",
                batched / unbatched
            );
        }
    }

    let json = render_serve_json(&meta, &records);
    let path = bench_out_path(&meta);
    std::fs::write(&path, json).expect("write serve digest");
    println!("\nwrote {}", path.display());
}
