//! Figure 5: the full evaluation grid.
//!
//! Wall-clock end-to-end time of all five strategies (Blocked MM, MAXIMUS,
//! LEMP, FEXIPRO-SIR, FEXIPRO-SI) on every reference model and
//! K ∈ {1, 5, 10, 50} — 92 model/K combinations, as in the paper. Prints
//! one row per combination plus the paper's headline aggregates: per-pair
//! win counts and geometric-mean speedups.

use mips_bench::{
    build_model, end_to_end_seconds, figure5_backends, fmt_secs, geo_mean, Table, PAPER_KS,
};
use mips_data::catalog::reference_models;

fn main() {
    println!("== Figure 5: end-to-end runtime, all models x K ==\n");
    let mut table = Table::new(&[
        "model",
        "K",
        "Blocked MM",
        "Maximus",
        "LEMP",
        "FEXIPRO-SIR",
        "FEXIPRO-SI",
        "fastest",
    ]);
    // Win counters over {BMM, Maximus, LEMP} as in the paper's three-way
    // comparison, plus speedup samples.
    let mut wins = [0usize; 3];
    let mut maximus_vs_lemp = Vec::new();
    let mut maximus_vs_bmm = Vec::new();
    let mut maximus_vs_fexipro_si = Vec::new();
    let mut combos = 0usize;

    for spec in reference_models() {
        let model = build_model(&spec);
        let backends = figure5_backends(&spec, &model);
        for k in PAPER_KS {
            let times: Vec<f64> = backends
                .iter()
                .map(|b| end_to_end_seconds(b, &model, k))
                .collect();
            let (bmm, maximus, lemp, sir, si) = (times[0], times[1], times[2], times[3], times[4]);
            let fastest_idx = times
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            table.row(vec![
                model.name().to_string(),
                k.to_string(),
                fmt_secs(bmm),
                fmt_secs(maximus),
                fmt_secs(lemp),
                fmt_secs(sir),
                fmt_secs(si),
                backends[fastest_idx].name.to_string(),
            ]);

            let three_way = [bmm, maximus, lemp];
            let w = three_way
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            wins[w] += 1;
            maximus_vs_lemp.push(lemp / maximus);
            maximus_vs_bmm.push(bmm / maximus);
            maximus_vs_fexipro_si.push(si / maximus);
            combos += 1;
        }
    }
    table.print();

    println!("\n-- aggregates over {combos} model/K combinations --");
    println!(
        "fastest of {{BMM, Maximus, LEMP}}: BMM {} | Maximus {} | LEMP {}   (paper: 53 | 28 | 11)",
        wins[0], wins[1], wins[2]
    );
    println!(
        "Maximus vs LEMP:       {:.2}x geo-mean, up to {:.1}x   (paper: 1.8x avg, up to 10.6x)",
        geo_mean(&maximus_vs_lemp),
        maximus_vs_lemp.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "Maximus vs Blocked MM: {:.2}x geo-mean, up to {:.1}x   (paper: 2.7x avg, up to 43.4x)",
        geo_mean(&maximus_vs_bmm),
        maximus_vs_bmm.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "Maximus vs FEXIPRO-SI: {:.2}x geo-mean, up to {:.1}x   (paper: >10x avg)",
        geo_mean(&maximus_vs_fexipro_si),
        maximus_vs_fexipro_si.iter().cloned().fold(0.0, f64::max)
    );
}
