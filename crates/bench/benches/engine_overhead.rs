//! Facade-cost check: `Engine` dispatch vs. direct `MipsSolver` calls.
//!
//! The engine adds request validation, a registry lookup, a lock on the
//! solver cache, and response assembly around each batch. All of that is
//! O(1) per request while serving is O(users x items x f), so the measured
//! ratio should sit at ~1.00x for every backend. This bench prints the
//! evidence.

use mips_bench::BenchBackend;
use mips_bench::{bmm_backend, build_model, engine_overhead, fmt_secs, maximus_config, Table};
use mips_core::engine::{LempFactory, MaximusFactory};
use mips_data::catalog::find;
use mips_lemp::LempConfig;
use std::sync::Arc;

fn main() {
    println!("== Engine facade overhead: dispatch vs. direct solver calls ==\n");
    let spec = find("Netflix", "DSGD", 50).expect("catalog model");
    let model = build_model(&spec);
    println!(
        "model: {} ({} users x {} items, f = {})\n",
        model.name(),
        model.num_users(),
        model.num_items(),
        model.num_factors()
    );

    let backends = [
        bmm_backend(),
        BenchBackend {
            name: "Maximus",
            key: "maximus",
            factory: Arc::new(MaximusFactory::new(maximus_config(&spec, &model))),
        },
        BenchBackend {
            name: "LEMP",
            key: "lemp",
            factory: Arc::new(LempFactory::new(LempConfig::default())),
        },
    ];
    let mut table = Table::new(&["backend", "K", "engine", "direct", "ratio"]);
    for backend in &backends {
        for &k in &[1usize, 10] {
            let sample = engine_overhead(backend, &model, k, 5);
            table.row(vec![
                backend.name.to_string(),
                k.to_string(),
                fmt_secs(sample.engine_seconds),
                fmt_secs(sample.direct_seconds),
                format!("{:.3}x", sample.ratio()),
            ]);
        }
    }
    table.print();
    println!("\nexpected shape: ratio ~= 1.00x everywhere — the facade is free per batch.");
}
