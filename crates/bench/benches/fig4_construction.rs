//! Figure 4: index construction is orders of magnitude cheaper than
//! retrieval.
//!
//! For LEMP and FEXIPRO on Netflix f ∈ {10, 50, 100}, compare index
//! construction time against the end-to-end K = 1 retrieval time for all
//! users (the paper plots both on a log axis). This gap is what makes
//! OPTIMUS affordable: it can always build the full index just to test it.

use mips_bench::{build_model, fmt_secs, time_seconds, Table};
use mips_core::engine::{FexiproFactory, LempFactory, SolverFactory};
use mips_data::catalog::find;
use mips_lemp::LempConfig;
use std::sync::Arc;

fn main() {
    println!("== Figure 4: construction vs end-to-end retrieval (K = 1) ==\n");
    let mut table = Table::new(&[
        "model",
        "index",
        "construction",
        "end-to-end",
        "constr. share",
    ]);
    let mut worst_ratio = f64::INFINITY;
    for f in [10usize, 50, 100] {
        let spec = find("Netflix", "DSGD", f).expect("catalog model");
        let model = build_model(&spec);
        let factories: [Arc<dyn SolverFactory>; 3] = [
            Arc::new(LempFactory::new(LempConfig::default())),
            Arc::new(FexiproFactory::si()),
            Arc::new(FexiproFactory::sir()),
        ];
        for factory in factories {
            let solver = factory.build(&model).expect("bench index builds");
            let (serve, _) = time_seconds(|| solver.query_all(1));
            let total = solver.build_seconds() + serve;
            worst_ratio = worst_ratio.min(total / solver.build_seconds().max(1e-12));
            table.row(vec![
                model.name().to_string(),
                solver.name().to_string(),
                fmt_secs(solver.build_seconds()),
                fmt_secs(total),
                format!("{:.2}%", solver.build_seconds() / total * 100.0),
            ]);
        }
    }
    table.print();
    println!(
        "\nretrieval is at least {worst_ratio:.0}x construction; the paper reports \
         construction at 0.5% (LEMP) / 1.9% (FEXIPRO) of a K = 1 batch run."
    );
}
