//! Figure 7: OPTIMUS's runtime estimates vs user sample ratio.
//!
//! KDD-REF f=51, K=1: for a range of sample ratios, run the estimation
//! phase four times with different seeds and report the mean ± standard
//! deviation of each strategy's estimated total runtime next to its true
//! measured runtime. The paper's observations, reproduced here:
//!
//! * estimates for BMM, MAXIMUS and FEXIPRO are low-variance even at tiny
//!   samples;
//! * LEMP's estimates are high-variance because its per-bucket retrieval
//!   tuning is itself sample-dependent — two samples can pick different
//!   pruning strategies;
//! * despite the variance, the BMM-vs-index decision comes out right with
//!   well under 1 % of users.

use mips_bench::{build_model, figure5_backends, fmt_secs, mean, std_dev, BenchBackend, Table};
use mips_core::engine::{LempFactory, SolverFactory};
use mips_core::optimus::{Optimus, OptimusConfig};
use mips_data::catalog::find;
use mips_lemp::LempConfig;
use std::sync::Arc;

fn main() {
    println!("== Figure 7: estimate quality vs sample ratio (KDD-REF f=51, K=1) ==\n");
    let spec = find("KDD", "REF", 51).expect("catalog model");
    let model = build_model(&spec);
    let k = 1;

    // True serving runtimes (solid lines in the paper's plot; construction
    // excluded — the estimates extrapolate serving time).
    let backends = figure5_backends(&spec, &model);
    println!("true serving runtimes (construction excluded):");
    for backend in &backends {
        let solver = backend.factory.build(&model).expect("bench index builds");
        let (serve, _) = mips_bench::time_seconds(|| solver.query_all(k));
        println!("  {:<12} {}", backend.name, fmt_secs(serve));
    }
    println!();

    // Index candidates in Fig. 7's legend order (BMM is implicit).
    let indexes: Vec<BenchBackend> = backends
        .iter()
        .filter(|b| b.key != "bmm")
        .cloned()
        .collect();

    // The paper sweeps 0.01%..1% of 1M users; at our scaled-down user count
    // the same *absolute* sample sizes correspond to larger ratios.
    let ratios = [0.01, 0.02, 0.05, 0.10, 0.20];
    let runs_per_ratio = 4;
    let mut table = Table::new(&[
        "sample",
        "users",
        "Blocked MM",
        "Maximus",
        "LEMP",
        "FEXIPRO-SIR",
        "FEXIPRO-SI",
        "decision",
    ]);
    for &ratio in &ratios {
        // Per-strategy estimate collections across seeds.
        let mut series: Vec<Vec<f64>> = vec![Vec::new(); indexes.len() + 1];
        let mut sampled_users = 0;
        let mut right_side = 0usize;
        for run in 0..runs_per_ratio {
            let optimus = Optimus::new(OptimusConfig {
                sample_fraction: ratio,
                // Tiny cache floor: let the ratio drive the sample size so
                // the sweep actually varies (the real floor would clamp the
                // small ratios at our scaled-down user counts).
                cache: mips_linalg::CacheConfig {
                    l1_bytes: 1024,
                    l2_bytes: 2048,
                    l3_bytes: 4096,
                },
                early_stopping: false, // full-sample estimates, as in Fig. 7
                seed: 0xF1607 + run as u64,
                ..OptimusConfig::default()
            });
            // Rebuild LEMP with a run-specific tuner seed: the original
            // system re-tunes per run, which is the variance source.
            let run_indexes: Vec<Arc<dyn SolverFactory>> = indexes
                .iter()
                .map(|b| -> Arc<dyn SolverFactory> {
                    if b.key == "lemp" {
                        let cfg = LempConfig::default();
                        Arc::new(LempFactory::new(LempConfig {
                            seed: cfg.seed + 7919 * run as u64,
                            ..cfg
                        }))
                    } else {
                        Arc::clone(&b.factory)
                    }
                })
                .collect();
            let estimates = optimus.estimate_only(&model, k, &run_indexes);
            sampled_users = estimates[0].sampled_users;
            for (i, e) in estimates.iter().enumerate() {
                series[i].push(e.estimated_total_seconds);
            }
            // Did this run pick an index over BMM (the correct side here)?
            let best = estimates
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.estimated_total_seconds
                        .total_cmp(&b.1.estimated_total_seconds)
                })
                .unwrap()
                .0;
            if best != 0 {
                right_side += 1;
            }
        }
        let mut cells = vec![format!("{:.1}%", ratio * 100.0), sampled_users.to_string()];
        for s in &series {
            cells.push(format!("{}±{}", fmt_secs(mean(s)), fmt_secs(std_dev(s))));
        }
        cells.push(format!("index {right_side}/{runs_per_ratio}"));
        table.row(cells);
    }
    table.print();
    println!(
        "\npaper shape: the index-vs-BMM decision is already right at the smallest \
         samples despite per-strategy estimate noise. BMM's huge spread at the \
         smallest samples (the floor is disabled for this sweep) is precisely why \
         §IV-A requires the sampled user block to occupy the L2 cache before \
         timing BMM."
    );
}
