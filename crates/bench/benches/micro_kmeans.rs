//! Micro-benchmark: k-means vs spherical clustering (§III-A).
//!
//! MAXIMUS clusters users with plain Euclidean k-means rather than the
//! spherical clustering of Koenigstein et al. The paper's justification:
//! k-means' max user–centroid angles are only ~7 % worse while clustering
//! runs 2–3× faster. This bench measures both claims on a scaled user
//! matrix.

use mips_bench::{build_model, fmt_secs, time_seconds, Table};
use mips_clustering::{kmeans, max_angles_per_cluster, spherical_kmeans, KMeansConfig};
use mips_data::catalog::find;

fn main() {
    println!("== Micro: k-means vs spherical clustering for MAXIMUS (§III-A) ==\n");
    let mut table = Table::new(&[
        "model",
        "algorithm",
        "time",
        "mean θ_b (rad)",
        "θ_b vs spherical",
    ]);
    for (dataset, training, f) in [("Netflix", "DSGD", 50), ("R2", "NOMAD", 50)] {
        let spec = find(dataset, training, f).expect("catalog model");
        let model = build_model(&spec);
        let cfg = KMeansConfig {
            k: 8,
            max_iters: 3,
            seed: 0xC1,
        };
        let (t_euclid, euclid) = time_seconds(|| kmeans(model.users(), &cfg));
        let (t_sphere, sphere) = time_seconds(|| spherical_kmeans(model.users(), &cfg));
        let mean_theta = |cl: &mips_clustering::Clustering| {
            let thetas = max_angles_per_cluster(model.users(), cl);
            thetas.iter().sum::<f64>() / thetas.len() as f64
        };
        let te = mean_theta(&euclid);
        let ts = mean_theta(&sphere);
        table.row(vec![
            model.name().to_string(),
            "k-means".into(),
            fmt_secs(t_euclid),
            format!("{te:.3}"),
            format!("{:+.1}%", (te / ts - 1.0) * 100.0),
        ]);
        table.row(vec![
            model.name().to_string(),
            "spherical".into(),
            fmt_secs(t_sphere),
            format!("{ts:.3}"),
            "baseline".into(),
        ]);
    }
    table.print();
    println!(
        "\npaper: k-means' θ values were ~7% above spherical clustering's while \
         running 2-3x faster, for a 5-10% end-to-end gain."
    );
}
