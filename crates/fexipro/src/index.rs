//! The FEXIPRO index: norm-ordered scan through a cascade of pruning
//! filters.

use crate::config::FexiproConfig;
use crate::quant::{int_upper_bound, quantize_items, quantize_user, QuantizedItems};
use crate::transform::{Reduction, SvdStage};
use mips_data::MfModel;
use mips_linalg::kernels::{dot, norm2, suffix_norms};
use mips_linalg::Matrix;
use mips_topk::{TopKHeap, TopKList};

/// Relative slack added to every pruning bound (scaled by the magnitude of
/// the quantities involved) so floating-point rounding and the orthogonal
/// transform's accumulation error can never prune a true top-k item.
const BOUND_EPS: f64 = 1e-9;

/// Work counters across queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct FexiproStats {
    /// Items cut off by the descending-norm length bound.
    pub length_pruned: u64,
    /// Items pruned by the reduction (R) angular filter.
    pub reduction_pruned: u64,
    /// Items pruned by the SVD (S) partial-product filter.
    pub svd_pruned: u64,
    /// Items pruned by the integer (I) bound.
    pub int_pruned: u64,
    /// Items verified with a full-precision inner product.
    pub dots_computed: u64,
}

/// Per-user precomputed query state.
#[derive(Debug, Clone)]
struct UserCtx {
    /// Original user vector.
    original: Vec<f64>,
    /// `‖u‖`.
    norm: f64,
    /// Transformed user `Vᵀu` (equals `original` when SVD is disabled).
    t: Vec<f64>,
    /// `‖t[h..]‖` — SVD-stage suffix factor.
    t_suffix_at_h: f64,
    /// Unit transformed user (zeros for a zero user).
    unit: Vec<f64>,
    /// `‖unit[h_r..]‖` — reduction-stage suffix factor.
    unit_suffix_at_hr: f64,
    /// Quantized transformed user and its scale.
    q: Vec<u32>,
    q_scale: f64,
}

/// A built FEXIPRO index (presets: SI and SIR; see [`FexiproConfig`]).
///
/// Point-query oriented: users are served one at a time in descending-norm
/// item order. User preprocessing (transform + quantization) happens at
/// build time, mirroring the original system's batch preprocessing step.
#[derive(Debug, Clone)]
pub struct FexiproIndex {
    config: FexiproConfig,
    num_factors: usize,
    /// Item ids in descending-norm order.
    ids: Vec<u32>,
    /// Original item vectors, gathered in scan order (exact verification).
    originals: Matrix<f64>,
    /// Item norms, descending.
    norms: Vec<f64>,
    /// Transformed items in scan order.
    t_items: Matrix<f64>,
    /// `‖tᵢ[h..]‖` per item.
    t_suffix_at_h: Vec<f64>,
    /// SVD checkpoint.
    h: usize,
    /// Reduction checkpoint (`≈ h/2`; the R filter runs before S).
    h_r: usize,
    svd: Option<SvdStage>,
    quant: Option<QuantizedItems>,
    reduction: Option<Reduction>,
    /// Precomputed per-user contexts for the model's users.
    users: Vec<UserCtx>,
}

impl FexiproIndex {
    /// Builds the index over the model's items and preprocesses its users.
    ///
    /// # Panics
    /// Panics if the configuration is invalid. SVD failures (which cannot
    /// happen for finite validated models) degrade to the identity
    /// transform.
    pub fn build(model: &MfModel, config: &FexiproConfig) -> FexiproIndex {
        config.validate();
        let f = model.num_factors();

        // Sort items by norm descending (ties toward smaller id).
        let mut order: Vec<(f64, u32)> = model
            .items()
            .iter_rows()
            .enumerate()
            .map(|(i, row)| (norm2(row), i as u32))
            .collect();
        // `total_cmp` instead of `partial_cmp(..).expect(..)`: models are
        // validated finite upstream, but a serving-path sort must never be
        // able to panic on a stray NaN.
        order.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
        let ids: Vec<u32> = order.iter().map(|&(_, id)| id).collect();
        let norms: Vec<f64> = order.iter().map(|&(n, _)| n).collect();
        let idx: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
        let originals = model.items().gather_rows(&idx);

        // S stage: orthogonal energy-ordering transform.
        let svd = if config.enable_svd {
            SvdStage::build(model.items(), config.energy_target).ok()
        } else {
            None
        };
        let t_items = match &svd {
            Some(stage) => stage.transform(&originals),
            None => originals.clone(),
        };
        let h = svd.as_ref().map_or_else(|| f.div_ceil(2).max(1), |s| s.h);
        let t_suffix_at_h: Vec<f64> = t_items
            .iter_rows()
            .map(|row| suffix_norms(row)[h])
            .collect();

        // I stage: integer quantization of the transformed items.
        let quant = config
            .enable_int
            .then(|| quantize_items(&t_items, config.int_bits));

        // R stage: norm-equalized early angular filter at a shorter
        // checkpoint.
        let h_r = (h / 2).max(1);
        let reduction = config
            .enable_reduction
            .then(|| Reduction::build(&t_items, h_r));

        let mut index = FexiproIndex {
            config: *config,
            num_factors: f,
            ids,
            originals,
            norms,
            t_items,
            t_suffix_at_h,
            h,
            h_r,
            svd,
            quant,
            reduction,
            users: Vec::new(),
        };
        // Transform every user in one matrix multiply (the original system
        // preprocesses the full user set up front, §V-A); per-user contexts
        // then reuse the transformed rows.
        let t_users = match &index.svd {
            Some(stage) => stage.transform(model.users()),
            None => model.users().clone(),
        };
        index.users = (0..model.num_users())
            .map(|u| index.ctx_from_transformed(model.users().row(u), t_users.row(u).to_vec()))
            .collect();
        index
    }

    /// Number of items indexed.
    pub fn num_items(&self) -> usize {
        self.ids.len()
    }

    /// The SVD checkpoint `h` (for diagnostics and ablations).
    pub fn checkpoint(&self) -> usize {
        self.h
    }

    fn make_ctx(&self, user: &[f64]) -> UserCtx {
        assert_eq!(
            user.len(),
            self.num_factors,
            "FexiproIndex: user dimensionality mismatch"
        );
        let t: Vec<f64> = match &self.svd {
            Some(stage) => {
                let m = Matrix::from_vec(1, user.len(), user.to_vec()).expect("1 x f");
                stage.transform(&m).into_vec()
            }
            None => user.to_vec(),
        };
        self.ctx_from_transformed(user, t)
    }

    /// Builds a query context from the original vector and its already
    /// transformed counterpart.
    fn ctx_from_transformed(&self, user: &[f64], t: Vec<f64>) -> UserCtx {
        let norm = norm2(user);
        let t_suffix_at_h = suffix_norms(&t)[self.h];
        let unit: Vec<f64> = if norm > 0.0 {
            t.iter().map(|&v| v / norm).collect()
        } else {
            vec![0.0; t.len()]
        };
        let unit_suffix_at_hr = suffix_norms(&unit)[self.h_r];
        let (q, q_scale) = if self.config.enable_int {
            quantize_user(&t, self.config.int_bits)
        } else {
            (Vec::new(), 1.0)
        };
        UserCtx {
            original: user.to_vec(),
            norm,
            t,
            t_suffix_at_h,
            unit,
            unit_suffix_at_hr,
            q,
            q_scale,
        }
    }

    /// Top-k for user `u` of the model the index was built from.
    pub fn query_user(&self, u: usize, k: usize) -> TopKList {
        let mut stats = FexiproStats::default();
        self.query_ctx(&self.users[u], k, &mut stats)
    }

    /// Top-k for user `u`, accumulating work counters.
    pub fn query_user_with_stats(&self, u: usize, k: usize, stats: &mut FexiproStats) -> TopKList {
        self.query_ctx(&self.users[u], k, stats)
    }

    /// Top-k for an ad-hoc user vector (context computed on the fly).
    pub fn query_vector(&self, user: &[f64], k: usize) -> TopKList {
        let ctx = self.make_ctx(user);
        let mut stats = FexiproStats::default();
        self.query_ctx(&ctx, k, &mut stats)
    }

    fn query_ctx(&self, ctx: &UserCtx, k: usize, stats: &mut FexiproStats) -> TopKList {
        let mut heap = TopKHeap::new(k);
        let n = self.ids.len();
        for r in 0..n {
            let mag = ctx.norm * self.norms[r];
            let slack = mag * BOUND_EPS;
            if heap.is_full() {
                let t = heap.threshold();
                // Length: items descend in norm, so one failure ends the
                // scan.
                if mag + slack < t {
                    stats.length_pruned += (n - r) as u64;
                    break;
                }
                // R: norm-equalized angular filter at the short checkpoint.
                if let Some(red) = &self.reduction {
                    let partial = dot(&ctx.unit[..self.h_r], red.prefix.row(r));
                    let bound =
                        ctx.norm * red.max_norm * (partial + ctx.unit_suffix_at_hr * red.suffix[r]);
                    if bound + ctx.norm * red.max_norm * BOUND_EPS < t {
                        stats.reduction_pruned += 1;
                        continue;
                    }
                }
                // S: partial product in the energy-ordered basis plus
                // Cauchy–Schwarz on the suffix.
                if self.config.enable_svd || self.svd.is_none() {
                    let partial = dot(&ctx.t[..self.h], &self.t_items.row(r)[..self.h]);
                    let bound = partial + ctx.t_suffix_at_h * self.t_suffix_at_h[r];
                    if bound + slack < t {
                        stats.svd_pruned += 1;
                        continue;
                    }
                }
                // I: integer upper bound on |u·i|.
                if let Some(q) = &self.quant {
                    let bound = int_upper_bound(&ctx.q, ctx.q_scale, q, r);
                    if bound + slack < t {
                        stats.int_pruned += 1;
                        continue;
                    }
                }
            }
            let score = dot(&ctx.original, self.originals.row(r));
            heap.push(score, self.ids[r]);
            stats.dots_computed += 1;
        }
        heap.into_sorted()
    }

    /// Top-k for every user of the model, one point query at a time.
    pub fn query_all(&self, k: usize) -> Vec<TopKList> {
        (0..self.users.len())
            .map(|u| self.query_user(u, k))
            .collect()
    }

    /// Number of preprocessed users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_data::synth::{synth_model, SynthConfig};

    fn model(decay: f64, skew: f64) -> MfModel {
        synth_model(&SynthConfig {
            num_users: 40,
            num_items: 300,
            num_factors: 16,
            spectral_decay: decay,
            item_norm_skew: skew,
            seed: 4242,
            ..SynthConfig::default()
        })
    }

    fn reference(model: &MfModel, u: usize, k: usize) -> TopKList {
        let mut heap = TopKHeap::new(k);
        for i in 0..model.num_items() {
            heap.push(dot(model.users().row(u), model.items().row(i)), i as u32);
        }
        heap.into_sorted()
    }

    #[test]
    fn si_exact_against_brute_force() {
        let m = model(0.9, 0.8);
        let index = FexiproIndex::build(&m, &FexiproConfig::si());
        for k in [1usize, 5, 20] {
            for u in (0..m.num_users()).step_by(5) {
                let got = index.query_user(u, k);
                let want = reference(&m, u, k);
                assert_eq!(got.items, want.items, "SI k={k} u={u}");
                for (a, b) in got.scores.iter().zip(&want.scores) {
                    assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn sir_exact_against_brute_force() {
        let m = model(0.85, 1.0);
        let index = FexiproIndex::build(&m, &FexiproConfig::sir());
        for k in [1usize, 7] {
            for u in (0..m.num_users()).step_by(7) {
                let got = index.query_user(u, k);
                let want = reference(&m, u, k);
                assert_eq!(got.items, want.items, "SIR k={k} u={u}");
            }
        }
    }

    #[test]
    fn every_stage_combination_is_exact() {
        let m = model(0.9, 0.6);
        for (s, i, r) in [
            (false, false, false),
            (true, false, false),
            (false, true, false),
            (false, false, true),
            (true, true, true),
        ] {
            let cfg = FexiproConfig {
                enable_svd: s,
                enable_int: i,
                enable_reduction: r,
                ..FexiproConfig::si()
            };
            let index = FexiproIndex::build(&m, &cfg);
            for u in (0..m.num_users()).step_by(11) {
                let got = index.query_user(u, 5);
                let want = reference(&m, u, 5);
                assert_eq!(got.items, want.items, "cfg s={s} i={i} r={r} u={u}");
            }
        }
    }

    #[test]
    fn pruning_kicks_in_on_decayed_spectra() {
        let m = model(0.75, 1.0);
        let index = FexiproIndex::build(&m, &FexiproConfig::si());
        let mut stats = FexiproStats::default();
        for u in 0..m.num_users() {
            let _ = index.query_user_with_stats(u, 3, &mut stats);
        }
        let total = (m.num_users() * m.num_items()) as u64;
        assert!(
            stats.dots_computed < total / 2,
            "verified {} of {} pairs — filters are not pruning",
            stats.dots_computed,
            total
        );
        assert!(stats.svd_pruned + stats.int_pruned + stats.length_pruned > 0);
    }

    #[test]
    fn query_vector_matches_query_user() {
        let m = model(0.9, 0.5);
        let index = FexiproIndex::build(&m, &FexiproConfig::sir());
        for u in [0usize, 13, 39] {
            assert_eq!(
                index.query_vector(m.users().row(u), 6).items,
                index.query_user(u, 6).items
            );
        }
    }

    #[test]
    fn zero_user_and_k_edge_cases() {
        let m = model(0.9, 0.5);
        let index = FexiproIndex::build(&m, &FexiproConfig::si());
        let zero = vec![0.0; m.num_factors()];
        let got = index.query_vector(&zero, 4);
        assert_eq!(got.len(), 4);
        // All scores are exactly zero; ids must be the four smallest.
        assert_eq!(got.items, vec![0, 1, 2, 3]);
        assert!(index.query_user(0, 0).is_empty());
        let all = index.query_user(0, 10_000);
        assert_eq!(all.len(), m.num_items());
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn rejects_wrong_width_vector() {
        let m = model(0.9, 0.5);
        let index = FexiproIndex::build(&m, &FexiproConfig::si());
        let _ = index.query_vector(&[1.0; 3], 2);
    }
}
