//! The integer ("I") stage: quantized upper bounds on inner products.
//!
//! Each vector `x` is mapped to the integer vector `q(x)[j] = ⌈|x_j|·s⌉`
//! with a scale `s` chosen so values fit in the configured bit width. Since
//! every quantized magnitude over-estimates the scaled true magnitude,
//!
//! `Σ q(u)_j q(i)_j / (s_u s_i) ≥ Σ |u_j||i_j| ≥ |u·i| ≥ u·i`
//!
//! — a one-sided bound that is valid for *any* threshold sign, computed
//! entirely in integer arithmetic.

use mips_linalg::Matrix;

/// Quantized items plus their scale.
#[derive(Debug, Clone)]
pub struct QuantizedItems {
    /// `⌈|t_ij|·scale⌉` per item, row-major (`n × f`).
    pub q: Vec<u32>,
    /// Number of coordinates per item.
    pub f: usize,
    /// The shared scale `s_i`.
    pub scale: f64,
}

/// Quantizes all item rows with a shared scale derived from the global
/// maximum absolute coordinate.
///
/// All-zero matrices get `scale = 1` (all quantized values are zero and the
/// bound is exactly 0, which is still an upper bound on |u·i| = 0).
pub fn quantize_items(items: &Matrix<f64>, bits: u32) -> QuantizedItems {
    let max_abs = items.as_slice().iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    let scale = scale_for(max_abs, bits);
    let q = items
        .as_slice()
        .iter()
        .map(|&v| (v.abs() * scale).ceil() as u32)
        .collect();
    QuantizedItems {
        q,
        f: items.cols(),
        scale,
    }
}

/// Quantizes a single user vector with its own scale.
pub fn quantize_user(user: &[f64], bits: u32) -> (Vec<u32>, f64) {
    let max_abs = user.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    let scale = scale_for(max_abs, bits);
    (
        user.iter()
            .map(|&v| (v.abs() * scale).ceil() as u32)
            .collect(),
        scale,
    )
}

/// Integer dot product of a quantized user against item row `r`, divided by
/// the scales: an upper bound on `|u·i|`.
#[inline]
pub fn int_upper_bound(qu: &[u32], user_scale: f64, items: &QuantizedItems, r: usize) -> f64 {
    let row = &items.q[r * items.f..(r + 1) * items.f];
    debug_assert_eq!(qu.len(), items.f);
    let mut acc: u64 = 0;
    for (&a, &b) in qu.iter().zip(row) {
        acc += a as u64 * b as u64;
    }
    acc as f64 / (user_scale * items.scale)
}

/// Scale mapping the largest magnitude to the top of the bit range.
///
/// Delegates to the shared [`mips_linalg::quant::scale_for`] policy so the
/// FEXIPRO integer stage and the engine's int8 screen tier quantize with the
/// same degenerate-input handling (all-zero blocks get scale 1). A subnormal
/// `max_abs` drives the shared policy's ratio to +∞ — the int8 tier gates on
/// that and falls back to f64, but FEXIPRO has no fallback path, so the
/// scale clamps to 1 here: quantized magnitudes `⌈|x|⌉` still over-estimate
/// the (tiny) true magnitudes, keeping the bound valid, and the u64 dot
/// accumulator stays far from overflow instead of saturating at `u32::MAX`
/// codes.
fn scale_for(max_abs: f64, bits: u32) -> f64 {
    let scale = mips_linalg::quant::scale_for(max_abs, ((1u64 << bits) - 1) as f64);
    if scale.is_finite() {
        scale
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_linalg::kernels::dot;

    fn random_matrix(n: usize, f: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed | 1;
        Matrix::from_fn(n, f, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 6.0 - 3.0
        })
    }

    #[test]
    fn bound_dominates_absolute_dot() {
        let items = random_matrix(50, 9, 3);
        let users = random_matrix(6, 9, 4);
        let qi = quantize_items(&items, 12);
        for u in 0..users.rows() {
            let (qu, su) = quantize_user(users.row(u), 12);
            for r in 0..items.rows() {
                let truth = dot(users.row(u), items.row(r));
                let bound = int_upper_bound(&qu, su, &qi, r);
                assert!(
                    bound >= truth.abs() - 1e-12,
                    "u={u} r={r}: bound {bound} < |{truth}|"
                );
            }
        }
    }

    #[test]
    fn more_bits_give_tighter_bounds() {
        let items = random_matrix(30, 8, 9);
        let user_m = random_matrix(1, 8, 10);
        let user = user_m.row(0);
        let mut prev_total = f64::INFINITY;
        for bits in [4u32, 8, 12, 16] {
            let qi = quantize_items(&items, bits);
            let (qu, su) = quantize_user(user, bits);
            let total: f64 = (0..30).map(|r| int_upper_bound(&qu, su, &qi, r)).sum();
            assert!(
                total <= prev_total + 1e-9,
                "bits={bits}: {total} > {prev_total}"
            );
            prev_total = total;
        }
        // At 16 bits the bound should be close to Σ|u_j||i_j|.
        let qi = quantize_items(&items, 16);
        let (qu, su) = quantize_user(user, 16);
        for r in 0..5 {
            let abs_sum: f64 = user
                .iter()
                .zip(items.row(r))
                .map(|(a, b)| (a * b).abs())
                .sum();
            let bound = int_upper_bound(&qu, su, &qi, r);
            assert!((bound - abs_sum) / (1.0 + abs_sum) < 0.01);
        }
    }

    #[test]
    fn zero_vectors_quantize_cleanly() {
        let items = Matrix::<f64>::zeros(3, 4);
        let qi = quantize_items(&items, 12);
        assert_eq!(qi.scale, 1.0);
        let (qu, su) = quantize_user(&[0.0; 4], 12);
        assert_eq!(int_upper_bound(&qu, su, &qi, 1), 0.0);
    }

    #[test]
    fn subnormal_vectors_clamp_scale_and_keep_the_bound_valid() {
        // A subnormal max_abs drives the shared scale policy to +∞; the
        // FEXIPRO wrapper must clamp to 1 so codes stay tiny and the u64
        // accumulator cannot overflow, while the bound stays one-sided.
        let items = Matrix::from_fn(3, 4, |r, c| ((r + c) as f64 + 1.0) * 1.0e-320);
        let qi = quantize_items(&items, 12);
        assert_eq!(qi.scale, 1.0);
        assert!(qi.q.iter().all(|&q| q <= 1));
        let user = vec![2.0e-320; 4];
        let (qu, su) = quantize_user(&user, 12);
        assert_eq!(su, 1.0);
        for r in 0..3 {
            let truth = dot(&user, items.row(r));
            let bound = int_upper_bound(&qu, su, &qi, r);
            assert!(bound.is_finite());
            assert!(bound >= truth.abs());
        }
    }

    #[test]
    fn no_overflow_at_max_bits() {
        // Worst case: every coordinate maps to 2^30 − 1; with f = 512 the
        // u64 accumulator holds Σ (2^30)² · 512 = 2^69... so cap f by bits.
        // At the default 12 bits: (2^12)² · f fits u64 for any sane f.
        let items = Matrix::from_fn(2, 512, |_, _| 1.0);
        let qi = quantize_items(&items, 12);
        let (qu, su) = quantize_user(&vec![1.0; 512], 12);
        let bound = int_upper_bound(&qu, su, &qi, 0);
        assert!(bound.is_finite());
        assert!(bound >= 512.0 - 1e-9);
    }
}
