//! FEXIPRO configuration and the SI / SIR presets.

/// Configuration for [`crate::FexiproIndex`].
#[derive(Debug, Clone, Copy)]
pub struct FexiproConfig {
    /// Enable the SVD partial-product filter (the "S" stage).
    pub enable_svd: bool,
    /// Enable the integer upper-bound filter (the "I" stage).
    pub enable_int: bool,
    /// Enable the reduction filter (the "R" stage).
    pub enable_reduction: bool,
    /// Energy fraction the SVD checkpoint must capture; the checkpoint `h`
    /// is the shortest coordinate prefix reaching it.
    pub energy_target: f64,
    /// Bits of integer precision for the "I" stage quantization.
    pub int_bits: u32,
}

impl Default for FexiproConfig {
    fn default() -> Self {
        FexiproConfig::si()
    }
}

impl FexiproConfig {
    /// FEXIPRO-SI: SVD + integer pruning (the faster preset in the paper).
    pub fn si() -> Self {
        FexiproConfig {
            enable_svd: true,
            enable_int: true,
            enable_reduction: false,
            energy_target: 0.90,
            int_bits: 12,
        }
    }

    /// FEXIPRO-SIR: all pruning strategies enabled.
    pub fn sir() -> Self {
        FexiproConfig {
            enable_reduction: true,
            ..FexiproConfig::si()
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on degenerate values.
    pub fn validate(&self) {
        assert!(
            self.energy_target > 0.0 && self.energy_target <= 1.0,
            "FexiproConfig: energy_target must be in (0, 1]"
        );
        assert!(
            (1..=30).contains(&self.int_bits),
            "FexiproConfig: int_bits must be in [1, 30]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_only_in_reduction() {
        let si = FexiproConfig::si();
        let sir = FexiproConfig::sir();
        assert!(!si.enable_reduction);
        assert!(sir.enable_reduction);
        assert_eq!(si.energy_target, sir.energy_target);
        si.validate();
        sir.validate();
    }

    #[test]
    #[should_panic(expected = "int_bits")]
    fn rejects_huge_bit_width() {
        FexiproConfig {
            int_bits: 40,
            ..FexiproConfig::si()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "energy_target")]
    fn rejects_zero_energy() {
        FexiproConfig {
            energy_target: 0.0,
            ..FexiproConfig::si()
        }
        .validate();
    }
}
