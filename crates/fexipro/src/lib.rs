//! A Rust port of FEXIPRO, the exact MIPS index of Li et al. (SIGMOD 2017
//! \[21\]) — the second state-of-the-art baseline in the paper's evaluation.
//!
//! FEXIPRO is a *point-query* index (one user at a time; it does not batch
//! users, which is why the paper's OPTIMUS can apply its incremental t-test
//! to it, §IV-A). Items are scanned in descending-norm order and run through
//! a cascade of pruning filters before an exact verification dot:
//!
//! * **S — SVD transform** ([`transform`]): an orthogonal change of basis
//!   from the item matrix's SVD reorders coordinates by energy, so a partial
//!   inner product over the first `h` coordinates plus a Cauchy–Schwarz
//!   suffix bound is tight.
//! * **I — integer quantization** ([`quant`]): scaled ceil-rounded integer
//!   vectors whose integer dot product upper-bounds the magnitude of the
//!   real one, replacing floating-point multiplies with cheap integer ops.
//! * **R — reduction** ([`transform::Reduction`]): appends one coordinate to
//!   equalize item norms (the MIPS→cosine embedding of Bachrach et al.),
//!   giving a norm-independent angular bound. As in the paper's
//!   measurements, the extra filter's overhead can exceed its benefit —
//!   FEXIPRO-SIR is often no faster than FEXIPRO-SI.
//!
//! The paper benchmarks the presets [`FexiproConfig::si`] (SVD + integer)
//! and [`FexiproConfig::sir`] (all three); both are reproduced here.
//!
//! Like our LEMP port, all pruning bounds are inflated by a relative epsilon
//! and survivors are verified against the *original* vectors, so results are
//! bit-identical to brute force.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod index;
pub mod quant;
pub mod transform;

pub use config::FexiproConfig;
pub use index::{FexiproIndex, FexiproStats};
