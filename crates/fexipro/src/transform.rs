//! The S (SVD) and R (reduction) transforms.

use mips_linalg::kernels::{norm2, suffix_norms};
use mips_linalg::svd::SvdBasis;
use mips_linalg::{LinalgError, Matrix};

/// The SVD ("S") stage: transformed item/user coordinates ordered by energy,
/// with the per-item suffix norms needed for the Cauchy–Schwarz bound at the
/// checkpoint `h`.
#[derive(Debug, Clone)]
pub struct SvdStage {
    /// The orthogonal basis (kept to transform query users).
    pub basis: SvdBasis<f64>,
    /// Checkpoint: number of leading coordinates scanned before bounding.
    pub h: usize,
}

impl SvdStage {
    /// Builds the stage from the item matrix, choosing `h` as the shortest
    /// prefix capturing `energy_target` of the spectrum.
    pub fn build(items: &Matrix<f64>, energy_target: f64) -> Result<SvdStage, LinalgError> {
        let basis = SvdBasis::from_rows(items)?;
        let h = basis.checkpoint_for_energy(energy_target);
        Ok(SvdStage { basis, h })
    }

    /// Applies `x ↦ Vᵀx` to every row.
    pub fn transform(&self, m: &Matrix<f64>) -> Matrix<f64> {
        self.basis.transform(m)
    }
}

/// The reduction ("R") stage: every transformed item is embedded as
/// `[tᵢ ; eᵢ] / M` with `eᵢ = √(M² − ‖tᵢ‖²)` and `M = max ‖tᵢ‖`, making all
/// embedded items unit vectors. The inner product becomes
/// `u·i = ‖u‖·M·cos(û_ext, d̂ᵢ)`, which yields a norm-independent partial
/// cosine bound over the first `h` coordinates.
#[derive(Debug, Clone)]
pub struct Reduction {
    /// The maximum transformed item norm `M`.
    pub max_norm: f64,
    /// Per item: the first `h` coordinates of the unit embedding `d̂ᵢ`
    /// (the extension coordinate never lands in the prefix since `h < f+1`).
    pub prefix: Matrix<f64>,
    /// Per item: `‖d̂ᵢ[h..]‖` including the extension coordinate.
    pub suffix: Vec<f64>,
}

impl Reduction {
    /// Builds the reduction over transformed items with checkpoint `h`.
    ///
    /// # Panics
    /// Panics if `h` is out of `[1, f]` or `items` is empty.
    pub fn build(transformed_items: &Matrix<f64>, h: usize) -> Reduction {
        let n = transformed_items.rows();
        let f = transformed_items.cols();
        assert!(n > 0, "Reduction: no items");
        assert!(h >= 1 && h <= f, "Reduction: checkpoint out of range");

        let norms: Vec<f64> = transformed_items.iter_rows().map(norm2).collect();
        let max_norm = norms.iter().fold(0.0f64, |a, &b| a.max(b));
        let mut prefix = Matrix::<f64>::zeros(n, h);
        let mut suffix = Vec::with_capacity(n);
        for (r, &row_norm) in norms.iter().enumerate() {
            if max_norm == 0.0 {
                // All items are zero vectors; embeddings are zero too.
                suffix.push(0.0);
                continue;
            }
            let row = transformed_items.row(r);
            let inv = 1.0 / max_norm;
            for (j, v) in prefix.row_mut(r).iter_mut().enumerate() {
                *v = row[j] * inv;
            }
            // Extension coordinate: e = √(M² − ‖t‖²), clamped for rounding.
            let e = (max_norm * max_norm - row_norm * row_norm).max(0.0).sqrt();
            // ‖d̂[h..]‖² over the tail of t plus the extension coordinate.
            let tail = suffix_norms(row)[h];
            suffix.push(((tail * tail + e * e).sqrt() * inv).min(1.0));
        }
        Reduction {
            max_norm,
            prefix,
            suffix,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_linalg::kernels::dot;

    fn random_items(n: usize, f: usize, seed: u64) -> Matrix<f64> {
        let mut state = seed | 1;
        Matrix::from_fn(n, f, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
    }

    #[test]
    fn svd_stage_checkpoint_respects_energy() {
        let items = random_items(50, 10, 3);
        let stage = SvdStage::build(&items, 0.9).unwrap();
        assert!(stage.h >= 1 && stage.h <= 10);
        assert!(stage.basis.energy_fraction(stage.h) >= 0.9);
    }

    #[test]
    fn svd_transform_preserves_dots() {
        let items = random_items(30, 6, 5);
        let users = random_items(4, 6, 7);
        let stage = SvdStage::build(&items, 0.85).unwrap();
        let ti = stage.transform(&items);
        let tu = stage.transform(&users);
        for u in 0..4 {
            for i in 0..30 {
                let a = dot(users.row(u), items.row(i));
                let b = dot(tu.row(u), ti.row(i));
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn reduction_embeddings_are_unit() {
        let items = random_items(40, 8, 11);
        let h = 3;
        let red = Reduction::build(&items, h);
        for r in 0..40 {
            let prefix_sq: f64 = red.prefix.row(r).iter().map(|v| v * v).sum();
            let total = prefix_sq + red.suffix[r] * red.suffix[r];
            // Prefix of length h plus remaining tail must form a unit vector
            // — but prefix here is only h of f coords, so total ≤ 1 with
            // equality when the mid coords (h..f) are folded into suffix.
            assert!(total <= 1.0 + 1e-9, "item {r}: {total}");
            assert!(red.suffix[r] >= 0.0 && red.suffix[r] <= 1.0);
        }
        // The max-norm item has zero extension; its full embedded norm is 1.
        let norms: Vec<f64> = items.iter_rows().map(norm2).collect();
        let argmax = norms
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        let prefix_sq: f64 = red.prefix.row(argmax).iter().map(|v| v * v).sum();
        let total = prefix_sq + red.suffix[argmax] * red.suffix[argmax];
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reduction_bound_dominates_true_cosine_term() {
        // For every (user, item): u·t_i ≤ ‖u‖·M·(û·d̂_prefix + su·suffix_i).
        let items = random_items(60, 8, 13);
        let users = random_items(5, 8, 17);
        let h = 4;
        let red = Reduction::build(&items, h);
        for u in 0..5 {
            let user = users.row(u);
            let un = norm2(user);
            if un == 0.0 {
                continue;
            }
            let unit: Vec<f64> = user.iter().map(|v| v / un).collect();
            let user_suffix = suffix_norms(&unit)[h];
            for i in 0..60 {
                let truth = dot(user, items.row(i));
                let partial = dot(&unit[..h], red.prefix.row(i));
                let bound = un * red.max_norm * (partial + user_suffix * red.suffix[i]);
                assert!(
                    truth <= bound + 1e-9 * (1.0 + truth.abs()),
                    "u={u} i={i}: {truth} > {bound}"
                );
            }
        }
    }

    #[test]
    fn reduction_handles_all_zero_items() {
        let items = Matrix::<f64>::zeros(3, 4);
        let red = Reduction::build(&items, 2);
        assert_eq!(red.max_norm, 0.0);
        assert!(red.suffix.iter().all(|&s| s == 0.0));
    }

    #[test]
    #[should_panic(expected = "checkpoint out of range")]
    fn reduction_rejects_bad_checkpoint() {
        let items = random_items(3, 4, 1);
        let _ = Reduction::build(&items, 5);
    }
}
