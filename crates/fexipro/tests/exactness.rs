//! Property tests: FEXIPRO must be exact on arbitrary models.

use mips_data::MfModel;
use mips_fexipro::{FexiproConfig, FexiproIndex};
use mips_linalg::kernels::dot;
use mips_linalg::Matrix;
use mips_topk::TopKHeap;
use proptest::prelude::*;

fn brute_force(model: &MfModel, u: usize, k: usize) -> Vec<u32> {
    let mut heap = TopKHeap::new(k);
    for i in 0..model.num_items() {
        heap.push(dot(model.users().row(u), model.items().row(i)), i as u32);
    }
    heap.into_sorted().items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random continuous models, both presets.
    #[test]
    fn fexipro_is_exact(n_users in 1usize..6,
                        n_items in 1usize..100,
                        f in 1usize..10,
                        k in 1usize..8,
                        sir in proptest::bool::ANY,
                        seed in 0u64..500) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 4.0 - 2.0
        };
        let users = Matrix::from_fn(n_users, f, |_, _| next());
        let items = Matrix::from_fn(n_items, f, |_, _| next());
        let model = MfModel::new("prop", users, items).unwrap();
        let cfg = if sir { FexiproConfig::sir() } else { FexiproConfig::si() };
        let index = FexiproIndex::build(&model, &cfg);
        for u in 0..n_users {
            let got = index.query_user(u, k);
            let want = brute_force(&model, u, k);
            prop_assert_eq!(&got.items, &want, "user {}", u);
        }
    }

    /// Quantized/tied coordinates (worst case for bound rounding).
    #[test]
    fn fexipro_is_exact_under_ties(n_items in 2usize..50,
                                   f in 1usize..6,
                                   k in 1usize..8,
                                   seed in 0u64..200) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 60) % 3) as f64 - 1.0
        };
        let users = Matrix::from_fn(3, f, |_, _| next());
        let items = Matrix::from_fn(n_items, f, |_, _| next());
        let model = MfModel::new("ties", users, items).unwrap();
        let index = FexiproIndex::build(&model, &FexiproConfig::sir());
        for u in 0..3 {
            let got = index.query_user(u, k);
            let want = brute_force(&model, u, k);
            prop_assert_eq!(&got.items, &want, "user {}", u);
        }
    }
}
