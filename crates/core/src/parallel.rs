//! Multi-core serving by user partitioning (the Fig. 6 experiment).
//!
//! Every solver in this repository is immutable after construction, so the
//! paper's observation applies directly: "because both indexes are
//! read-only, a simple partitioning scheme across users proves to be an
//! effective parallelization strategy". Users are split into contiguous
//! ranges, one per thread, served independently, and concatenated.

use crate::solver::MipsSolver;
use mips_topk::TopKList;

/// Serves all users with `threads` worker threads, partitioning the user
/// range evenly. `threads = 1` degenerates to a plain sequential call.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn par_query_all(solver: &dyn MipsSolver, k: usize, threads: usize) -> Vec<TopKList> {
    assert!(threads > 0, "par_query_all: threads must be > 0");
    let n = solver.num_users();
    if threads == 1 || n == 0 {
        return solver.query_all(k);
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        ranges.push(start..end);
        start = end;
    }

    let mut out: Vec<TopKList> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || solver.query_range(k, range)))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("worker thread panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::BmmSolver;
    use crate::maximus::{MaximusConfig, MaximusIndex};
    use mips_data::synth::{synth_model, SynthConfig};
    use std::sync::Arc;

    fn model(users: usize) -> Arc<mips_data::MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: users,
            num_items: 64,
            num_factors: 8,
            ..SynthConfig::default()
        }))
    }

    #[test]
    fn parallel_equals_sequential_for_bmm() {
        let m = model(101); // odd size: uneven final chunk
        let solver = BmmSolver::build(m);
        let seq = solver.query_all(4);
        for threads in [1usize, 2, 3, 8, 200] {
            let par = par_query_all(&solver, 4, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_equals_sequential_for_maximus() {
        let m = model(60);
        let solver = MaximusIndex::build(
            m,
            &MaximusConfig {
                num_clusters: 3,
                block_size: 8,
                ..MaximusConfig::default()
            },
        );
        let seq = solver.query_all(5);
        let par = par_query_all(&solver, 5, 4);
        assert_eq!(par, seq);
    }

    #[test]
    #[should_panic(expected = "threads must be > 0")]
    fn rejects_zero_threads() {
        let m = model(4);
        let solver = BmmSolver::build(m);
        let _ = par_query_all(&solver, 1, 0);
    }
}
