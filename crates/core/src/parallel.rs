//! Multi-core serving by user partitioning (the Fig. 6 experiment).
//!
//! Every solver in this repository is immutable after construction, so the
//! paper's observation applies directly: "because both indexes are
//! read-only, a simple partitioning scheme across users proves to be an
//! effective parallelization strategy". Users are split into contiguous
//! ranges, one per thread, served independently, and concatenated.
//!
//! Scratch discipline: each worker invokes the solver's `query_range` /
//! `query_subset` once for its whole chunk, and the solvers allocate their
//! GEMM/score scratch *inside* those calls — so every thread owns exactly
//! one scratch set for its entire partition, with no sharing, no locking,
//! and no per-block allocation. The SIMD kernel selection
//! ([`mips_linalg::simd::active`]) is process-wide and read-only, so all
//! workers run the same kernel set.

use crate::solver::MipsSolver;
use mips_topk::TopKList;
use std::ops::Range;

/// Splits `0..n` positions into at most `parts` contiguous chunks, each of
/// (near-)equal size; the final chunk is shorter when the division is
/// ragged, and `n == 0` yields no chunks.
///
/// This is the partitioning rule for both the thread-per-chunk multi-core
/// path below and the [`crate::serve`] runtime's user shards, so the two
/// layers agree on where boundaries fall.
pub fn chunk_bounds(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.min(n).max(1);
    let chunk = n.div_ceil(parts);
    let mut bounds = Vec::with_capacity(parts);
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        bounds.push(start..end);
        start = end;
    }
    bounds
}

/// Serves a contiguous user range with `threads` worker threads,
/// partitioning the range evenly. `threads = 1` degenerates to a plain
/// sequential call. This is the multi-core path the engine routes through
/// when [`crate::engine::EngineConfig::threads`] exceeds one.
///
/// # Panics
/// Panics if `threads == 0` (the engine validates this at build time and
/// returns a typed error instead).
pub fn par_query_range(
    solver: &dyn MipsSolver,
    k: usize,
    users: Range<usize>,
    threads: usize,
) -> Vec<TopKList> {
    assert!(threads > 0, "par_query_range: threads must be > 0");
    let n = users.len();
    if threads == 1 || n == 0 {
        return solver.query_range(k, users);
    }
    let base = users.start;
    let mut out: Vec<TopKList> = Vec::with_capacity(n);
    crate::sync::thread::scope(|scope| {
        let handles: Vec<_> = chunk_bounds(n, threads)
            .into_iter()
            .map(|r| scope.spawn(move || solver.query_range(k, base + r.start..base + r.end)))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("worker thread panicked"));
        }
    });
    out
}

/// Serves an explicit user id list with `threads` worker threads,
/// partitioning positions evenly; results come back in input order.
///
/// Repeated ids are deduplicated *before* chunking, so a user repeated
/// across the list is queried once in total — not once per worker chunk —
/// and the result is fanned back out to every occurrence.
///
/// # Panics
/// Panics if `threads == 0` (the engine validates this at build time).
pub fn par_query_subset(
    solver: &dyn MipsSolver,
    k: usize,
    users: &[usize],
    threads: usize,
) -> Vec<TopKList> {
    assert!(threads > 0, "par_query_subset: threads must be > 0");
    if threads == 1 || users.is_empty() {
        return solver.query_subset(k, users);
    }
    crate::solver::dedup_query_subset(users, |distinct| {
        let mut out: Vec<TopKList> = Vec::with_capacity(distinct.len());
        crate::sync::thread::scope(|scope| {
            let handles: Vec<_> = chunk_bounds(distinct.len(), threads)
                .into_iter()
                .map(|r| scope.spawn(move || solver.query_subset(k, &distinct[r])))
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("worker thread panicked"));
            }
        });
        out
    })
}

/// Serves all users with `threads` worker threads.
///
/// Compatibility wrapper over [`par_query_range`]; new code should set
/// [`crate::engine::EngineConfig::threads`] and go through the engine,
/// which returns typed errors instead of panicking. With one thread this
/// takes the solver's specialized `query_all` path (MAXIMUS serves whole
/// clusters in membership order there).
///
/// # Panics
/// Panics if `threads == 0`.
pub fn par_query_all(solver: &dyn MipsSolver, k: usize, threads: usize) -> Vec<TopKList> {
    assert!(threads > 0, "par_query_all: threads must be > 0");
    if threads == 1 {
        return solver.query_all(k);
    }
    par_query_range(solver, k, 0..solver.num_users(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::BmmSolver;
    use crate::maximus::{MaximusConfig, MaximusIndex};
    use crate::sync::Arc;
    use mips_data::synth::{synth_model, SynthConfig};

    fn model(users: usize) -> Arc<mips_data::MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: users,
            num_items: 64,
            num_factors: 8,
            ..SynthConfig::default()
        }))
    }

    #[test]
    fn parallel_equals_sequential_for_bmm() {
        let m = model(101); // odd size: uneven final chunk
        let solver = BmmSolver::build(m);
        let seq = solver.query_all(4);
        for threads in [1usize, 2, 3, 8, 200] {
            let par = par_query_all(&solver, 4, threads);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_equals_sequential_for_maximus() {
        let m = model(60);
        let solver = MaximusIndex::build(
            m,
            &MaximusConfig {
                num_clusters: 3,
                block_size: 8,
                ..MaximusConfig::default()
            },
        );
        let seq = solver.query_all(5);
        let par = par_query_all(&solver, 5, 4);
        assert_eq!(par, seq);
    }

    #[test]
    fn offset_ranges_and_subsets_match_sequential() {
        let m = model(83);
        let solver = BmmSolver::build(m);
        let seq_range = solver.query_range(3, 17..64);
        for threads in [2usize, 5, 100] {
            assert_eq!(par_query_range(&solver, 3, 17..64, threads), seq_range);
        }
        let ids: Vec<usize> = vec![5, 5, 80, 0, 41, 5, 82];
        let seq_subset = solver.query_subset(3, &ids);
        for threads in [2usize, 3, 16] {
            assert_eq!(par_query_subset(&solver, 3, &ids, threads), seq_subset);
        }
        assert!(par_query_subset(&solver, 3, &[], 4).is_empty());
        assert!(par_query_range(&solver, 3, 10..10, 4).is_empty());
    }

    #[test]
    fn repeated_ids_are_queried_once_across_chunks() {
        use crate::sync::Mutex;
        use std::collections::HashMap;

        /// Wraps a solver and counts how often each user id is queried.
        struct CountingSolver {
            inner: BmmSolver,
            counts: Mutex<HashMap<usize, usize>>,
        }
        impl MipsSolver for CountingSolver {
            fn name(&self) -> &str {
                "counting"
            }
            fn build_seconds(&self) -> f64 {
                0.0
            }
            fn batches_users(&self) -> bool {
                true
            }
            fn num_users(&self) -> usize {
                self.inner.num_users()
            }
            fn query_range(&self, k: usize, users: std::ops::Range<usize>) -> Vec<TopKList> {
                self.inner.query_range(k, users)
            }
            fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
                let mut counts = self.counts.lock().unwrap();
                for &u in users {
                    *counts.entry(u).or_insert(0) += 1;
                }
                drop(counts);
                self.inner.query_subset(k, users)
            }
        }

        let m = model(20);
        let solver = CountingSolver {
            inner: BmmSolver::build(Arc::clone(&m)),
            counts: Mutex::new(HashMap::new()),
        };
        // User 7 repeats across what would be several chunks at 4 threads.
        let ids = [7usize, 1, 7, 2, 7, 3, 7, 4, 7, 5];
        let out = par_query_subset(&solver, 2, &ids, 4);
        assert_eq!(out.len(), ids.len());
        let expect = solver.inner.query_subset(2, &ids);
        assert_eq!(out, expect);
        let counts = solver.counts.lock().unwrap();
        assert_eq!(counts[&7], 1, "repeated user must be queried once");
        assert!(counts.values().all(|&c| c == 1));
    }

    #[test]
    #[should_panic(expected = "threads must be > 0")]
    fn rejects_zero_threads() {
        let m = model(4);
        let solver = BmmSolver::build(m);
        let _ = par_query_all(&solver, 1, 0);
    }
}
