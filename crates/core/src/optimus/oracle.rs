//! The oracle optimizer: ground truth for Table II.
//!
//! The oracle runs every candidate backend to completion and reports the
//! true fastest — zero decision overhead by definition, unobtainable in
//! practice, and exactly the baseline the paper compares OPTIMUS against
//! ("within 12 % of an oracle-based optimizer with no overhead").

use crate::engine::registry::SolverFactory;
use crate::sync::Arc;
use mips_data::MfModel;
use std::time::Instant;

/// Full measured runtime of one strategy.
#[derive(Debug, Clone)]
pub struct StrategyRuntime {
    /// Strategy display name.
    pub name: String,
    /// Index construction seconds.
    pub build_seconds: f64,
    /// Serving seconds for all users.
    pub serve_seconds: f64,
}

impl StrategyRuntime {
    /// End-to-end seconds (construction + serving), the quantity Fig. 5
    /// plots.
    pub fn total_seconds(&self) -> f64 {
        self.build_seconds + self.serve_seconds
    }
}

/// Runs every backend to completion and returns the measured runtimes plus
/// the index of the fastest (end-to-end).
pub fn oracle_choice(
    model: &Arc<MfModel>,
    k: usize,
    strategies: &[Arc<dyn SolverFactory>],
) -> (usize, Vec<StrategyRuntime>) {
    assert!(!strategies.is_empty(), "oracle_choice: no strategies");
    let runtimes: Vec<StrategyRuntime> = strategies
        .iter()
        .map(|f| {
            let solver = f
                .build(model)
                .unwrap_or_else(|err| panic!("oracle_choice: building {}: {err}", f.key()));
            let t0 = Instant::now();
            let results = solver.query_all(k);
            let serve_seconds = t0.elapsed().as_secs_f64();
            // Results are discarded; keep the length observable so the
            // query cannot be optimized away.
            assert_eq!(results.len(), model.num_users());
            StrategyRuntime {
                name: solver.name().to_string(),
                build_seconds: solver.build_seconds(),
                serve_seconds,
            }
        })
        .collect();
    let best = runtimes
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.total_seconds().total_cmp(&b.1.total_seconds()))
        .expect("non-empty")
        .0;
    (best, runtimes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::registry::{BmmFactory, MaximusFactory};
    use crate::maximus::MaximusConfig;
    use mips_data::synth::{synth_model, SynthConfig};

    #[test]
    fn oracle_measures_all_strategies() {
        let model = Arc::new(synth_model(&SynthConfig {
            num_users: 80,
            num_items: 100,
            num_factors: 8,
            ..SynthConfig::default()
        }));
        let strategies: [Arc<dyn SolverFactory>; 2] = [
            Arc::new(BmmFactory),
            Arc::new(MaximusFactory::new(MaximusConfig {
                num_clusters: 4,
                block_size: 16,
                ..MaximusConfig::default()
            })),
        ];
        let (best, runtimes) = oracle_choice(&model, 3, &strategies);
        assert_eq!(runtimes.len(), 2);
        assert!(best < 2);
        for rt in &runtimes {
            assert!(rt.serve_seconds > 0.0);
            assert!(rt.total_seconds() >= rt.serve_seconds);
        }
        // The chosen one is genuinely the minimum.
        let min = runtimes
            .iter()
            .map(StrategyRuntime::total_seconds)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(runtimes[best].total_seconds(), min);
    }

    #[test]
    #[should_panic(expected = "no strategies")]
    fn rejects_empty_strategy_list() {
        let model = Arc::new(synth_model(&SynthConfig {
            num_users: 4,
            num_items: 4,
            num_factors: 2,
            ..SynthConfig::default()
        }));
        let _ = oracle_choice(&model, 1, &[]);
    }
}
