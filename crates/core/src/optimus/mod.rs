//! OPTIMUS: the online, sample-based MIPS serving optimizer (§IV).
//!
//! Given a model and a set of candidate strategies (BMM plus one or more
//! indexes), OPTIMUS:
//!
//! 1. **builds every candidate index** — construction is orders of magnitude
//!    cheaper than serving (Fig. 4), so this is affordable;
//! 2. **samples users** — a fraction of `U` (default 0.5 %) floored so the
//!    sampled user block at least occupies the L2 cache, without which BMM's
//!    timing degenerates toward matrix–vector multiply (§IV-A);
//! 3. **times BMM and every index on the sample** and linearly extrapolates
//!    total serving time. For point-query indexes (LEMP, FEXIPRO) an
//!    incremental one-sample t-test against BMM's mean per-user time stops
//!    sampling as soon as the comparison is statistically settled;
//! 4. **serves the remaining users with the estimated winner**, reusing the
//!    winner's sampled results.
//!
//! [`cost`] additionally implements the paper's offline analytical FLOP
//! model for the BMM multiply stage, with calibration replacing the paper's
//! hardware datasheet lookup.

pub mod cost;
pub mod oracle;

use crate::engine::registry::{BmmFactory, SolverFactory};
use crate::solver::MipsSolver;
use crate::sync::Arc;
use mips_data::{MfModel, ModelView};
use mips_linalg::CacheConfig;
use mips_stats::{OneSampleTTest, TTestDecision};
use mips_topk::TopKList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// OPTIMUS configuration.
#[derive(Debug, Clone, Copy)]
pub struct OptimusConfig {
    /// Fraction of users sampled for runtime estimation (paper: 0.5 %).
    pub sample_fraction: f64,
    /// Cache geometry used for the L2-occupancy sample floor.
    pub cache: CacheConfig,
    /// Significance level for the early-stopping t-test (paper: 5 %).
    pub alpha: f64,
    /// Minimum observations before the t-test may decide.
    pub min_t_samples: u64,
    /// Enable t-test early stopping for point-query indexes.
    pub early_stopping: bool,
    /// Seed for user sampling.
    pub seed: u64,
}

impl Default for OptimusConfig {
    fn default() -> Self {
        OptimusConfig {
            sample_fraction: 0.005,
            cache: CacheConfig::default(),
            alpha: 0.05,
            min_t_samples: 8,
            early_stopping: true,
            seed: 0x0971,
        }
    }
}

/// One candidate's measured estimate.
#[derive(Debug, Clone)]
pub struct StrategyEstimate {
    /// Strategy display name.
    pub name: String,
    /// Index construction seconds (0 for BMM).
    pub build_seconds: f64,
    /// Users actually timed (may be below the sample size when the t-test
    /// stopped early).
    pub sampled_users: usize,
    /// Measured sampling seconds.
    pub sample_seconds: f64,
    /// Extrapolated total serving time for all users, in seconds.
    pub estimated_total_seconds: f64,
}

/// The outcome of one OPTIMUS invocation.
pub struct OptimusOutcome {
    /// Name of the chosen strategy.
    pub chosen: String,
    /// Per-candidate estimates (BMM first, then indexes in input order).
    pub estimates: Vec<StrategyEstimate>,
    /// Users sampled for estimation.
    pub sample_size: usize,
    /// Wall-clock seconds spent on construction + sampling (the optimizer's
    /// overhead before the main run starts).
    pub decision_seconds: f64,
    /// Wall-clock seconds of the full invocation, decision included.
    pub total_seconds: f64,
    /// Top-k results for every user, in user order.
    pub results: Vec<TopKList>,
}

/// Everything the estimation phase produces: estimates plus the built
/// solvers and sampled results, so the serving phase can reuse them.
struct EstimationPhase {
    sample: Vec<usize>,
    taken: Vec<bool>,
    bmm: Box<dyn MipsSolver>,
    built: Vec<Box<dyn MipsSolver>>,
    estimates: Vec<StrategyEstimate>,
    bmm_results: Vec<TopKList>,
    index_results: Vec<Option<Vec<TopKList>>>,
}

/// A planning decision over already-built candidate solvers: the engine's
/// query-planner entry point (the candidates come from its backend
/// registry, not from factory values).
#[derive(Debug, Clone)]
pub struct PlannedChoice {
    /// Index of the winning solver in the input slice.
    pub chosen: usize,
    /// Per-candidate estimates, in input order.
    pub estimates: Vec<StrategyEstimate>,
    /// Users sampled for estimation.
    pub sample_size: usize,
    /// Wall-clock seconds spent sampling and deciding.
    pub decision_seconds: f64,
}

/// The OPTIMUS optimizer.
#[derive(Debug, Clone, Default)]
pub struct Optimus {
    config: OptimusConfig,
}

impl Optimus {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: OptimusConfig) -> Optimus {
        assert!(
            config.sample_fraction > 0.0 && config.sample_fraction <= 1.0,
            "OptimusConfig: sample_fraction must be in (0, 1]"
        );
        Optimus { config }
    }

    /// The sample size rule of §IV-A: `max(fraction·|U|, L2-occupancy rows,
    /// 2)`, capped at `|U|`.
    pub fn sample_size(&self, num_users: usize, f: usize) -> usize {
        let by_fraction = (num_users as f64 * self.config.sample_fraction).ceil() as usize;
        let l2_floor = self.config.cache.rows_to_fill_l2(f, 8);
        by_fraction.max(l2_floor).max(2).min(num_users)
    }

    /// Draws `sample_size` distinct users, deterministic per seed. Returns
    /// the sample plus a membership mask over all `n` users.
    fn sample_users(&self, n: usize, f: usize) -> (Vec<usize>, Vec<bool>) {
        let sample_size = self.sample_size(n, f);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut sample: Vec<usize> = Vec::with_capacity(sample_size);
        let mut taken = vec![false; n];
        while sample.len() < sample_size {
            let u = rng.gen_range(0..n);
            if !taken[u] {
                taken[u] = true;
                sample.push(u);
            }
        }
        (sample, taken)
    }

    /// Chooses among already-built solvers by timing each on a user sample
    /// — the planning primitive behind [`crate::engine::PreparedPlan`].
    ///
    /// Sampling and cost extrapolation are **sized to the view**: the
    /// sample is drawn from the view's user range (in the parent model's
    /// global id space, which is what the candidate solvers must speak),
    /// and each candidate's total is extrapolated to the view's user
    /// count. A full view reproduces the whole-model planning of earlier
    /// revisions bit-for-bit (same seed, same draws); a shard view is how
    /// the serving runtime lets every shard plan for its own slice.
    ///
    /// `solvers[0]` is the timing reference for the early-stopping t-test
    /// applied to point-query candidates, so it should be the batch
    /// baseline (BMM) when one is present. Panics if `solvers` is empty;
    /// the engine guards that case with a typed error before calling.
    pub fn choose(&self, view: &ModelView, k: usize, solvers: &[&dyn MipsSolver]) -> PlannedChoice {
        assert!(!solvers.is_empty(), "Optimus::choose: no candidate solvers");
        let overall = Instant::now();
        let n = view.num_users();
        let (mut sample, _) = self.sample_users(n, view.num_factors());
        let base = view.user_range().start;
        if base != 0 {
            for user in &mut sample {
                *user += base;
            }
        }

        // Untimed warm-up prefix per candidate before its timed pass:
        // a candidate's first queries pay one-off costs (page faults,
        // cold caches over its index, lazily initialised scratch) that
        // land asymmetrically — whoever samples first pays the most —
        // and on small views inflate the extrapolated totals by orders
        // of magnitude. Planning is a *comparison* of steady-state
        // costs, and the screen-adoption floor guards mixed-precision
        // plans in absolute seconds, so estimates must not carry
        // cold-start noise.
        let warm = &sample[..sample.len().min(4)];

        // Screen pairing: an engine in `Auto` precision competes each
        // backend's `+f32` screen against its own f64 build, and the
        // adoption rule downstream compares exactly those two estimates.
        // The t-test early stop can halt the two sides at *different*
        // user counts, and on backends with heterogeneous per-user cost
        // (LEMP's scan length tracks the user's norm) that makes the
        // pair's estimates averages over different user mixes — enough
        // to mis-rank a pair whose true costs are within ~20%. Force
        // both sides of every screen pair onto the identical full
        // sample so their comparison is apples-to-apples; unpaired
        // candidates keep the cheap early-stopped sampling.
        let names: Vec<&str> = solvers.iter().map(|s| s.name()).collect();
        // Both screen tiers pair with the same f64 base; a base with two
        // screen variants is paired once and shared by both.
        fn strip_tier(name: &str) -> Option<&str> {
            name.strip_suffix(crate::engine::SCREEN_SUFFIX)
                .or_else(|| name.strip_suffix(crate::engine::SCREEN_I8_SUFFIX))
        }
        let screen_paired: Vec<bool> = names
            .iter()
            .map(|name| {
                names.iter().any(|other| {
                    strip_tier(other) == Some(name) || strip_tier(name) == Some(*other)
                })
            })
            .collect();

        // Time the reference candidate on the whole sample.
        let _ = solvers[0].query_subset(k, warm);
        let t0 = Instant::now();
        let _ = solvers[0].query_subset(k, &sample);
        let ref_sample_seconds = t0.elapsed().as_secs_f64();
        let ref_per_user = ref_sample_seconds / sample.len() as f64;
        let mut estimates = vec![StrategyEstimate {
            name: solvers[0].name().to_string(),
            build_seconds: solvers[0].build_seconds(),
            sampled_users: sample.len(),
            sample_seconds: ref_sample_seconds,
            estimated_total_seconds: ref_per_user * n as f64,
        }];

        for (idx, solver) in solvers[1..].iter().enumerate() {
            let _ = solver.query_subset(k, warm);
            let (estimate, _) =
                self.estimate_index(*solver, k, &sample, ref_per_user, n, screen_paired[idx + 1]);
            estimates.push(estimate);
        }

        // Paired candidates get a second, interleaved timing pass with
        // the per-side minimum kept: one scheduler burst landing inside
        // a side's only pass can mis-rank a pair whose true costs sit
        // within the adoption margin, but to survive a min-of-two the
        // burst would have to hit the same side twice and the other
        // side never. Unpaired candidates don't face a head-to-head
        // margin decision, so their single pass stands.
        for (idx, solver) in solvers.iter().enumerate() {
            if !screen_paired[idx] {
                continue;
            }
            let t0 = Instant::now();
            let _ = solver.query_subset(k, &sample);
            let second = t0.elapsed().as_secs_f64();
            let e = &mut estimates[idx];
            if second < e.sample_seconds {
                e.sample_seconds = second;
                e.estimated_total_seconds = second / sample.len() as f64 * n as f64;
            }
        }

        let chosen = estimates
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.estimated_total_seconds
                    .total_cmp(&b.1.estimated_total_seconds)
            })
            .expect("at least one candidate")
            .0;
        PlannedChoice {
            chosen,
            estimates,
            sample_size: sample.len(),
            decision_seconds: overall.elapsed().as_secs_f64(),
        }
    }

    /// Runs only the estimation phase (construction + sampling + per-user
    /// timing) and returns the per-strategy estimates without serving the
    /// remaining users. This is the measurement behind Fig. 7, which plots
    /// estimate quality against the sample ratio.
    ///
    /// `indexes` are backend factories (the same [`SolverFactory`] values a
    /// [`crate::engine::BackendRegistry`] holds); BMM is always included as
    /// the batch baseline, so the list must not contain the `"bmm"` key.
    pub fn estimate_only(
        &self,
        model: &Arc<MfModel>,
        k: usize,
        indexes: &[Arc<dyn SolverFactory>],
    ) -> Vec<StrategyEstimate> {
        self.estimation_phase(&ModelView::full(model), k, indexes)
            .estimates
    }

    /// [`Optimus::estimate_only`] over a user-range view: candidates are
    /// **built over the view** (shard-local index construction) and the
    /// sample is drawn from — and the totals extrapolated to — the view's
    /// users. The per-shard planning the serving runtime's
    /// `IndexScope::PerShard` mode performs is exactly this.
    pub fn estimate_only_view(
        &self,
        view: &ModelView,
        k: usize,
        indexes: &[Arc<dyn SolverFactory>],
    ) -> Vec<StrategyEstimate> {
        self.estimation_phase(view, k, indexes).estimates
    }

    /// Construction plus sampling: everything OPTIMUS does before
    /// committing to a strategy. Candidates are built over `view` and
    /// queried with local user ids (`0..view.num_users()`).
    fn estimation_phase(
        &self,
        view: &ModelView,
        k: usize,
        indexes: &[Arc<dyn SolverFactory>],
    ) -> EstimationPhase {
        assert!(
            !indexes.iter().any(|f| f.key() == "bmm"),
            "Optimus: BMM is always included; pass only index factories"
        );
        let n = view.num_users();
        let (sample, taken) = self.sample_users(n, view.num_factors());

        // Build all candidates (cheap relative to serving, Fig. 4).
        let build = |factory: &dyn SolverFactory| -> Box<dyn MipsSolver> {
            factory
                .build_view(view)
                .unwrap_or_else(|err| panic!("Optimus: building {}: {err}", factory.key()))
        };
        let bmm = build(&BmmFactory);
        let built: Vec<Box<dyn MipsSolver>> = indexes.iter().map(|f| build(f.as_ref())).collect();

        // Time BMM on the sample.
        let t0 = Instant::now();
        let bmm_results = bmm.query_subset(k, &sample);
        let bmm_sample_seconds = t0.elapsed().as_secs_f64();
        let bmm_per_user = bmm_sample_seconds / sample.len() as f64;
        let mut estimates = vec![StrategyEstimate {
            name: bmm.name().to_string(),
            build_seconds: bmm.build_seconds(),
            sampled_users: sample.len(),
            sample_seconds: bmm_sample_seconds,
            estimated_total_seconds: bmm_per_user * n as f64,
        }];

        // Time each index on the sample.
        let mut index_results: Vec<Option<Vec<TopKList>>> = Vec::new();
        for solver in &built {
            let (estimate, results) =
                self.estimate_index(solver.as_ref(), k, &sample, bmm_per_user, n, false);
            estimates.push(estimate);
            index_results.push(results);
        }

        EstimationPhase {
            sample,
            taken,
            bmm,
            built,
            estimates,
            bmm_results,
            index_results,
        }
    }

    /// Chooses between BMM and the given index factories for serving top-k
    /// for all users, then serves them. `indexes` must not contain the
    /// `"bmm"` factory (BMM is always a candidate).
    ///
    /// Two-way optimization passes one index (the paper's Table II rows 1–4);
    /// passing two or more gives the multi-way optimizer (row 5).
    pub fn run(
        &self,
        model: &Arc<MfModel>,
        k: usize,
        indexes: &[Arc<dyn SolverFactory>],
    ) -> OptimusOutcome {
        let overall = Instant::now();
        let n = model.num_users();
        let EstimationPhase {
            sample,
            taken,
            bmm,
            built,
            estimates,
            bmm_results,
            mut index_results,
        } = self.estimation_phase(&ModelView::full(model), k, indexes);

        // Decide.
        let chosen_idx = estimates
            .iter()
            .enumerate()
            .min_by(|a, b| {
                a.1.estimated_total_seconds
                    .total_cmp(&b.1.estimated_total_seconds)
            })
            .expect("at least BMM is a candidate")
            .0;
        let chosen_name = estimates[chosen_idx].name.clone();
        let decision_seconds = overall.elapsed().as_secs_f64();

        // Serve remaining users with the winner; reuse its sampled results
        // when it produced complete ones.
        let winner: &dyn MipsSolver = if chosen_idx == 0 {
            bmm.as_ref()
        } else {
            built[chosen_idx - 1].as_ref()
        };
        let sampled_results: Option<Vec<TopKList>> = if chosen_idx == 0 {
            Some(bmm_results)
        } else {
            index_results[chosen_idx - 1].take()
        };

        let mut results = vec![TopKList::empty(); n];
        let remaining: Vec<usize> = match &sampled_results {
            Some(lists) => {
                for (pos, &u) in sample.iter().enumerate() {
                    results[u] = lists[pos].clone();
                }
                (0..n).filter(|u| !taken[*u]).collect()
            }
            None => (0..n).collect(),
        };
        let remaining_results = winner.query_subset(k, &remaining);
        for (pos, &u) in remaining.iter().enumerate() {
            results[u] = remaining_results[pos].clone();
        }

        OptimusOutcome {
            chosen: chosen_name,
            estimates,
            sample_size: sample.len(),
            decision_seconds,
            total_seconds: overall.elapsed().as_secs_f64(),
            results,
        }
    }

    /// Times one index on the sample. Batch indexes are timed on the whole
    /// sample at once (their per-user cost is only meaningful with work
    /// sharing); point-query indexes are timed user-by-user under the
    /// incremental t-test, unless `full_sample` pins them to the whole
    /// sample (used by [`Optimus::choose`] for screen-paired candidates,
    /// whose estimates are compared head-to-head and must average over
    /// the same user mix).
    ///
    /// Returns the estimate and, when the full sample was processed, the
    /// sampled results for reuse.
    #[allow(clippy::too_many_arguments)]
    fn estimate_index(
        &self,
        solver: &dyn MipsSolver,
        k: usize,
        sample: &[usize],
        bmm_per_user: f64,
        n: usize,
        full_sample: bool,
    ) -> (StrategyEstimate, Option<Vec<TopKList>>) {
        if solver.batches_users() || full_sample || !self.config.early_stopping {
            let t0 = Instant::now();
            let results = solver.query_subset(k, sample);
            let sample_seconds = t0.elapsed().as_secs_f64();
            let per_user = sample_seconds / sample.len() as f64;
            return (
                StrategyEstimate {
                    name: solver.name().to_string(),
                    build_seconds: solver.build_seconds(),
                    sampled_users: sample.len(),
                    sample_seconds,
                    estimated_total_seconds: per_user * n as f64,
                },
                Some(results),
            );
        }

        // Point queries: incremental one-sample t-test against BMM's mean.
        let mut ttest =
            OneSampleTTest::new(bmm_per_user, self.config.alpha, self.config.min_t_samples);
        let mut results = Vec::with_capacity(sample.len());
        let mut sample_seconds = 0.0;
        let mut used = 0;
        for &u in sample {
            let t0 = Instant::now();
            let mut r = solver.query_subset(k, &[u]);
            let dt = t0.elapsed().as_secs_f64();
            sample_seconds += dt;
            results.push(r.pop().expect("one result per user"));
            used += 1;
            if ttest.push(dt) != TTestDecision::Continue {
                break;
            }
        }
        let per_user = sample_seconds / used as f64;
        let complete = used == sample.len();
        (
            StrategyEstimate {
                name: solver.name().to_string(),
                build_seconds: solver.build_seconds(),
                sampled_users: used,
                sample_seconds,
                estimated_total_seconds: per_user * n as f64,
            },
            complete.then_some(results),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::BmmSolver;
    use crate::engine::registry::{FexiproFactory, LempFactory, MaximusFactory};
    use crate::maximus::MaximusConfig;
    use mips_data::synth::{synth_model, SynthConfig};
    use mips_lemp::LempConfig;

    fn fac(factory: impl SolverFactory + 'static) -> Arc<dyn SolverFactory> {
        Arc::new(factory)
    }

    fn model() -> Arc<MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: 300,
            num_items: 250,
            num_factors: 10,
            item_norm_skew: 0.8,
            user_spread: 0.3,
            ..SynthConfig::default()
        }))
    }

    fn tiny_config() -> OptimusConfig {
        OptimusConfig {
            sample_fraction: 0.05,
            cache: CacheConfig {
                l1_bytes: 1024,
                l2_bytes: 2048, // tiny: keeps the L2 floor small for tests
                l3_bytes: 4096,
            },
            ..OptimusConfig::default()
        }
    }

    #[test]
    fn results_are_exact_regardless_of_choice() {
        let m = model();
        let optimus = Optimus::new(tiny_config());
        let outcome = optimus.run(
            &m,
            5,
            &[fac(MaximusFactory::new(MaximusConfig {
                num_clusters: 4,
                block_size: 32,
                ..MaximusConfig::default()
            }))],
        );
        let want = BmmSolver::build(Arc::clone(&m)).query_all(5);
        assert_eq!(outcome.results.len(), want.len());
        for (u, (got, expect)) in outcome.results.iter().zip(&want).enumerate() {
            assert_eq!(got.items, expect.items, "user {u}");
        }
        assert!(["Blocked MM", "Maximus"].contains(&outcome.chosen.as_str()));
        assert_eq!(outcome.estimates.len(), 2);
        assert!(outcome.decision_seconds <= outcome.total_seconds);
    }

    #[test]
    fn three_way_optimization_works() {
        let m = model();
        let optimus = Optimus::new(tiny_config());
        let outcome = optimus.run(
            &m,
            3,
            &[
                fac(MaximusFactory::new(MaximusConfig {
                    num_clusters: 4,
                    block_size: 32,
                    ..MaximusConfig::default()
                })),
                fac(LempFactory::new(LempConfig::default())),
            ],
        );
        assert_eq!(outcome.estimates.len(), 3);
        let want = BmmSolver::build(Arc::clone(&m)).query_all(3);
        for u in (0..m.num_users()).step_by(37) {
            assert_eq!(outcome.results[u].items, want[u].items);
        }
    }

    #[test]
    fn sample_size_respects_l2_floor_and_bounds() {
        let optimus = Optimus::new(OptimusConfig::default());
        // 0.5 % of 100k users at f=100 is 500, but the L2 floor (256 KB /
        // 800 B) is 328 — fraction dominates.
        assert_eq!(optimus.sample_size(100_000, 100), 500);
        // For few users the floor caps at |U|.
        assert_eq!(optimus.sample_size(50, 100), 50);
        // At tiny f the floor dominates the fraction.
        let floor = CacheConfig::default().rows_to_fill_l2(10, 8);
        assert_eq!(optimus.sample_size(100_000, 10), floor.max(500));
    }

    #[test]
    fn estimates_are_positive_and_finite() {
        let m = model();
        let optimus = Optimus::new(tiny_config());
        let outcome = optimus.run(&m, 1, &[fac(FexiproFactory::si())]);
        for e in &outcome.estimates {
            assert!(e.estimated_total_seconds > 0.0);
            assert!(e.estimated_total_seconds.is_finite());
            assert!(e.sampled_users >= 2);
        }
    }

    #[test]
    fn early_stopping_can_cut_the_sample_short() {
        // FEXIPRO point queries against BMM: on this model the per-user gap
        // is wide, so with early stopping enabled the t-test should settle
        // before the full sample — sampled_users < sample_size at least
        // sometimes. We only assert it never exceeds the sample.
        let m = model();
        let optimus = Optimus::new(tiny_config());
        let outcome = optimus.run(&m, 1, &[fac(FexiproFactory::sir())]);
        let fex = &outcome.estimates[1];
        assert!(fex.sampled_users <= outcome.sample_size);
    }

    #[test]
    fn screen_paired_candidates_are_timed_on_the_full_sample() {
        // A `+f32` screen and its f64 base are compared head-to-head by
        // the adoption rule, so `choose` must not let the t-test stop
        // the two at different user counts (different user mixes bias
        // the pair's comparison on norm-heterogeneous backends). Both
        // sides of the pair must report the full sample; the unpaired
        // point-query candidate keeps early-stopped sampling (only
        // bounded here — whether it stops early is model-dependent).
        let m = model();
        let optimus = Optimus::new(tiny_config());
        let bmm = BmmSolver::build(Arc::clone(&m));
        let lemp = crate::adapters::LempSolver::build(Arc::clone(&m), &LempConfig::default());
        let lemp_screen =
            crate::adapters::LempSolver::build_screen(Arc::clone(&m), &LempConfig::default());
        let fex = crate::adapters::FexiproSolver::build(
            Arc::clone(&m),
            &mips_fexipro::FexiproConfig::si(),
        );
        let view = ModelView::full(&m);
        let choice = optimus.choose(&view, 3, &[&bmm, &lemp, &lemp_screen, &fex]);
        for e in &choice.estimates {
            if e.name == "LEMP" || e.name == "LEMP+f32" {
                assert_eq!(
                    e.sampled_users, choice.sample_size,
                    "{} must be timed on the whole sample",
                    e.name
                );
            } else {
                assert!(e.sampled_users <= choice.sample_size);
            }
        }
    }

    #[test]
    #[should_panic(expected = "pass only index factories")]
    fn rejects_bmm_in_index_list() {
        let m = model();
        let optimus = Optimus::new(tiny_config());
        let _ = optimus.run(&m, 1, &[fac(BmmFactory)]);
    }
}
