//! The offline analytical BMM cost model (§IV-A, "Offline Performance
//! Profiling for BMM").
//!
//! Dense matrix multiply is compute-bound, so its runtime is well predicted
//! by `FLOPs / sustained FLOP rate`. The paper derives the rate from CPU
//! datasheets \[14\]; lacking a datasheet for arbitrary hosts, we *calibrate*
//! the sustained rate once with a short measurement — same model, same
//! limitation: it predicts only the multiply stage, not the data-dependent
//! top-k selection, which is why OPTIMUS's production path uses online
//! sampling instead (the paper reports the min-heap stage at ≥ 9.5 % of
//! runtime for its largest models).
//!
//! Calibration runs through [`gemm_nt`], i.e. through whatever SIMD kernel
//! set [`mips_linalg::simd::active`] selected, and records that kernel's
//! name. This matters: switching between the scalar and AVX2 micro-kernels
//! moves the sustained rate by an order of magnitude, which in turn moves
//! every BMM-vs-index crossover the optimizer reasons about. A rate
//! calibrated under one kernel must never be reused under another — compare
//! [`AnalyticalBmmModel::kernel`] before trusting a cached rate.

use mips_linalg::{gemm_flops, gemm_nt, simd, Matrix};
use std::time::Instant;

/// A calibrated analytical cost model for the BMM multiply stage.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticalBmmModel {
    /// Sustained throughput in FLOP/s measured during calibration.
    pub flops_per_second: f64,
    /// The SIMD kernel set the rate was measured under
    /// ([`mips_linalg::simd::Kernel::name`]).
    pub kernel: &'static str,
}

impl AnalyticalBmmModel {
    /// Calibrates by timing a `256 × 256 × 256` double-precision multiply
    /// (large enough to exercise the blocked kernel, small enough to finish
    /// in milliseconds).
    pub fn calibrate() -> AnalyticalBmmModel {
        const DIM: usize = 256;
        let a = Matrix::<f64>::from_fn(DIM, DIM, |r, c| ((r * 31 + c * 7) % 13) as f64 * 0.1);
        let b = Matrix::<f64>::from_fn(DIM, DIM, |r, c| ((r * 17 + c * 3) % 11) as f64 * 0.1);
        // One warmup, then the timed run.
        let _ = gemm_nt(&a, &b);
        let start = Instant::now();
        let c = gemm_nt(&a, &b);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        // Keep the result alive so the multiply cannot be optimized out.
        let _guard = c.get(0, 0);
        AnalyticalBmmModel {
            flops_per_second: gemm_flops(DIM, DIM, DIM) / elapsed,
            kernel: simd::active().name(),
        }
    }

    /// [`AnalyticalBmmModel::calibrate`] through the **single-precision**
    /// micro-kernels: the same multiply, f32 operands. The ratio between
    /// this rate and the f64 rate is the analytical prior for how much of
    /// the mixed-precision path's scan phase the screen can save (the
    /// rescore cost is data-dependent and left to online sampling, exactly
    /// like the top-k stage above).
    pub fn calibrate_f32() -> AnalyticalBmmModel {
        const DIM: usize = 256;
        let a = Matrix::<f32>::from_fn(DIM, DIM, |r, c| ((r * 31 + c * 7) % 13) as f32 * 0.1);
        let b = Matrix::<f32>::from_fn(DIM, DIM, |r, c| ((r * 17 + c * 3) % 11) as f32 * 0.1);
        let _ = gemm_nt(&a, &b);
        let start = Instant::now();
        let c = gemm_nt(&a, &b);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let _guard = c.get(0, 0);
        AnalyticalBmmModel {
            flops_per_second: gemm_flops(DIM, DIM, DIM) / elapsed,
            kernel: simd::active().name(),
        }
    }

    /// Builds a model from a known FLOP rate (for tests and datasheets).
    pub fn with_rate(flops_per_second: f64) -> AnalyticalBmmModel {
        assert!(
            flops_per_second > 0.0,
            "AnalyticalBmmModel: rate must be positive"
        );
        AnalyticalBmmModel {
            flops_per_second,
            kernel: "assumed",
        }
    }

    /// Predicted seconds for the `m × n × k` multiply stage (top-k
    /// selection excluded — see module docs).
    pub fn predict_seconds(&self, m: usize, n: usize, k: usize) -> f64 {
        gemm_flops(m, n, k) / self.flops_per_second
    }
}

/// A calibrated analytical cost model for the sparse inverted-index
/// accumulation stage — the postings analog of [`AnalyticalBmmModel`].
///
/// A postings walk is one fused multiply-add per stored nonzero, but
/// through an index indirection into a scattered accumulator, so its
/// sustained rate sits far below the dense GEMM rate and must be measured
/// separately. Calibration times a synthetic walk with the same access
/// pattern (gathered accumulator updates); prediction multiplies the rate
/// by the expected touched-posting count, which the engine derives from
/// sampled nnz/density statistics ([`mips_data::SparsityStats`]) the same
/// way the planner samples users for its timing runs. Like the BMM model it
/// covers only the accumulation stage — candidate selection and the exact
/// rescore are data-dependent and left to online sampling.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticalSparseModel {
    /// Sustained postings updates per second measured during calibration.
    pub updates_per_second: f64,
    /// The SIMD kernel set active at calibration time (the scalar walk does
    /// not dispatch, but the cache key and provenance mirror the BMM model).
    pub kernel: &'static str,
}

impl AnalyticalSparseModel {
    /// Calibrates by timing a synthetic term-at-a-time walk: 2¹⁸ postings
    /// scattered over a 4096-slot accumulator (big enough to defeat the
    /// store buffer, small enough to finish in milliseconds).
    pub fn calibrate() -> AnalyticalSparseModel {
        const POSTINGS: usize = 1 << 18;
        const SLOTS: usize = 4096;
        let items: Vec<u32> = (0..POSTINGS)
            .map(|p| ((p * 2654435761) % SLOTS) as u32)
            .collect();
        let values: Vec<f64> = (0..POSTINGS)
            .map(|p| ((p * 31 + 7) % 13) as f64 * 0.1)
            .collect();
        let mut acc = vec![0.0f64; SLOTS];
        let walk = |acc: &mut [f64]| {
            let q = 0.37f64;
            for (&i, &v) in items.iter().zip(&values) {
                let slot = &mut acc[i as usize];
                *slot = q.mul_add(v, *slot);
            }
        };
        walk(&mut acc); // warmup
        let start = Instant::now();
        walk(&mut acc);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        // Keep the accumulator alive so the walk cannot be optimized out.
        let _guard = acc[0];
        AnalyticalSparseModel {
            updates_per_second: POSTINGS as f64 / elapsed,
            kernel: simd::active().name(),
        }
    }

    /// Builds a model from a known update rate (for tests).
    pub fn with_rate(updates_per_second: f64) -> AnalyticalSparseModel {
        assert!(
            updates_per_second > 0.0,
            "AnalyticalSparseModel: rate must be positive"
        );
        AnalyticalSparseModel {
            updates_per_second,
            kernel: "assumed",
        }
    }

    /// Predicted seconds for `updates` accumulator updates (selection and
    /// rescore excluded — see type docs).
    pub fn predict_seconds(&self, updates: f64) -> f64 {
        assert!(updates >= 0.0, "AnalyticalSparseModel: negative work");
        updates / self.updates_per_second
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_linalg::gemm_nt_into;

    #[test]
    fn calibration_yields_plausible_rate() {
        let model = AnalyticalBmmModel::calibrate();
        // Anything from an emulator to a vector monster.
        assert!(model.flops_per_second > 1e6);
        assert!(model.flops_per_second < 1e13);
    }

    #[test]
    fn prediction_scales_linearly_with_flops() {
        let model = AnalyticalBmmModel::with_rate(1e9);
        let base = model.predict_seconds(100, 100, 100);
        assert!((model.predict_seconds(200, 100, 100) - 2.0 * base).abs() < 1e-12);
        assert!((model.predict_seconds(100, 300, 100) - 3.0 * base).abs() < 1e-12);
    }

    #[test]
    fn calibrated_prediction_matches_measurement_on_multiply_stage() {
        // The paper reports ~5 % accuracy for MKL on a fixed testbed; on a
        // shared VM we assert the right order of magnitude (within 4×),
        // which is all OPTIMUS's coarse-grained decision needs.
        let model = AnalyticalBmmModel::calibrate();
        let m = 300;
        let n = 400;
        let k = 64;
        let a = Matrix::<f64>::from_fn(m, k, |r, c| ((r + c) % 7) as f64 * 0.3);
        let b = Matrix::<f64>::from_fn(n, k, |r, c| ((r * 3 + c) % 5) as f64 * 0.2);
        let mut out = vec![0.0; m * n];
        // Warmup + best-of-three to tame scheduler noise.
        gemm_nt_into((&a).into(), (&b).into(), &mut out);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            gemm_nt_into((&a).into(), (&b).into(), &mut out);
            best = best.min(t.elapsed().as_secs_f64());
        }
        let predicted = model.predict_seconds(m, n, k);
        let ratio = predicted / best;
        assert!(
            (0.25..=4.0).contains(&ratio),
            "predicted {predicted}s vs measured {best}s (ratio {ratio})"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_rate() {
        let _ = AnalyticalBmmModel::with_rate(0.0);
    }

    #[test]
    fn sparse_calibration_yields_plausible_rate() {
        let model = AnalyticalSparseModel::calibrate();
        // One FMA per update: anywhere from an emulator to a wide core.
        assert!(model.updates_per_second > 1e5);
        assert!(model.updates_per_second < 1e12);
    }

    #[test]
    fn sparse_prediction_scales_linearly_with_updates() {
        let model = AnalyticalSparseModel::with_rate(1e8);
        let base = model.predict_seconds(1e6);
        assert!((model.predict_seconds(2e6) - 2.0 * base).abs() < 1e-12);
        assert_eq!(model.predict_seconds(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sparse_rejects_bad_rate() {
        let _ = AnalyticalSparseModel::with_rate(-1.0);
    }
}
