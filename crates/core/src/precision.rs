//! The numeric execution mode of the scan backends.
//!
//! The scan-dominated solvers (BMM, LEMP, MAXIMUS) can run their prune/scan
//! phase over an f32 mirror of the factor block ([`mips_topk::screen`]) or
//! over a symmetric int8 mirror with exact integer dots
//! ([`mips_topk::screen_i8`]), and rescore the surviving candidates in f64.
//! Because the rescore uses the exact same f64 reduction as the direct
//! path, all modes are **bit-identical** in their results — the choice is
//! purely a performance decision, which is why OPTIMUS can make it per plan
//! under [`Precision::Auto`].

/// How an engine (or one prepared plan) executes scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Pure double precision everywhere (the default).
    #[default]
    F64,
    /// f32 screen with conservative error envelope, exact f64 rescore of
    /// the survivors. Bit-identical results to [`Precision::F64`]. Backends
    /// without a screen path — and models whose factors round to ±∞ in f32
    /// — silently serve f64-direct.
    F32Rescore,
    /// Int8 screen — exact integer dots over per-row-scaled symmetric codes
    /// with a quantization envelope — and exact f64 rescore of the
    /// survivors. Bit-identical results to [`Precision::F64`]. Backends
    /// without an i8 path — and models whose quantization degenerates
    /// (subnormal rows, factor counts past the i32-overflow cap) — silently
    /// serve f64-direct.
    I8Rescore,
    /// Let OPTIMUS cost the f32 and int8 screens against f64-direct per
    /// backend and pick the sampled winner. Never slower than the best of
    /// the modes on the sample.
    Auto,
}

impl Precision {
    /// Stable lowercase wire name (`/metrics`, bench row identity).
    pub fn as_str(&self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32Rescore => "f32-rescore",
            Precision::I8Rescore => "i8-rescore",
            Precision::Auto => "auto",
        }
    }

    /// Parses the wire name produced by [`Precision::as_str`].
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f64" => Some(Precision::F64),
            "f32-rescore" => Some(Precision::F32Rescore),
            "i8-rescore" => Some(Precision::I8Rescore),
            "auto" => Some(Precision::Auto),
            _ => None,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_round_trip() {
        for p in [
            Precision::F64,
            Precision::F32Rescore,
            Precision::I8Rescore,
            Precision::Auto,
        ] {
            assert_eq!(Precision::parse(p.as_str()), Some(p));
            assert_eq!(format!("{p}"), p.as_str());
        }
        assert_eq!(Precision::parse("f32"), None);
        assert_eq!(Precision::default(), Precision::F64);
    }
}
