//! Blocked matrix multiply brute force: the hardware-efficient baseline of
//! §II-B.
//!
//! Users are processed in batches. On the default **fused** path each batch
//! streams `U_batch · Iᵀ` score panels straight into per-user top-k heaps
//! ([`mips_topk::gemm_nt_topk`]): only one NC-wide panel of scores is ever
//! resident, so selection happens on cache-warm data and the `batch × n`
//! score buffer of the two-stage pipeline never exists. The **unfused** path
//! (the paper's literal BMM recipe — MKL `dgemm` + `std::priority_queue`,
//! here our packed GEMM + bounded heap) is kept behind
//! [`BmmSolver::build_unfused`] as the A/B baseline for the fusion benches;
//! its score buffer is hoisted into the query loop and reused across batches
//! rather than re-allocated per block.
//!
//! Both paths run on the runtime-dispatched SIMD micro-kernels
//! ([`mips_linalg::simd`]); results are identical either way.

use crate::precision::Precision;
use crate::solver::{MipsSolver, ScreenTally, ScreenTallyCells};
use crate::sync::Arc;
use mips_data::{MfModel, Mirror32, MirrorI8};
use mips_linalg::{gemm_nt_into_scratch, CacheConfig, GemmScratch, Matrix, RowBlock};
use mips_topk::{
    gemm_nt_topk, rows_topk, screen_i8_topk_into_heaps, screen_topk_into_heaps, ColumnIds,
    QuantItems, QuantUsers, ScreenI8Scratch, ScreenScratch, TopKHeap, TopKList,
};
use std::ops::Range;
use std::time::Instant;

pub use mips_linalg::matrix::RowBlock as UserBlock;

/// Memory budget for one batch's score buffer on the unfused path. Sized to
/// the last-level cache: a larger buffer only adds write traffic for score
/// rows that the top-k scan immediately consumes and evicts. The fused path
/// keeps the same batch geometry (its resident panel is strictly smaller),
/// so fused-vs-unfused benches compare fusion alone.
const SCORE_BUFFER_BYTES: usize = 8 << 20;

/// The brute-force blocked-matrix-multiply solver.
///
/// A solver may cover only a contiguous user range of its model
/// ([`BmmSolver::build_view`]): queries then address users by **local** row
/// (`0..range.len()`), and every factor access offsets into the parent
/// matrix — the view is zero-copy over the factor block.
#[derive(Debug, Clone)]
pub struct BmmSolver {
    model: Arc<MfModel>,
    /// The contiguous user range served, in the model's (global) row space.
    users: Range<usize>,
    batch_rows: usize,
    build_seconds: f64,
    fused: bool,
    /// `Some` on a mixed-precision path: scans run over the tier's mirror
    /// with a conservative error envelope and survivors are rescored in
    /// f64, so results stay bit-identical to the pure-f64 path (see
    /// [`mips_topk::screen`] / [`mips_topk::screen_i8`]). `None` when the
    /// model doesn't mirror usably ([`Mirror32::is_usable`] /
    /// [`MirrorI8::is_usable`]) — then serving silently stays f64.
    screen: Option<ScreenTier>,
    /// Cumulative screen candidate/survivor counts, drained by the serving
    /// layer ([`MipsSolver::take_screen_stats`]). Clones share the cells —
    /// the counters describe the screen's selectivity, not one handle's.
    screen_tally: Arc<ScreenTallyCells>,
}

/// Which mixed-precision screen a [`BmmSolver`] scans with.
#[derive(Debug, Clone)]
enum ScreenTier {
    /// f32 mirror with a rounding envelope ([`mips_topk::screen`]).
    F32(Arc<Mirror32>),
    /// int8 mirror with a quantization envelope ([`mips_topk::screen_i8`]).
    I8(Arc<MirrorI8>),
}

/// One gathered block's worth of screen-side user data, matching the tier.
enum BlockScreen<'a> {
    F32(RowBlock<'a, f32>, &'a [f64]),
    I8(QuantUsers<'a>),
}

/// Requested screen tier at build time (before usability gating).
#[derive(Debug, Clone, Copy)]
enum TierKind {
    F32,
    I8,
}

/// Owned screen-side user data gathered for a `query_subset` call.
enum GatheredScreen {
    F32(Matrix<f32>, Vec<f64>),
    I8(Vec<i8>, Vec<f64>, Vec<f64>),
}

impl BmmSolver {
    /// Prepares the solver (no index; build cost is effectively zero).
    /// Serving takes the fused GEMM→top-k path.
    pub fn build(model: Arc<MfModel>) -> BmmSolver {
        let users = 0..model.num_users();
        Self::build_inner(model, users, true, false)
    }

    /// Prepares a solver over a contiguous user range of the model —
    /// zero-copy: only the range is stored; factor rows are read straight
    /// out of the shared matrix, offset by the range start. Queries use
    /// local user ids `0..view.num_users()`.
    pub fn build_view(view: &mips_data::ModelView) -> BmmSolver {
        Self::build_inner(Arc::clone(view.model()), view.user_range(), true, false)
    }

    /// Prepares the mixed-precision solver: the f32 screen of the fused
    /// scan plus an exact f64 rescore. The model's [`Mirror32`] is built
    /// here (or fetched from the epoch-shared cache), so the rounding cost
    /// is paid at build time, where OPTIMUS accounts it.
    pub fn build_screen(model: Arc<MfModel>) -> BmmSolver {
        let users = 0..model.num_users();
        Self::build_inner(model, users, true, true)
    }

    /// [`BmmSolver::build_screen`] over a contiguous user range — the f32
    /// mirror is shared with the parent model, so per-shard views get it
    /// for free.
    pub fn build_screen_view(view: &mips_data::ModelView) -> BmmSolver {
        Self::build_inner(Arc::clone(view.model()), view.user_range(), true, true)
    }

    /// Prepares the int8-screen solver: the exact-integer i8 screen of the
    /// scan plus an exact f64 rescore. The model's [`MirrorI8`] is built
    /// here (or fetched from the epoch-shared cache), so quantization cost
    /// is paid at build time, where OPTIMUS accounts it.
    pub fn build_screen_i8(model: Arc<MfModel>) -> BmmSolver {
        let users = 0..model.num_users();
        Self::build_tier(model, users, Some(TierKind::I8))
    }

    /// [`BmmSolver::build_screen_i8`] over a contiguous user range — the
    /// int8 mirror is shared with the parent model, so per-shard views get
    /// it for free.
    pub fn build_screen_i8_view(view: &mips_data::ModelView) -> BmmSolver {
        Self::build_tier(
            Arc::clone(view.model()),
            view.user_range(),
            Some(TierKind::I8),
        )
    }

    /// Prepares a solver that serves through the two-stage path (full score
    /// buffer, then a separate top-k pass). Kept for the fusion A/B benches
    /// and as a bisection aid; results are identical to the fused path.
    pub fn build_unfused(model: Arc<MfModel>) -> BmmSolver {
        let users = 0..model.num_users();
        Self::build_inner(model, users, false, false)
    }

    fn build_inner(
        model: Arc<MfModel>,
        users: Range<usize>,
        fused: bool,
        screen: bool,
    ) -> BmmSolver {
        let mut solver = Self::build_tier(model, users, screen.then_some(TierKind::F32));
        solver.fused = fused;
        solver
    }

    fn build_tier(model: Arc<MfModel>, users: Range<usize>, tier: Option<TierKind>) -> BmmSolver {
        let start = Instant::now();
        let batch_rows = Self::pick_batch_rows(model.num_items(), model.num_factors());
        let screen = match tier {
            Some(TierKind::F32) => Some(Arc::clone(model.mirror32()))
                .filter(|m| m.is_usable())
                .map(ScreenTier::F32),
            Some(TierKind::I8) => Some(Arc::clone(model.mirror_i8()))
                .filter(|m| m.is_usable())
                .map(ScreenTier::I8),
            None => None,
        };
        let build_seconds = start.elapsed().as_secs_f64();
        BmmSolver {
            model,
            users,
            batch_rows,
            build_seconds,
            fused: true,
            screen,
            screen_tally: Arc::new(ScreenTallyCells::default()),
        }
    }

    /// Users per GEMM batch: bounded by the score-buffer budget, floored at
    /// the L2-occupancy row count OPTIMUS also uses (§IV-A).
    fn pick_batch_rows(num_items: usize, f: usize) -> usize {
        let by_memory = (SCORE_BUFFER_BYTES / 8 / num_items.max(1)).max(1);
        let l2_floor = CacheConfig::default().rows_to_fill_l2(f, 8);
        by_memory.max(l2_floor)
    }

    /// The configured batch size (exposed for tests and benches).
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// `true` when serving takes the fused GEMM→top-k path.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// `true` when serving screens in a lower precision (a
    /// [`BmmSolver::build_screen`] / [`BmmSolver::build_screen_i8`] solver
    /// whose model mirrors usably).
    pub fn is_screening(&self) -> bool {
        self.screen.is_some()
    }

    /// Serves one gathered user block into `out`, reusing the caller's
    /// scratch (fused) or score buffer (unfused) across blocks. `screen`
    /// carries the block's rows of the f32 mirror plus their exact f64
    /// norms when the mixed-precision path is active.
    fn serve_block_into(
        &self,
        users: RowBlock<'_, f64>,
        screen: Option<BlockScreen<'_>>,
        k: usize,
        scratch: &mut BmmScratch,
        out: &mut Vec<TopKList>,
    ) {
        let n = self.model.num_items();
        if let Some(block_screen) = screen {
            let mut heaps: Vec<TopKHeap> = (0..users.rows()).map(|_| TopKHeap::new(k)).collect();
            let stats = match (block_screen, self.screen.as_ref()) {
                (BlockScreen::F32(users32, user_norms), Some(ScreenTier::F32(mirror))) => {
                    screen_topk_into_heaps(
                        users,
                        self.model.items().into(),
                        users32,
                        mirror.items().into(),
                        user_norms,
                        mirror.item_norms(),
                        &mut heaps,
                        ColumnIds::Offset(0),
                        &mut scratch.screen,
                    )
                }
                (BlockScreen::I8(users_q), Some(ScreenTier::I8(mirror))) => {
                    screen_i8_topk_into_heaps(
                        users,
                        self.model.items().into(),
                        users_q,
                        QuantItems {
                            codes: mirror.items_q(),
                            inv_scales: mirror.item_inv_scales(),
                            l1: mirror.item_l1(),
                        },
                        &mut heaps,
                        ColumnIds::Offset(0),
                        &mut scratch.screen_i8,
                    )
                }
                _ => unreachable!("block screen data mismatches the solver tier"),
            };
            self.screen_tally.record(stats.screened, stats.rescored);
            out.extend(heaps.into_iter().map(TopKHeap::into_sorted));
        } else if self.fused {
            out.extend(gemm_nt_topk(
                users,
                self.model.items().into(),
                k,
                &mut scratch.gemm,
            ));
        } else {
            scratch.scores.resize(users.rows() * n, 0.0);
            let scores = &mut scratch.scores[..users.rows() * n];
            gemm_nt_into_scratch(users, self.model.items().into(), scores, &mut scratch.gemm);
            out.extend(rows_topk(scores, users.rows(), n, k));
        }
    }
}

/// Per-query-loop reusable buffers: one of these lives on the stack of each
/// `query_*` invocation (and therefore per worker thread under
/// `par_query_*`). The bulk buffers — GEMM pack panels, the streaming score
/// panel, the unfused path's `batch × n` score buffer — are allocated once
/// per query loop and reused across blocks; what remains per block is only
/// the per-user output itself (heaps/lists of size `k`).
#[derive(Default)]
struct BmmScratch {
    gemm: GemmScratch<f64>,
    scores: Vec<f64>,
    screen: ScreenScratch,
    screen_i8: ScreenI8Scratch,
}

impl MipsSolver for BmmSolver {
    fn name(&self) -> &str {
        // The suffix matches the planner's candidate labelling, so the
        // `backend` response field and OPTIMUS estimates distinguish the
        // two numeric paths.
        match self.screen {
            Some(ScreenTier::F32(_)) => "Blocked MM+f32",
            Some(ScreenTier::I8(_)) => "Blocked MM+i8",
            None => "Blocked MM",
        }
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn batches_users(&self) -> bool {
        true
    }

    fn num_users(&self) -> usize {
        self.users.len()
    }

    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
        assert!(users.end <= self.num_users(), "user range out of bounds");
        let base = self.users.start;
        let mut scratch = BmmScratch::default();
        let mut out = Vec::with_capacity(users.len());
        let mut start = users.start;
        while start < users.end {
            let end = (start + self.batch_rows).min(users.end);
            let block = self.model.users().row_block(base + start, base + end);
            let f = self.model.num_factors();
            let screen = self.screen.as_ref().map(|tier| match tier {
                ScreenTier::F32(m) => BlockScreen::F32(
                    m.users().row_block(base + start, base + end),
                    &m.user_norms()[base + start..base + end],
                ),
                ScreenTier::I8(m) => BlockScreen::I8(QuantUsers {
                    codes: &m.users_q()[(base + start) * f..(base + end) * f],
                    scales: &m.user_scales()[base + start..base + end],
                    l1: &m.user_l1()[base + start..base + end],
                }),
            });
            self.serve_block_into(block, screen, k, &mut scratch, &mut out);
            start = end;
        }
        out
    }

    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
        crate::solver::dedup_query_subset(users, |distinct| {
            let base = self.users.start;
            let rows: Vec<usize> = distinct
                .iter()
                .map(|&u| {
                    assert!(u < self.num_users(), "user id out of bounds");
                    base + u
                })
                .collect();
            let gathered: Matrix<f64> = self.model.users().gather_rows(&rows);
            let gathered_screen = self.screen.as_ref().map(|tier| match tier {
                ScreenTier::F32(m) => {
                    let norms: Vec<f64> = rows.iter().map(|&r| m.user_norms()[r]).collect();
                    GatheredScreen::F32(m.users().gather_rows(&rows), norms)
                }
                ScreenTier::I8(m) => {
                    let f = m.factors();
                    let mut codes = Vec::with_capacity(rows.len() * f);
                    for &r in &rows {
                        codes.extend_from_slice(&m.users_q()[r * f..(r + 1) * f]);
                    }
                    GatheredScreen::I8(
                        codes,
                        rows.iter().map(|&r| m.user_scales()[r]).collect(),
                        rows.iter().map(|&r| m.user_l1()[r]).collect(),
                    )
                }
            });
            let f = self.model.num_factors();
            let mut scratch = BmmScratch::default();
            let mut out = Vec::with_capacity(distinct.len());
            let mut start = 0;
            while start < gathered.rows() {
                let end = (start + self.batch_rows).min(gathered.rows());
                let screen = gathered_screen.as_ref().map(|g| match g {
                    GatheredScreen::F32(m32, norms) => {
                        BlockScreen::F32(m32.row_block(start, end), &norms[start..end])
                    }
                    GatheredScreen::I8(codes, scales, l1) => BlockScreen::I8(QuantUsers {
                        codes: &codes[start * f..end * f],
                        scales: &scales[start..end],
                        l1: &l1[start..end],
                    }),
                });
                self.serve_block_into(
                    gathered.row_block(start, end),
                    screen,
                    k,
                    &mut scratch,
                    &mut out,
                );
                start = end;
            }
            out
        })
    }

    fn precision(&self) -> Precision {
        match self.screen {
            Some(ScreenTier::F32(_)) => Precision::F32Rescore,
            Some(ScreenTier::I8(_)) => Precision::I8Rescore,
            None => Precision::F64,
        }
    }

    fn take_screen_stats(&self) -> Option<ScreenTally> {
        self.screen.as_ref().map(|_| self.screen_tally.drain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_data::synth::{synth_model, SynthConfig};
    use mips_linalg::kernels::dot;
    use mips_topk::TopKHeap;

    fn model(users: usize, items: usize, f: usize) -> Arc<MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: users,
            num_items: items,
            num_factors: f,
            ..SynthConfig::default()
        }))
    }

    fn reference(model: &MfModel, u: usize, k: usize) -> TopKList {
        let mut heap = TopKHeap::new(k);
        for i in 0..model.num_items() {
            heap.push(dot(model.users().row(u), model.items().row(i)), i as u32);
        }
        heap.into_sorted()
    }

    #[test]
    fn matches_per_pair_reference() {
        let m = model(30, 50, 12);
        let solver = BmmSolver::build(Arc::clone(&m));
        let all = solver.query_all(5);
        for (u, got) in all.iter().enumerate() {
            let want = reference(&m, u, 5);
            assert_eq!(got.items, want.items, "user {u}");
            for (a, b) in got.scores.iter().zip(&want.scores) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn fused_and_unfused_paths_agree_exactly() {
        let m = model(45, 120, 10);
        let fused = BmmSolver::build(Arc::clone(&m));
        let unfused = BmmSolver::build_unfused(Arc::clone(&m));
        assert!(fused.is_fused());
        assert!(!unfused.is_fused());
        for k in [0usize, 1, 7, 120, 500] {
            assert_eq!(fused.query_all(k), unfused.query_all(k), "k={k}");
        }
        let ids: Vec<usize> = vec![3, 40, 3, 11];
        assert_eq!(fused.query_subset(5, &ids), unfused.query_subset(5, &ids));
    }

    #[test]
    fn batching_is_invisible_to_results() {
        let m = model(40, 20, 6);
        let mut solver = BmmSolver::build(Arc::clone(&m));
        let whole = solver.query_all(4);
        solver.batch_rows = 7; // force many partial batches
        let batched = solver.query_all(4);
        assert_eq!(whole, batched);
    }

    #[test]
    fn subset_and_range_agree() {
        let m = model(25, 15, 5);
        let solver = BmmSolver::build(m);
        let range = solver.query_range(3, 10..20);
        let subset = solver.query_subset(3, &(10..20).collect::<Vec<_>>());
        assert_eq!(range, subset);
    }

    #[test]
    fn k_edge_cases() {
        let m = model(5, 8, 4);
        let solver = BmmSolver::build(m);
        assert!(solver.query_all(0).iter().all(|l| l.is_empty()));
        let big = solver.query_all(100);
        assert!(big.iter().all(|l| l.len() == 8));
        let empty_range = solver.query_range(3, 2..2);
        assert!(empty_range.is_empty());
    }

    #[test]
    fn view_solver_matches_the_global_solver_bit_for_bit() {
        use mips_data::ModelView;
        let m = model(37, 60, 9);
        let global = BmmSolver::build(Arc::clone(&m));
        let view = ModelView::of_range(&m, 11..29);
        let local = BmmSolver::build_view(&view);
        assert_eq!(local.num_users(), 18);
        // Local range 0..18 is global 11..29, down to every score bit.
        assert_eq!(local.query_range(5, 0..18), global.query_range(5, 11..29));
        assert_eq!(
            local.query_subset(4, &[0, 17, 3, 3]),
            global.query_subset(4, &[11, 28, 14, 14])
        );
        // The full view degenerates to the global solver.
        let full = BmmSolver::build_view(&ModelView::full(&m));
        assert_eq!(full.query_all(6), global.query_all(6));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_solver_rejects_local_ids_past_the_view() {
        use mips_data::ModelView;
        let m = model(10, 8, 4);
        let local = BmmSolver::build_view(&ModelView::of_range(&m, 2..6));
        let _ = local.query_subset(1, &[4]);
    }

    #[test]
    fn batch_rows_respects_l2_floor() {
        let cache = CacheConfig::default();
        let floor = cache.rows_to_fill_l2(100, 8);
        assert!(BmmSolver::pick_batch_rows(10_000_000, 100) >= floor);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_range() {
        let m = model(5, 8, 4);
        let solver = BmmSolver::build(m);
        let _ = solver.query_range(1, 0..6);
    }
}
