//! Blocked matrix multiply brute force: the hardware-efficient baseline of
//! §II-B.
//!
//! Users are processed in batches; each batch is one `U_batch · Iᵀ` blocked
//! GEMM followed by a heap top-k per score row, exactly the paper's BMM
//! implementation (MKL `dgemm` + `std::priority_queue`, here our own packed
//! GEMM + bounded heap). Batch size is chosen so the score buffer stays
//! within a fixed memory budget while comfortably exceeding the L2-occupancy
//! point where GEMM reaches its streaming throughput.

use crate::solver::MipsSolver;
use mips_data::MfModel;
use mips_linalg::{gemm_nt_into, CacheConfig, Matrix, RowBlock};
use mips_topk::{rows_topk, TopKList};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

pub use mips_linalg::matrix::RowBlock as UserBlock;

/// Memory budget for one batch's score buffer. Sized to the last-level
/// cache: a larger buffer only adds write traffic for score rows that the
/// top-k scan immediately consumes and evicts, and measurably slows the
/// full run relative to OPTIMUS's sampled runs.
const SCORE_BUFFER_BYTES: usize = 8 << 20;

/// The brute-force blocked-matrix-multiply solver.
#[derive(Debug, Clone)]
pub struct BmmSolver {
    model: Arc<MfModel>,
    batch_rows: usize,
    build_seconds: f64,
}

impl BmmSolver {
    /// Prepares the solver (no index; build cost is effectively zero).
    pub fn build(model: Arc<MfModel>) -> BmmSolver {
        let start = Instant::now();
        let batch_rows = Self::pick_batch_rows(model.num_items(), model.num_factors());
        let build_seconds = start.elapsed().as_secs_f64();
        BmmSolver {
            model,
            batch_rows,
            build_seconds,
        }
    }

    /// Users per GEMM batch: bounded by the score-buffer budget, floored at
    /// the L2-occupancy row count OPTIMUS also uses (§IV-A).
    fn pick_batch_rows(num_items: usize, f: usize) -> usize {
        let by_memory = (SCORE_BUFFER_BYTES / 8 / num_items.max(1)).max(1);
        let l2_floor = CacheConfig::default().rows_to_fill_l2(f, 8);
        by_memory.max(l2_floor)
    }

    /// The configured batch size (exposed for tests and benches).
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// Scores one gathered user block and selects per-row top-k.
    fn serve_block(&self, users: RowBlock<'_, f64>, k: usize) -> Vec<TopKList> {
        let n = self.model.num_items();
        let mut scores = vec![0.0f64; users.rows() * n];
        gemm_nt_into(users, self.model.items().into(), &mut scores);
        rows_topk(&scores, users.rows(), n, k)
    }
}

impl MipsSolver for BmmSolver {
    fn name(&self) -> &str {
        "Blocked MM"
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn batches_users(&self) -> bool {
        true
    }

    fn num_users(&self) -> usize {
        self.model.num_users()
    }

    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
        assert!(users.end <= self.num_users(), "user range out of bounds");
        let mut out = Vec::with_capacity(users.len());
        let mut start = users.start;
        while start < users.end {
            let end = (start + self.batch_rows).min(users.end);
            let block = self.model.users().row_block(start, end);
            out.extend(self.serve_block(block, k));
            start = end;
        }
        out
    }

    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
        crate::solver::dedup_query_subset(users, |distinct| {
            let gathered: Matrix<f64> = self.model.users().gather_rows(distinct);
            let mut out = Vec::with_capacity(distinct.len());
            let mut start = 0;
            while start < gathered.rows() {
                let end = (start + self.batch_rows).min(gathered.rows());
                out.extend(self.serve_block(gathered.row_block(start, end), k));
                start = end;
            }
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_data::synth::{synth_model, SynthConfig};
    use mips_linalg::kernels::dot;
    use mips_topk::TopKHeap;

    fn model(users: usize, items: usize, f: usize) -> Arc<MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: users,
            num_items: items,
            num_factors: f,
            ..SynthConfig::default()
        }))
    }

    fn reference(model: &MfModel, u: usize, k: usize) -> TopKList {
        let mut heap = TopKHeap::new(k);
        for i in 0..model.num_items() {
            heap.push(dot(model.users().row(u), model.items().row(i)), i as u32);
        }
        heap.into_sorted()
    }

    #[test]
    fn matches_per_pair_reference() {
        let m = model(30, 50, 12);
        let solver = BmmSolver::build(Arc::clone(&m));
        let all = solver.query_all(5);
        for (u, got) in all.iter().enumerate() {
            let want = reference(&m, u, 5);
            assert_eq!(got.items, want.items, "user {u}");
            for (a, b) in got.scores.iter().zip(&want.scores) {
                assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
            }
        }
    }

    #[test]
    fn batching_is_invisible_to_results() {
        let m = model(40, 20, 6);
        let mut solver = BmmSolver::build(Arc::clone(&m));
        let whole = solver.query_all(4);
        solver.batch_rows = 7; // force many partial batches
        let batched = solver.query_all(4);
        assert_eq!(whole, batched);
    }

    #[test]
    fn subset_and_range_agree() {
        let m = model(25, 15, 5);
        let solver = BmmSolver::build(m);
        let range = solver.query_range(3, 10..20);
        let subset = solver.query_subset(3, &(10..20).collect::<Vec<_>>());
        assert_eq!(range, subset);
    }

    #[test]
    fn k_edge_cases() {
        let m = model(5, 8, 4);
        let solver = BmmSolver::build(m);
        assert!(solver.query_all(0).iter().all(|l| l.is_empty()));
        let big = solver.query_all(100);
        assert!(big.iter().all(|l| l.len() == 8));
        let empty_range = solver.query_range(3, 2..2);
        assert!(empty_range.is_empty());
    }

    #[test]
    fn batch_rows_respects_l2_floor() {
        let cache = CacheConfig::default();
        let floor = cache.rows_to_fill_l2(100, 8);
        assert!(BmmSolver::pick_batch_rows(10_000_000, 100) >= floor);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_bad_range() {
        let m = model(5, 8, 4);
        let solver = BmmSolver::build(m);
        let _ = solver.query_range(1, 0..6);
    }
}
