//! Semantic exactness checking for top-k results.
//!
//! Comparing two solvers' item lists bit-for-bit is brittle when scores sit
//! within floating-point rounding of each other at the k-th boundary. This
//! checker instead verifies what "exact MIPS" actually promises: every
//! returned item scores at least as high (within tolerance) as the true k-th
//! best rating, the reported scores are genuine, and the list is sorted.
//! It is used by the cross-crate integration tests and available to
//! downstream users who want to validate a custom solver.

use mips_data::MfModel;
use mips_linalg::kernels::dot;
use mips_topk::{TopKHeap, TopKList};

/// Verifies one user's result against a freshly computed reference.
///
/// Returns a description of the first violation, or `Ok(())`.
pub fn check_user_topk(
    model: &MfModel,
    user: usize,
    k: usize,
    result: &TopKList,
    tol: f64,
) -> Result<(), String> {
    let expected_len = k.min(model.num_items());
    if result.len() != expected_len {
        return Err(format!(
            "user {user}: expected {expected_len} results, got {}",
            result.len()
        ));
    }
    if !result.is_sorted() && result.len() >= 2 {
        return Err(format!("user {user}: result list is not sorted best-first"));
    }

    // Reference: the true k-th best score.
    let urow = model.users().row(user);
    let mut heap = TopKHeap::new(k);
    for i in 0..model.num_items() {
        heap.push(dot(urow, model.items().row(i)), i as u32);
    }
    let reference = heap.into_sorted();
    let kth_score = reference
        .scores
        .last()
        .copied()
        .unwrap_or(f64::NEG_INFINITY);

    let mut seen = std::collections::BTreeSet::new();
    for (item, score) in result.iter() {
        if item as usize >= model.num_items() {
            return Err(format!("user {user}: item id {item} out of range"));
        }
        if !seen.insert(item) {
            return Err(format!("user {user}: duplicate item {item}"));
        }
        let truth = dot(urow, model.items().row(item as usize));
        let scale = 1.0 + truth.abs().max(score.abs());
        if (truth - score).abs() > tol * scale {
            return Err(format!(
                "user {user}: reported score {score} for item {item}, true score {truth}"
            ));
        }
        if truth < kth_score - tol * (1.0 + kth_score.abs()) {
            return Err(format!(
                "user {user}: item {item} scores {truth}, below the true k-th best {kth_score}"
            ));
        }
    }
    Ok(())
}

/// Verifies all users' results; reports the first violation.
pub fn check_all_topk(
    model: &MfModel,
    k: usize,
    results: &[TopKList],
    tol: f64,
) -> Result<(), String> {
    if results.len() != model.num_users() {
        return Err(format!(
            "expected {} result lists, got {}",
            model.num_users(),
            results.len()
        ));
    }
    for (u, list) in results.iter().enumerate() {
        check_user_topk(model, u, k, list, tol)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::BmmSolver;
    use crate::solver::MipsSolver;
    use crate::sync::Arc;
    use mips_data::synth::{synth_model, SynthConfig};

    fn model() -> Arc<MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: 12,
            num_items: 30,
            num_factors: 6,
            ..SynthConfig::default()
        }))
    }

    #[test]
    fn accepts_correct_results() {
        let m = model();
        let solver = BmmSolver::build(Arc::clone(&m));
        let results = solver.query_all(5);
        check_all_topk(&m, 5, &results, 1e-9).unwrap();
    }

    #[test]
    fn rejects_wrong_length() {
        let m = model();
        let solver = BmmSolver::build(Arc::clone(&m));
        let mut results = solver.query_all(5);
        results[3].items.pop();
        results[3].scores.pop();
        let err = check_all_topk(&m, 5, &results, 1e-9).unwrap_err();
        assert!(err.contains("user 3"));
        assert!(err.contains("expected 5"));
    }

    #[test]
    fn rejects_fabricated_scores() {
        let m = model();
        let solver = BmmSolver::build(Arc::clone(&m));
        let mut results = solver.query_all(2);
        results[0].scores[0] += 1.0;
        let err = check_all_topk(&m, 2, &results, 1e-9).unwrap_err();
        assert!(err.contains("reported score"));
    }

    #[test]
    fn rejects_suboptimal_items() {
        let m = model();
        let solver = BmmSolver::build(Arc::clone(&m));
        let mut results = solver.query_all(1);
        // Replace user 0's best item with whatever its true worst item is.
        let urow = m.users().row(0);
        let worst = (0..m.num_items())
            .min_by(|&a, &b| dot(urow, m.items().row(a)).total_cmp(&dot(urow, m.items().row(b))))
            .unwrap();
        if worst as u32 != results[0].items[0] {
            results[0].items[0] = worst as u32;
            results[0].scores[0] = dot(urow, m.items().row(worst));
            let err = check_all_topk(&m, 1, &results, 1e-9).unwrap_err();
            assert!(err.contains("below the true k-th best"), "{err}");
        }
    }

    #[test]
    fn rejects_duplicates_and_bad_ids() {
        let m = model();
        let solver = BmmSolver::build(Arc::clone(&m));
        let mut results = solver.query_all(3);
        results[1].items[2] = results[1].items[0];
        results[1].scores[2] = results[1].scores[0];
        let err = check_all_topk(&m, 3, &results, 1e-9).unwrap_err();
        assert!(err.contains("user 1"), "{err}");

        let mut results = solver.query_all(3);
        results[2].items[0] = 9999;
        let err = check_all_topk(&m, 3, &results, 1e-9).unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn rejects_wrong_result_count() {
        let m = model();
        let solver = BmmSolver::build(Arc::clone(&m));
        let results = solver.query_all(2);
        let err = check_all_topk(&m, 2, &results[..5], 1e-9).unwrap_err();
        assert!(err.contains("result lists"));
    }
}
