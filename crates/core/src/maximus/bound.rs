//! The Koenigstein angular bound (Equations 2 and 3 of the paper).
//!
//! For a user `u` assigned to a cluster with centroid `c`, the triangle
//! inequality on angular distance gives `θ_ui ≥ θ_ic − θ_uc`, hence the
//! norm-scaled rating `r*_ui = uᵀi / ‖u‖ = ‖i‖·cos(θ_ui)` is at most
//!
//! ```text
//! r*_ui ≤ ‖i‖·cos(θ_ic − θ_b)   if θ_b < θ_ic      (Eqn. 3)
//! r*_ui ≤ ‖i‖                    otherwise
//! ```
//!
//! where `θ_b = max_{u ∈ C} θ_uc` is the cluster's worst user–centroid
//! angle. MAXIMUS sorts each cluster's items by this bound and stops walking
//! the list as soon as the bound falls below the current top-k threshold.

/// Evaluates the cluster bound `CBound(c, i, θ_b)` of Algorithm 1.
///
/// `item_norm` is `‖i‖`, `theta_ic` the angle between item and centroid and
/// `theta_b` the cluster's maximum user–centroid angle, all in radians.
#[inline]
pub fn cbound(item_norm: f64, theta_ic: f64, theta_b: f64) -> f64 {
    debug_assert!(item_norm >= 0.0);
    if theta_b < theta_ic {
        item_norm * (theta_ic - theta_b).cos()
    } else {
        item_norm
    }
}

/// Additive slack applied to `θ_b` at construction. `acos` is
/// ill-conditioned near 0 and π (error ~ √ε ≈ 1e-8 for double inputs a few
/// ulps outside [-1, 1] before clamping), so the stored angle is widened by
/// an order of magnitude more than the worst case; a wider angle only
/// loosens the bound, never breaking exactness.
pub const THETA_SLACK: f64 = 1e-7;

/// Relative slack applied to the bound value itself (covers the `cos`,
/// multiply and compare rounding at query time).
pub const BOUND_REL_SLACK: f64 = 1e-9;

/// The inflated, sort-ready bound stored in the index:
/// `CBound(‖i‖, θ_ic, θ_b + THETA_SLACK) + ‖i‖·BOUND_REL_SLACK`.
#[inline]
pub fn stored_bound(item_norm: f64, theta_ic: f64, theta_b: f64) -> f64 {
    cbound(item_norm, theta_ic, theta_b + THETA_SLACK) + item_norm * BOUND_REL_SLACK
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_linalg::kernels::{angle, dot, norm2};

    #[test]
    fn equals_norm_when_theta_b_dominates() {
        assert_eq!(cbound(2.0, 0.3, 0.3), 2.0);
        assert_eq!(cbound(2.0, 0.3, 0.5), 2.0);
        assert_eq!(cbound(5.0, 0.0, 0.0), 5.0);
    }

    #[test]
    fn shrinks_with_angular_separation() {
        // Far item, tight cluster: bound approaches ‖i‖·cos(θ_ic).
        let tight = cbound(1.0, 1.2, 0.1);
        let loose = cbound(1.0, 1.2, 0.8);
        assert!(tight < loose);
        assert!((cbound(1.0, std::f64::consts::FRAC_PI_2, 0.0) - 0.0).abs() < 1e-12);
    }

    /// The central exactness property: for random (user, centroid, item)
    /// triples with θ_uc ≤ θ_b, the bound dominates the true normalized
    /// rating.
    #[test]
    fn dominates_true_normalized_rating() {
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for trial in 0..2000 {
            let f = 2 + (trial % 7);
            let user: Vec<f64> = (0..f).map(|_| next()).collect();
            let centroid: Vec<f64> = (0..f).map(|_| next()).collect();
            let item: Vec<f64> = (0..f).map(|_| next()).collect();
            let un = norm2(&user);
            if un == 0.0 || norm2(&centroid) == 0.0 {
                continue;
            }
            let theta_uc = angle(&user, &centroid);
            let theta_ic = angle(&item, &centroid);
            // θ_b must dominate θ_uc, as it does for all cluster members.
            let theta_b = theta_uc * (1.0 + (next().abs() * 0.5));
            let r_star = dot(&user, &item) / un;
            let bound = cbound(norm2(&item), theta_ic, theta_b);
            assert!(
                r_star <= bound + 1e-9 * (1.0 + bound.abs()),
                "trial {trial}: r* {r_star} > bound {bound} (θ_uc={theta_uc}, θ_ic={theta_ic}, θ_b={theta_b})"
            );
        }
    }

    #[test]
    fn stored_bound_strictly_dominates_cbound() {
        for &(n, tic, tb) in &[(1.0, 0.7, 0.2), (3.0, 0.1, 0.9), (0.0, 1.0, 0.0)] {
            assert!(stored_bound(n, tic, tb) >= cbound(n, tic, tb));
        }
    }

    #[test]
    fn zero_norm_item_bounds_at_zero() {
        assert_eq!(cbound(0.0, 0.4, 0.1), 0.0);
        assert_eq!(stored_bound(0.0, 0.4, 0.1), 0.0);
    }
}
