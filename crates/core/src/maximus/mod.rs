//! MAXIMUS: the paper's hardware-friendly exact MIPS index (§III).
//!
//! Construction (Algorithm 1, `ConstructIndex`):
//! 1. cluster users with a few iterations of k-means (§III-A; defaults
//!    `|C| = 8`, `i = 3`),
//! 2. compute each cluster's worst user–centroid angle `θ_b`,
//! 3. for every cluster, sort all items descending by the Koenigstein bound
//!    `CBound(c, i, θ_b)` ([`bound`]).
//!
//! Querying (Algorithm 1, `QueryIndex`, plus the §III-D blocking
//! optimization): users of a cluster share one blocked matrix multiply over
//! the first `B` items of the cluster's list, then walk the remainder
//! individually, stopping at the first position whose bound (scaled by
//! `‖u‖`) falls below their heap threshold.

pub mod bound;

use crate::maximus::bound::stored_bound;
use crate::solver::{MipsSolver, ScreenTally, ScreenTallyCells};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Arc;
use mips_clustering::{kmeans, max_angles_per_cluster, KMeansConfig};
use mips_data::MfModel;
use mips_linalg::kernels::{angle, dot, dot_gemm_ordered_x4, f32_screen_envelope_parts, norm2};
use mips_linalg::{dot_i8, i8_screen_envelope_parts, quantize_row_i8, GemmScratch, Matrix};
use mips_topk::{stream_topk_into_heaps, ColumnIds, TopKHeap, TopKList};
use std::ops::Range;
use std::time::Instant;

/// Which clustering algorithm groups the users (§III-A).
///
/// The ideal objective is angular (spherical clustering, as in Koenigstein
/// et al. \[18\]); the paper measures plain Euclidean k-means within ~7 % of
/// spherical's θ_b quality at 2–3× less cost and ships it as the default.
/// Both remain available so the trade-off can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusteringAlgo {
    /// Euclidean k-means with k-means++ seeding (the paper's choice).
    #[default]
    KMeans,
    /// Spherical k-means (unit centroids, cosine objective).
    Spherical,
}

/// MAXIMUS parameters (§III-D: "B = 4096, |C| = 8, and i = 3 is effective
/// for many inputs").
#[derive(Debug, Clone, Copy)]
pub struct MaximusConfig {
    /// Number of user clusters `|C|`.
    pub num_clusters: usize,
    /// k-means iterations `i`.
    pub kmeans_iters: usize,
    /// Item blocking factor `B`: list prefix scored with a shared GEMM.
    pub block_size: usize,
    /// Lesion switch for the §III-D item-blocking optimization (Fig. 8).
    pub item_blocking: bool,
    /// User clustering algorithm (§III-A lesion).
    pub clustering: ClusteringAlgo,
    /// Seed for clustering.
    pub seed: u64,
}

impl Default for MaximusConfig {
    fn default() -> Self {
        MaximusConfig {
            num_clusters: 8,
            kmeans_iters: 3,
            block_size: 4096,
            item_blocking: true,
            clustering: ClusteringAlgo::KMeans,
            seed: 0x0A_11_05,
        }
    }
}

/// Build-stage wall-clock breakdown (Fig. 8's first two bars).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaximusBuildStats {
    /// k-means time.
    pub clustering_seconds: f64,
    /// Bound computation + sorting + list gathering time.
    pub construction_seconds: f64,
}

/// Cumulative query work counters (w̄ of Eqn. 4 is
/// `items_blocked + items_walked` per served user).
#[derive(Debug, Default)]
pub struct MaximusQueryStats {
    /// Users served.
    pub users_served: AtomicU64,
    /// Items scored through the shared blocked multiply.
    pub items_blocked: AtomicU64,
    /// Items scored individually during the list walk.
    pub items_walked: AtomicU64,
    /// Items skipped by early termination.
    pub items_pruned: AtomicU64,
    /// Walked items whose exact dot (and guaranteed-rejected push) the
    /// mixed-precision screen — f32 or int8 — skipped; counted neither as
    /// walked nor pruned.
    pub items_screen_pruned: AtomicU64,
}

impl MaximusQueryStats {
    /// Average items visited per user (the paper's w̄).
    pub fn avg_items_visited(&self) -> f64 {
        let users = self.users_served.load(Ordering::Relaxed);
        if users == 0 {
            return 0.0;
        }
        (self.items_blocked.load(Ordering::Relaxed) + self.items_walked.load(Ordering::Relaxed))
            as f64
            / users as f64
    }
}

/// One cluster's sorted item list.
struct ClusterIndex {
    /// Worst member angle θ_b (inflated by the construction slack).
    theta_b: f64,
    /// Item ids sorted descending by stored bound.
    list_ids: Vec<u32>,
    /// Inflated `CBound` per list position, descending.
    bounds: Vec<f64>,
    /// Per-position angle θ_ic (needed to re-derive bounds for new users,
    /// §III-E).
    theta_ic: Vec<f64>,
    /// Item norms per list position.
    norms: Vec<f64>,
    /// Item vectors gathered in list order (the `O(|C||I|f)` storage of
    /// §III-D; sequential walks instead of random model access).
    items: Matrix<f64>,
    /// Rounded single-precision mirror of `items`, present only when the
    /// mixed-precision screen is enabled ([`MaximusIndex::enable_screen`]).
    items32: Option<Matrix<f32>>,
    /// Symmetric int8 mirror of `items` in list order, present only when
    /// the int8 screen is enabled ([`MaximusIndex::enable_screen_i8`]).
    items_i8: Option<ClusterI8>,
    /// Members (user ids) of this cluster.
    members: Vec<u32>,
}

/// One cluster's int8 walk-screen data, gathered in list order from the
/// model's shared [`mips_data::MirrorI8`] so sibling structures reuse one
/// quantization pass and the walk streams codes sequentially like the f64
/// item matrix.
struct ClusterI8 {
    /// Item codes per list position, row-major (`n × f`).
    codes: Vec<i8>,
    /// `1 / s_i` per list position (reconstruction multipliers).
    inv_scales: Vec<f64>,
    /// Exact L1 norm per list position (envelope input).
    l1: Vec<f64>,
}

/// Per-user screen state for the list walk, set up once per user from the
/// cluster's enabled tier.
enum UserScreen<'a> {
    F32 {
        m32: &'a Matrix<f32>,
        user32: Vec<f32>,
        env_rel_u: f64,
        env_abs: f64,
    },
    I8 {
        ci: &'a ClusterI8,
        codes: Vec<i8>,
        inv_su: f64,
        env_a: f64,
        env_b: f64,
    },
}

/// The built MAXIMUS index.
pub struct MaximusIndex {
    model: Arc<MfModel>,
    config: MaximusConfig,
    assignments: Vec<u32>,
    clusters: Vec<ClusterIndex>,
    centroids: Matrix<f64>,
    build_stats: MaximusBuildStats,
    build_seconds: f64,
    query_stats: MaximusQueryStats,
    /// Cumulative screen candidate/survivor counts, drained by the serving
    /// layer ([`MipsSolver::take_screen_stats`]); separate from
    /// [`MaximusQueryStats`], whose counters benches read cumulatively.
    screen_tally: ScreenTallyCells,
    screening: bool,
    screening_i8: bool,
}

impl MaximusIndex {
    /// Builds the index: cluster users, compute θ_b, sort item lists.
    ///
    /// # Panics
    /// Panics on a degenerate configuration.
    pub fn build(model: Arc<MfModel>, config: &MaximusConfig) -> MaximusIndex {
        assert!(
            config.num_clusters > 0,
            "MaximusConfig: num_clusters must be > 0"
        );
        assert!(
            config.kmeans_iters > 0,
            "MaximusConfig: kmeans_iters must be > 0"
        );
        assert!(
            config.block_size > 0,
            "MaximusConfig: block_size must be > 0"
        );

        let t0 = Instant::now();
        let kconfig = KMeansConfig {
            k: config.num_clusters,
            max_iters: config.kmeans_iters,
            seed: config.seed,
        };
        let clustering = match config.clustering {
            ClusteringAlgo::KMeans => kmeans(model.users(), &kconfig),
            ClusteringAlgo::Spherical => mips_clustering::spherical_kmeans(model.users(), &kconfig),
        };
        let thetas = max_angles_per_cluster(model.users(), &clustering);
        let clustering_seconds = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let item_norms: Vec<f64> = model.items().row_norms();
        let clusters: Vec<ClusterIndex> = (0..clustering.k())
            .map(|c| {
                let centroid = clustering.centroids.row(c);
                // A zero centroid leaves every member angle undefined: fall
                // back to the fully conservative θ_b = π (bound = ‖i‖).
                let theta_b = if norm2(centroid) == 0.0 {
                    std::f64::consts::PI
                } else {
                    thetas[c]
                };
                build_cluster_list(
                    model.items(),
                    &item_norms,
                    centroid,
                    theta_b,
                    clustering.members[c].clone(),
                )
            })
            .collect();
        let construction_seconds = t1.elapsed().as_secs_f64();

        MaximusIndex {
            assignments: clustering.assignments,
            centroids: clustering.centroids,
            clusters,
            config: *config,
            build_stats: MaximusBuildStats {
                clustering_seconds,
                construction_seconds,
            },
            build_seconds: clustering_seconds + construction_seconds,
            query_stats: MaximusQueryStats::default(),
            screen_tally: ScreenTallyCells::default(),
            model,
            screening: false,
            screening_i8: false,
        }
    }

    /// [`MaximusIndex::build`] with the mixed-precision screen enabled.
    pub fn build_screen(model: Arc<MfModel>, config: &MaximusConfig) -> MaximusIndex {
        let mut index = MaximusIndex::build(model, config);
        index.enable_screen();
        index
    }

    /// [`MaximusIndex::build`] with the int8 screen enabled (when the
    /// model quantizes usably — degenerate models build the plain index).
    pub fn build_screen_i8(model: Arc<MfModel>, config: &MaximusConfig) -> MaximusIndex {
        let mut index = MaximusIndex::build(model, config);
        index.enable_screen_i8();
        index
    }

    /// Enables the mixed-precision screen on the **list walk**: each
    /// cluster's gathered item matrix gets a rounded f32 mirror, and walked
    /// items are pre-scored through the single-precision kernels — the
    /// exact dot and its push are skipped only when the
    /// [`mips_linalg::f32_screen_envelope`]-widened screen score proves the
    /// push would be rejected, so results stay bit-identical. The §III-D
    /// blocked prefix stays f64 (it is GEMM-bound; the `bmm` screen variant
    /// covers that regime), as does the §III-E new-vector path. The
    /// rounding pass is timed into `build_seconds`. Idempotent.
    pub fn enable_screen(&mut self) {
        let t = Instant::now();
        for c in &mut self.clusters {
            if c.items32.is_none() {
                let (n, f) = (c.items.rows(), c.items.cols());
                let mirror = Matrix::from_fn(n, f, |r, j| c.items.get(r, j) as f32);
                c.items32 = Some(mirror);
            }
        }
        self.screening = true;
        self.build_seconds += t.elapsed().as_secs_f64();
    }

    /// Enables the int8 screen on the **list walk** — the tier below
    /// [`MaximusIndex::enable_screen`]: each cluster gathers symmetric int8
    /// codes (plus reconstruction scales and L1 norms) from the model's
    /// shared [`mips_data::MirrorI8`] in list order, and walked items are
    /// pre-scored with exact integer dots — the exact f64 dot and its push
    /// are skipped only when the quantization-envelope-widened estimate
    /// proves the push would be rejected, so results stay bit-identical.
    /// No-op (the index keeps its plain f64 identity) when the model's
    /// quantization is degenerate — subnormal rows or factor counts past
    /// the i32-overflow cap. Takes precedence over an armed f32 screen.
    /// The gather pass is timed into `build_seconds`. Idempotent.
    pub fn enable_screen_i8(&mut self) {
        let t = Instant::now();
        let mirror = self.model.mirror_i8();
        if !mirror.is_usable() {
            return;
        }
        let f = self.model.num_factors();
        for c in &mut self.clusters {
            if c.items_i8.is_none() {
                let n = c.list_ids.len();
                let mut codes = vec![0i8; n * f];
                let mut inv_scales = Vec::with_capacity(n);
                let mut l1 = Vec::with_capacity(n);
                for (pos, &id) in c.list_ids.iter().enumerate() {
                    codes[pos * f..(pos + 1) * f].copy_from_slice(mirror.item_row(id as usize));
                    inv_scales.push(mirror.item_inv_scales()[id as usize]);
                    l1.push(mirror.item_l1()[id as usize]);
                }
                c.items_i8 = Some(ClusterI8 {
                    codes,
                    inv_scales,
                    l1,
                });
            }
        }
        self.screening_i8 = true;
        self.build_seconds += t.elapsed().as_secs_f64();
    }

    /// `true` once [`MaximusIndex::enable_screen`] has armed the screen.
    pub fn is_screening(&self) -> bool {
        self.screening
    }

    /// `true` once [`MaximusIndex::enable_screen_i8`] has armed the int8
    /// screen (never on models whose quantization is degenerate).
    pub fn is_screening_i8(&self) -> bool {
        self.screening_i8
    }

    /// Build-stage breakdown (Fig. 8).
    pub fn build_stats(&self) -> MaximusBuildStats {
        self.build_stats
    }

    /// Cumulative query work counters.
    pub fn query_stats(&self) -> &MaximusQueryStats {
        &self.query_stats
    }

    /// The cluster each user is assigned to.
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// θ_b per cluster (diagnostics / ablations).
    pub fn cluster_thetas(&self) -> Vec<f64> {
        self.clusters.iter().map(|c| c.theta_b).collect()
    }

    /// Serves one cluster's user group: shared **fused** GEMM→heap streaming
    /// over the list prefix, then individual walks. `group` carries
    /// `(output position, user id)`.
    ///
    /// The §III-D blocked multiply no longer materializes its
    /// `group × block` score buffer: panels stream straight into the same
    /// per-user heaps the list walk continues with, translated from list
    /// positions to item ids by [`ColumnIds::Mapped`].
    fn serve_cluster(
        &self,
        cluster: &ClusterIndex,
        group: &[(usize, usize)],
        k: usize,
        scratch: &mut GemmScratch<f64>,
        out: &mut [TopKList],
    ) {
        let n_items = cluster.list_ids.len();
        let block = if self.config.item_blocking {
            self.config.block_size.min(n_items)
        } else {
            0
        };

        let mut heaps: Vec<TopKHeap> = group.iter().map(|_| TopKHeap::new(k)).collect();
        if block > 0 {
            let users: Vec<usize> = group.iter().map(|&(_, u)| u).collect();
            let gathered = self.model.users().gather_rows(&users);
            stream_topk_into_heaps(
                (&gathered).into(),
                cluster.items.row_block(0, block),
                &mut heaps,
                ColumnIds::Mapped(&cluster.list_ids[..block]),
                scratch,
            );
            self.query_stats
                .items_blocked
                .fetch_add((group.len() * block) as u64, Ordering::Relaxed);
        }

        for (mut heap, &(pos, u)) in heaps.into_iter().zip(group) {
            let user = self.model.users().row(u);
            let unorm = norm2(user);
            // Walk-phase screen state: the quantized/rounded user row plus
            // the envelope coefficients (per-item envelope is
            // `env_rel_u·‖i‖ + env_abs` for f32, `env_a·(1/s_i) + env_b·‖i‖₁`
            // for int8). Absent unless a screen tier is armed; a user row
            // whose quantization degenerates (non-finite scale or L1) walks
            // unscreened — still exact, just unaccelerated.
            let screen: Option<UserScreen<'_>> = if self.screening_i8 {
                cluster.items_i8.as_ref().and_then(|ci| {
                    let mut codes = vec![0i8; user.len()];
                    let (su, ul1) = quantize_row_i8(user, &mut codes);
                    if !(su.is_finite() && ul1.is_finite()) {
                        return None;
                    }
                    let (env_a, env_b) = i8_screen_envelope_parts(user.len(), su, ul1);
                    Some(UserScreen::I8 {
                        ci,
                        codes,
                        inv_su: 1.0 / su,
                        env_a,
                        env_b,
                    })
                })
            } else if self.screening {
                cluster.items32.as_ref().map(|m32| {
                    let (rel, abs) = f32_screen_envelope_parts(user.len());
                    let user32: Vec<f32> = user.iter().map(|&v| v as f32).collect();
                    UserScreen::F32 {
                        m32,
                        user32,
                        env_rel_u: rel * unorm,
                        env_abs: abs,
                    }
                })
            } else {
                None
            };
            let mut walked = 0u64;
            let mut screen_evaluated = 0u64;
            let mut screened_out = 0u64;
            let mut walk_admitted = false;
            let mut list_pos = block;
            while list_pos < n_items {
                // Early termination: bounds descend, so the first failure
                // covers the whole tail.
                if heap.is_full() && unorm * cluster.bounds[list_pos] < heap.threshold() {
                    break;
                }
                // Mixed-precision screen: when even the envelope-widened
                // screen score sits strictly below the threshold, the exact
                // score does too and its push would be rejected — skipping
                // dot and push leaves the heap trajectory bit-identical. A
                // non-finite f32 screen score (overflow) never prunes; the
                // int8 estimate is always finite by construction.
                if heap.is_full() {
                    match &screen {
                        Some(UserScreen::F32 {
                            m32,
                            user32,
                            env_rel_u,
                            env_abs,
                        }) => {
                            let s32 = dot(user32.as_slice(), m32.row(list_pos)) as f64;
                            let env = env_rel_u.mul_add(cluster.norms[list_pos], *env_abs);
                            screen_evaluated += 1;
                            if s32.is_finite() && s32 + env < heap.threshold() {
                                screened_out += 1;
                                list_pos += 1;
                                continue;
                            }
                        }
                        Some(UserScreen::I8 {
                            ci,
                            codes,
                            inv_su,
                            env_a,
                            env_b,
                        }) => {
                            let f = codes.len();
                            let d = dot_i8(codes, &ci.codes[list_pos * f..(list_pos + 1) * f]);
                            let inv_si = ci.inv_scales[list_pos];
                            let est = d as f64 * (inv_su * inv_si);
                            let env = env_a * inv_si + env_b * ci.l1[list_pos];
                            screen_evaluated += 1;
                            if est + env < heap.threshold() {
                                screened_out += 1;
                                list_pos += 1;
                                continue;
                            }
                        }
                        None => {}
                    }
                }
                let score = dot(user, cluster.items.row(list_pos));
                walk_admitted |= heap.push(score, cluster.list_ids[list_pos]);
                walked += 1;
                list_pos += 1;
            }
            self.query_stats
                .items_walked
                .fetch_add(walked, Ordering::Relaxed);
            self.query_stats
                .items_screen_pruned
                .fetch_add(screened_out, Ordering::Relaxed);
            self.screen_tally
                .record(screen_evaluated, screen_evaluated - screened_out);
            self.query_stats
                .items_pruned
                .fetch_add((n_items - list_pos) as u64, Ordering::Relaxed);
            self.query_stats
                .users_served
                .fetch_add(1, Ordering::Relaxed);
            // Heaps fed only by the blocked prefix already hold canonical
            // (GEMM-kernel) scores; only a heap a walk-scored (`dot`) item
            // made it into needs the canonicalizing pass.
            out[pos] = if walk_admitted {
                canonical_list(user, self.model.items(), heap)
            } else {
                heap.into_sorted()
            };
        }
    }

    /// Serves an ad-hoc user vector that was *not* part of the clustered set
    /// (§III-E dynamic users): assigns it to the nearest centroid and walks
    /// that cluster's list with a per-item bound widened to the user's own
    /// angle when it exceeds θ_b.
    ///
    /// List order no longer matches the widened bound, so pruning skips
    /// items without early exit — still exact, usually still far fewer dots
    /// than brute force.
    pub fn query_new_vector(&self, user: &[f64], k: usize) -> TopKList {
        assert_eq!(
            user.len(),
            self.model.num_factors(),
            "MaximusIndex: user dimensionality mismatch"
        );
        // Assignment step of k-means only.
        let assigned = mips_clustering::assign_to_nearest(
            &Matrix::from_vec(1, user.len(), user.to_vec()).expect("1 x f"),
            &self.centroids,
        )[0] as usize;
        let cluster = &self.clusters[assigned];
        let unorm = norm2(user);
        let centroid = self.centroids.row(assigned);
        let theta_uc = if unorm == 0.0 || norm2(centroid) == 0.0 {
            std::f64::consts::PI
        } else {
            angle(user, centroid)
        };

        let mut heap = TopKHeap::new(k);
        if theta_uc <= cluster.theta_b {
            // Covered by the stored bounds: normal walk with early exit.
            for (pos, &id) in cluster.list_ids.iter().enumerate() {
                if heap.is_full() && unorm * cluster.bounds[pos] < heap.threshold() {
                    break;
                }
                heap.push(dot(user, cluster.items.row(pos)), id);
            }
        } else {
            for (pos, &id) in cluster.list_ids.iter().enumerate() {
                if heap.is_full() {
                    let b = stored_bound(cluster.norms[pos], cluster.theta_ic[pos], theta_uc);
                    if unorm * b < heap.threshold() {
                        continue; // no early exit: order is stale for θ_uc
                    }
                }
                heap.push(dot(user, cluster.items.row(pos)), id);
            }
        }
        canonical_list(user, self.model.items(), heap)
    }
}

/// Finalizes one user's heap into its **canonical** top-k list: the
/// returned scores are re-derived with
/// [`dot_gemm_ordered`] — the GEMM micro-kernel's per-element reduction —
/// over the model's own item rows, and the list re-sorted by (score
/// descending, item id ascending).
///
/// Selection and pruning still run on whatever the serve path streamed —
/// the §III-D blocked prefix scores items through GEMM, the list walk
/// through `dot`, and the two can disagree in the last ulp; where the
/// boundary falls depends on the cluster structure. Canonicalizing the
/// *reported* values makes the returned scores and ordering a pure
/// function of (user row, item matrix, k), so two indexes over the same
/// users — e.g. the global index and a shard-local one built over a
/// user-range view — return bit-identical lists, the exactness contract
/// the serving runtime's `IndexScope` relies on. The GEMM per-element
/// reduction is shape-independent, so the canonical scores also coincide
/// bit-for-bit with the blocked-MM brute force. Cost is `k`
/// sequential-FMA dots per user — a few hundred flops, noise against the
/// thousands of streamed scores behind them.
///
/// One caveat survives: *membership* is still decided by the streamed
/// scores, so a pair whose true scores differ only in the path ulp and
/// sit exactly at the k-th place could in principle resolve differently
/// under two index shapes. Exact-arithmetic ties are immune (both paths
/// are exact there, and ids break the tie identically), which is why the
/// tie-heavy property corpora and the serve stress corpus both observe
/// full bit-identity; on continuous data the coincidence has measure
/// zero. Scoring the walk with the sequential-FMA kernel would close even
/// that, at ~4x the walk's dot cost — not worth the hot-loop tax.
fn canonical_list(user: &[f64], items: &Matrix<f64>, heap: TopKHeap) -> TopKList {
    let mut list = heap.into_sorted();
    if list.items.is_empty() {
        return list;
    }
    // Four items per call ([`dot_gemm_ordered_x4`]): each item keeps the
    // GEMM per-element FMA chain while the chains pipeline, and the
    // dispatched kernel keeps the fused multiply-adds inline hardware
    // instructions. The ragged tail pads with the last item (extra lanes
    // discarded).
    let n = list.items.len();
    let mut pos = 0;
    while pos < n {
        let row = |offset: usize| items.row(list.items[(pos + offset).min(n - 1)] as usize);
        let scores = dot_gemm_ordered_x4(user, [row(0), row(1), row(2), row(3)]);
        let lanes = 4.min(n - pos);
        list.scores[pos..pos + lanes].copy_from_slice(&scores[..lanes]);
        pos += 4;
    }
    // Re-sort only if recomputation reordered an ulp-close pair; the
    // common case (still sorted) allocates nothing.
    let still_sorted = (1..n).all(|i| {
        list.scores[i - 1]
            .total_cmp(&list.scores[i])
            .then(list.items[i].cmp(&list.items[i - 1]))
            .is_ge()
    });
    if !still_sorted {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            list.scores[b]
                .total_cmp(&list.scores[a])
                .then(list.items[a].cmp(&list.items[b]))
        });
        list = TopKList {
            items: order.iter().map(|&i| list.items[i]).collect(),
            scores: order.iter().map(|&i| list.scores[i]).collect(),
        };
    }
    list
}

/// Builds one cluster's sorted list.
fn build_cluster_list(
    items: &Matrix<f64>,
    item_norms: &[f64],
    centroid: &[f64],
    theta_b: f64,
    members: Vec<u32>,
) -> ClusterIndex {
    let n = items.rows();
    let cnorm = norm2(centroid);
    let mut entries: Vec<(f64, f64, u32)> = (0..n)
        .map(|i| {
            let theta_ic = if cnorm == 0.0 || item_norms[i] == 0.0 {
                std::f64::consts::FRAC_PI_2
            } else {
                angle(centroid, items.row(i))
            };
            (
                stored_bound(item_norms[i], theta_ic, theta_b),
                theta_ic,
                i as u32,
            )
        })
        .collect();
    // `total_cmp`: same panic-free hardening as the LEMP/FEXIPRO
    // norm-sorts — bounds are finite for validated models, but an index
    // build must not be able to panic on a stray NaN.
    entries.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.2.cmp(&b.2)));

    let list_ids: Vec<u32> = entries.iter().map(|e| e.2).collect();
    let bounds: Vec<f64> = entries.iter().map(|e| e.0).collect();
    let theta_ic: Vec<f64> = entries.iter().map(|e| e.1).collect();
    let norms: Vec<f64> = entries.iter().map(|e| item_norms[e.2 as usize]).collect();
    let idx: Vec<usize> = list_ids.iter().map(|&i| i as usize).collect();
    let gathered = items.gather_rows(&idx);

    ClusterIndex {
        theta_b,
        list_ids,
        bounds,
        theta_ic,
        norms,
        items: gathered,
        items32: None,
        items_i8: None,
        members,
    }
}

impl MipsSolver for MaximusIndex {
    fn name(&self) -> &str {
        if self.screening_i8 {
            "Maximus+i8"
        } else if self.screening {
            "Maximus+f32"
        } else {
            "Maximus"
        }
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn batches_users(&self) -> bool {
        true // the shared prefix GEMM batches cluster members
    }

    fn precision(&self) -> crate::precision::Precision {
        if self.screening_i8 {
            crate::precision::Precision::I8Rescore
        } else if self.screening {
            crate::precision::Precision::F32Rescore
        } else {
            crate::precision::Precision::F64
        }
    }

    fn num_users(&self) -> usize {
        self.model.num_users()
    }

    fn take_screen_stats(&self) -> Option<ScreenTally> {
        (self.screening || self.screening_i8).then(|| self.screen_tally.drain())
    }

    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
        assert!(users.end <= self.num_users(), "user range out of bounds");
        let ids: Vec<usize> = users.collect();
        self.query_subset(k, &ids)
    }

    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
        crate::solver::dedup_query_subset(users, |distinct| {
            let mut groups: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.clusters.len()];
            for (pos, &u) in distinct.iter().enumerate() {
                assert!(u < self.num_users(), "user id {u} out of bounds");
                groups[self.assignments[u] as usize].push((pos, u));
            }
            let mut out = vec![TopKList::empty(); distinct.len()];
            let mut scratch = GemmScratch::new();
            for (c, group) in groups.iter().enumerate() {
                if !group.is_empty() {
                    self.serve_cluster(&self.clusters[c], group, k, &mut scratch, &mut out);
                }
            }
            out
        })
    }

    fn query_all(&self, k: usize) -> Vec<TopKList> {
        // Serve whole clusters in membership order: maximal work sharing.
        // One scratch outlives every per-cluster fused multiply.
        let mut out = vec![TopKList::empty(); self.num_users()];
        let mut scratch = GemmScratch::new();
        for cluster in &self.clusters {
            let group: Vec<(usize, usize)> = cluster
                .members
                .iter()
                .map(|&u| (u as usize, u as usize))
                .collect();
            if !group.is_empty() {
                self.serve_cluster(cluster, &group, k, &mut scratch, &mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::BmmSolver;
    use mips_data::synth::{synth_model, SynthConfig};

    fn model(users: usize, items: usize, f: usize, spread: f64) -> Arc<MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: users,
            num_items: items,
            num_factors: f,
            user_spread: spread,
            item_norm_skew: 0.7,
            ..SynthConfig::default()
        }))
    }

    fn small_config() -> MaximusConfig {
        MaximusConfig {
            num_clusters: 4,
            kmeans_iters: 3,
            block_size: 16,
            item_blocking: true,
            clustering: ClusteringAlgo::KMeans,
            seed: 7,
        }
    }

    #[test]
    fn spherical_clustering_variant_is_exact_and_at_least_as_tight() {
        let m = model(60, 200, 10, 0.3);
        let bmm = BmmSolver::build(Arc::clone(&m));
        let want = bmm.query_all(5);
        let euclid = MaximusIndex::build(Arc::clone(&m), &small_config());
        let sphere = MaximusIndex::build(
            Arc::clone(&m),
            &MaximusConfig {
                clustering: ClusteringAlgo::Spherical,
                ..small_config()
            },
        );
        let got = sphere.query_all(5);
        for u in 0..m.num_users() {
            assert_eq!(got[u].items, want[u].items, "user {u}");
        }
        // §III-A: the angular objective should give θ_b no worse on average
        // (clusterings differ, so compare means, with slack for seeding).
        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let te = mean(euclid.cluster_thetas());
        let ts = mean(sphere.cluster_thetas());
        assert!(
            ts <= te * 1.25,
            "spherical θ_b {ts} much worse than k-means {te}"
        );
    }

    #[test]
    fn exact_against_bmm() {
        let m = model(50, 200, 12, 0.4);
        let bmm = BmmSolver::build(Arc::clone(&m));
        let maximus = MaximusIndex::build(Arc::clone(&m), &small_config());
        for k in [1usize, 5, 20] {
            let want = bmm.query_all(k);
            let got = maximus.query_all(k);
            for u in 0..m.num_users() {
                assert_eq!(got[u].items, want[u].items, "k={k} user {u}");
                for (a, b) in got[u].scores.iter().zip(&want[u].scores) {
                    assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
                }
            }
        }
    }

    #[test]
    fn exact_without_item_blocking() {
        let m = model(40, 150, 8, 0.3);
        let bmm = BmmSolver::build(Arc::clone(&m));
        let maximus = MaximusIndex::build(
            Arc::clone(&m),
            &MaximusConfig {
                item_blocking: false,
                ..small_config()
            },
        );
        let want = bmm.query_all(5);
        let got = maximus.query_all(5);
        for u in 0..m.num_users() {
            assert_eq!(got[u].items, want[u].items, "user {u}");
        }
    }

    #[test]
    fn tight_clusters_prune() {
        let m = model(60, 500, 16, 0.1); // tight bundles → small θ_b
        let maximus = MaximusIndex::build(
            Arc::clone(&m),
            &MaximusConfig {
                block_size: 8,
                ..small_config()
            },
        );
        let _ = maximus.query_all(1);
        let stats = maximus.query_stats();
        assert!(
            stats.items_pruned.load(Ordering::Relaxed) > 0,
            "no pruning on tightly clustered users"
        );
        let avg = stats.avg_items_visited();
        assert!(
            avg < m.num_items() as f64 * 0.9,
            "w̄ = {avg} — index visited nearly everything"
        );
    }

    #[test]
    fn screened_walk_is_bit_identical_and_prunes() {
        // Small block size pushes most of the work into the walk phase,
        // where the screen operates.
        let m = model(60, 500, 16, 0.4);
        let config = MaximusConfig {
            block_size: 8,
            ..small_config()
        };
        let plain = MaximusIndex::build(Arc::clone(&m), &config);
        let screened = MaximusIndex::build_screen(Arc::clone(&m), &config);
        assert!(!plain.is_screening());
        assert!(screened.is_screening());
        assert_eq!(
            screened.precision(),
            crate::precision::Precision::F32Rescore
        );
        for k in [1usize, 5, 20] {
            let want = plain.query_all(k);
            let got = screened.query_all(k);
            for u in 0..m.num_users() {
                assert_eq!(got[u].items, want[u].items, "k={k} user {u}");
                for (a, b) in got[u].scores.iter().zip(&want[u].scores) {
                    assert_eq!(a.to_bits(), b.to_bits(), "k={k} user {u}");
                }
            }
        }
        let stats = screened.query_stats();
        assert!(
            stats.items_screen_pruned.load(Ordering::Relaxed) > 0,
            "screen never engaged on a walk-dominated configuration"
        );
        // Screened items reduce walked dots relative to the plain index.
        assert!(
            stats.items_walked.load(Ordering::Relaxed)
                < plain.query_stats().items_walked.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn screened_i8_walk_is_bit_identical_and_prunes() {
        let m = model(60, 500, 16, 0.4);
        let config = MaximusConfig {
            block_size: 8,
            ..small_config()
        };
        let plain = MaximusIndex::build(Arc::clone(&m), &config);
        let screened = MaximusIndex::build_screen_i8(Arc::clone(&m), &config);
        assert!(!plain.is_screening_i8());
        assert!(screened.is_screening_i8());
        assert_eq!(screened.name(), "Maximus+i8");
        assert_eq!(screened.precision(), crate::precision::Precision::I8Rescore);
        for k in [1usize, 5, 20] {
            let want = plain.query_all(k);
            let got = screened.query_all(k);
            for u in 0..m.num_users() {
                assert_eq!(got[u].items, want[u].items, "k={k} user {u}");
                for (a, b) in got[u].scores.iter().zip(&want[u].scores) {
                    assert_eq!(a.to_bits(), b.to_bits(), "k={k} user {u}");
                }
            }
        }
        let stats = screened.query_stats();
        assert!(
            stats.items_screen_pruned.load(Ordering::Relaxed) > 0,
            "i8 screen never engaged on a walk-dominated configuration"
        );
        assert!(
            stats.items_walked.load(Ordering::Relaxed)
                < plain.query_stats().items_walked.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn subset_order_and_range_agree() {
        let m = model(30, 60, 6, 0.5);
        let maximus = MaximusIndex::build(Arc::clone(&m), &small_config());
        let range = maximus.query_range(4, 5..25);
        let subset = maximus.query_subset(4, &(5..25).collect::<Vec<_>>());
        assert_eq!(range, subset);
        // Shuffled subset returns results in request order.
        let shuffled = maximus.query_subset(4, &[25, 5, 14]);
        assert_eq!(shuffled[1], range[0]);
    }

    #[test]
    fn block_larger_than_item_count_degenerates_to_bmm() {
        let m = model(20, 30, 5, 0.6);
        let bmm = BmmSolver::build(Arc::clone(&m));
        let maximus = MaximusIndex::build(
            Arc::clone(&m),
            &MaximusConfig {
                block_size: 10_000,
                ..small_config()
            },
        );
        let want = bmm.query_all(3);
        let got = maximus.query_all(3);
        for u in 0..20 {
            assert_eq!(got[u].items, want[u].items);
        }
        // Everything was scored in the blocked phase.
        assert_eq!(
            maximus.query_stats().items_walked.load(Ordering::Relaxed),
            0
        );
    }

    #[test]
    fn new_vector_queries_are_exact() {
        let m = model(40, 120, 8, 0.4);
        let bmm = BmmSolver::build(Arc::clone(&m));
        let maximus = MaximusIndex::build(Arc::clone(&m), &small_config());
        // Existing user vector served through the §III-E path.
        for u in [0usize, 17, 39] {
            let got = maximus.query_new_vector(m.users().row(u), 5);
            assert_eq!(got.items, bmm.query_range(5, u..u + 1)[0].items, "user {u}");
        }
        // A genuinely new direction, far from every centroid.
        let novel: Vec<f64> = (0..8).map(|j| if j == 7 { -3.0 } else { 0.01 }).collect();
        let got = maximus.query_new_vector(&novel, 4);
        let mut heap = TopKHeap::new(4);
        for i in 0..m.num_items() {
            heap.push(dot(&novel, m.items().row(i)), i as u32);
        }
        assert_eq!(got.items, heap.into_sorted().items);
    }

    #[test]
    fn build_stats_are_populated() {
        let m = model(30, 50, 6, 0.5);
        let maximus = MaximusIndex::build(m, &small_config());
        let stats = maximus.build_stats();
        assert!(stats.clustering_seconds >= 0.0);
        assert!(stats.construction_seconds > 0.0);
        assert!(maximus.build_seconds() >= stats.construction_seconds);
        assert_eq!(maximus.cluster_thetas().len(), 4);
    }

    #[test]
    fn k_edge_cases() {
        let m = model(10, 15, 4, 0.5);
        let maximus = MaximusIndex::build(m, &small_config());
        assert!(maximus.query_all(0).iter().all(|l| l.is_empty()));
        assert!(maximus.query_all(100).iter().all(|l| l.len() == 15));
    }

    #[test]
    #[should_panic(expected = "num_clusters")]
    fn rejects_zero_clusters() {
        let m = model(5, 5, 3, 0.5);
        let _ = MaximusIndex::build(
            m,
            &MaximusConfig {
                num_clusters: 0,
                ..MaximusConfig::default()
            },
        );
    }
}
