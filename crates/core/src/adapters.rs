//! [`MipsSolver`] adapters for the LEMP, FEXIPRO, and sparse inverted-index
//! crates.

use crate::solver::{MipsSolver, ScreenTally, ScreenTallyCells};
use crate::sync::Arc;
use mips_data::MfModel;
use mips_fexipro::{FexiproConfig, FexiproIndex};
use mips_lemp::{LempConfig, LempIndex, QueryStats};
use mips_sparse::{InvertedIndex, SparseConfig, SparseScratch};
use mips_topk::TopKList;
use std::ops::Range;
use std::time::Instant;

/// LEMP behind the common solver interface.
pub struct LempSolver {
    model: Arc<MfModel>,
    index: LempIndex,
    build_seconds: f64,
    /// Cumulative screen candidate/survivor counts, drained by the serving
    /// layer ([`MipsSolver::take_screen_stats`]).
    screen_tally: ScreenTallyCells,
}

impl LempSolver {
    /// Builds the LEMP index (bucketing + per-bucket tuning).
    pub fn build(model: Arc<MfModel>, config: &LempConfig) -> LempSolver {
        let start = Instant::now();
        let index = LempIndex::build(&model, config);
        let build_seconds = start.elapsed().as_secs_f64();
        LempSolver {
            model,
            index,
            build_seconds,
            screen_tally: ScreenTallyCells::default(),
        }
    }

    /// [`LempSolver::build`] with the mixed-precision screen enabled:
    /// scans pre-score candidates in f32 and skip exact dots the error
    /// envelope proves hopeless, with bit-identical results (see
    /// [`mips_lemp::scan`]). The mirror rounding pass is part of the
    /// reported build time.
    pub fn build_screen(model: Arc<MfModel>, config: &LempConfig) -> LempSolver {
        let start = Instant::now();
        let mut index = LempIndex::build(&model, config);
        index.enable_screen();
        let build_seconds = start.elapsed().as_secs_f64();
        LempSolver {
            model,
            index,
            build_seconds,
            screen_tally: ScreenTallyCells::default(),
        }
    }

    /// [`LempSolver::build`] with the int8 screen enabled: scans pre-score
    /// candidates with exact integer dots over symmetric int8 codes and
    /// skip exact dots the quantization envelope proves hopeless, with
    /// bit-identical results (see [`mips_lemp::scan`]). Falls back to the
    /// plain f64 identity when the model quantizes degenerately. The
    /// quantization pass is part of the reported build time.
    pub fn build_screen_i8(model: Arc<MfModel>, config: &LempConfig) -> LempSolver {
        let start = Instant::now();
        let mut index = LempIndex::build(&model, config);
        index.enable_screen_i8();
        let build_seconds = start.elapsed().as_secs_f64();
        LempSolver {
            model,
            index,
            build_seconds,
            screen_tally: ScreenTallyCells::default(),
        }
    }

    /// The wrapped index (for stats-aware benches).
    pub fn index(&self) -> &LempIndex {
        &self.index
    }

    /// Folds one query loop's scan counters into the drainable tally.
    fn record_scan(&self, stats: &QueryStats) {
        self.screen_tally.record(
            stats.scan.screen_evaluated,
            stats.scan.screen_evaluated - stats.scan.screen_pruned,
        );
    }
}

impl MipsSolver for LempSolver {
    fn name(&self) -> &str {
        if self.index.is_screening_i8() {
            "LEMP+i8"
        } else if self.index.is_screening() {
            "LEMP+f32"
        } else {
            "LEMP"
        }
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn batches_users(&self) -> bool {
        false // point queries: OPTIMUS may t-test LEMP
    }

    fn precision(&self) -> crate::precision::Precision {
        if self.index.is_screening_i8() {
            crate::precision::Precision::I8Rescore
        } else if self.index.is_screening() {
            crate::precision::Precision::F32Rescore
        } else {
            crate::precision::Precision::F64
        }
    }

    fn num_users(&self) -> usize {
        self.model.num_users()
    }

    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
        assert!(users.end <= self.num_users(), "user range out of bounds");
        let mut stats = QueryStats::default();
        let out = users
            .map(|u| {
                self.index
                    .query_with_stats(self.model.users().row(u), k, &mut stats)
            })
            .collect();
        self.record_scan(&stats);
        out
    }

    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
        crate::solver::dedup_query_subset(users, |distinct| {
            let mut stats = QueryStats::default();
            let out = distinct
                .iter()
                .map(|&u| {
                    self.index
                        .query_with_stats(self.model.users().row(u), k, &mut stats)
                })
                .collect();
            self.record_scan(&stats);
            out
        })
    }

    fn take_screen_stats(&self) -> Option<ScreenTally> {
        (self.index.is_screening() || self.index.is_screening_i8())
            .then(|| self.screen_tally.drain())
    }
}

/// FEXIPRO behind the common solver interface.
pub struct FexiproSolver {
    index: FexiproIndex,
    name: &'static str,
    build_seconds: f64,
}

impl FexiproSolver {
    /// Builds the FEXIPRO index (SVD, quantization, user preprocessing).
    pub fn build(model: Arc<MfModel>, config: &FexiproConfig) -> FexiproSolver {
        let start = Instant::now();
        let index = FexiproIndex::build(&model, config);
        let build_seconds = start.elapsed().as_secs_f64();
        let name = if config.enable_reduction {
            "FEXIPRO-SIR"
        } else {
            "FEXIPRO-SI"
        };
        FexiproSolver {
            index,
            name,
            build_seconds,
        }
    }

    /// The wrapped index (for stats-aware benches).
    pub fn index(&self) -> &FexiproIndex {
        &self.index
    }
}

impl MipsSolver for FexiproSolver {
    fn name(&self) -> &str {
        self.name
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn batches_users(&self) -> bool {
        false // point queries: OPTIMUS may t-test FEXIPRO
    }

    fn num_users(&self) -> usize {
        self.index.num_users()
    }

    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
        assert!(users.end <= self.num_users(), "user range out of bounds");
        users.map(|u| self.index.query_user(u, k)).collect()
    }

    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
        crate::solver::dedup_query_subset(users, |distinct| {
            distinct
                .iter()
                .map(|&u| self.index.query_user(u, k))
                .collect()
        })
    }
}

/// The sparse inverted-index backend behind the common solver interface —
/// the first non-scan access pattern in the registry. Exact (bit-identical
/// to BMM) via candidate screening plus canonical rescoring; see
/// [`mips_sparse`] for the pipeline and its envelope argument.
pub struct SparseSolver {
    model: Arc<MfModel>,
    index: InvertedIndex,
    build_seconds: f64,
}

impl SparseSolver {
    /// Builds the per-factor postings lists and hybrid-head dense panels.
    pub fn build(model: Arc<MfModel>, config: &SparseConfig) -> SparseSolver {
        let start = Instant::now();
        let index = InvertedIndex::build(model.items(), *config);
        let build_seconds = start.elapsed().as_secs_f64();
        SparseSolver {
            model,
            index,
            build_seconds,
        }
    }

    /// The wrapped index (for stats-aware benches and OPTIMUS costing).
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Exact top-`k` for an ad-hoc dense query vector (not a stored user
    /// row) — the path behind [`crate::engine::Engine::execute_vector`].
    pub fn query_vector(&self, query: &[f64], k: usize) -> TopKList {
        self.index.query(query, k, self.model.items())
    }
}

impl MipsSolver for SparseSolver {
    fn name(&self) -> &str {
        "Sparse-II"
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn batches_users(&self) -> bool {
        false // point queries: OPTIMUS may t-test the inverted index
    }

    fn num_users(&self) -> usize {
        self.model.num_users()
    }

    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
        assert!(users.end <= self.num_users(), "user range out of bounds");
        let items = self.model.items();
        let mut scratch = SparseScratch::new(items.rows());
        users
            .map(|u| {
                self.index
                    .query_with_scratch(self.model.users().row(u), k, items, &mut scratch)
            })
            .collect()
    }

    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
        crate::solver::dedup_query_subset(users, |distinct| {
            let items = self.model.items();
            let mut scratch = SparseScratch::new(items.rows());
            distinct
                .iter()
                .map(|&u| {
                    self.index
                        .query_with_scratch(self.model.users().row(u), k, items, &mut scratch)
                })
                .collect()
        })
    }

    fn query_vector(&self, query: &[f64], k: usize) -> Option<TopKList> {
        Some(SparseSolver::query_vector(self, query, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::BmmSolver;
    use mips_data::synth::{synth_model, SynthConfig};

    fn model() -> Arc<MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: 20,
            num_items: 60,
            num_factors: 8,
            ..SynthConfig::default()
        }))
    }

    #[test]
    fn adapters_agree_with_bmm() {
        let m = model();
        let bmm = BmmSolver::build(Arc::clone(&m));
        let want = bmm.query_all(4);

        let lemp = LempSolver::build(Arc::clone(&m), &LempConfig::default());
        let got = lemp.query_all(4);
        for u in 0..20 {
            assert_eq!(got[u].items, want[u].items, "LEMP user {u}");
        }

        for cfg in [FexiproConfig::si(), FexiproConfig::sir()] {
            let fex = FexiproSolver::build(Arc::clone(&m), &cfg);
            let got = fex.query_all(4);
            for u in 0..20 {
                assert_eq!(got[u].items, want[u].items, "{} user {u}", fex.name());
            }
        }
    }

    #[test]
    fn adapters_report_point_query_semantics() {
        let m = model();
        assert!(!LempSolver::build(Arc::clone(&m), &LempConfig::default()).batches_users());
        assert!(!SparseSolver::build(Arc::clone(&m), &SparseConfig::default()).batches_users());
        assert!(!FexiproSolver::build(m, &FexiproConfig::si()).batches_users());
    }

    #[test]
    fn sparse_adapter_is_bit_identical_to_bmm_even_on_dense_models() {
        // Fully dense factors are the sparse backend's worst case; the
        // exactness contract must hold regardless.
        let m = model();
        let bmm = BmmSolver::build(Arc::clone(&m));
        let sparse = SparseSolver::build(Arc::clone(&m), &SparseConfig::default());
        assert_eq!(sparse.name(), "Sparse-II");
        for k in [1, 4, 60, 61] {
            let want = bmm.query_all(k);
            let got = sparse.query_all(k);
            for u in 0..20 {
                assert_eq!(got[u].items, want[u].items, "items k={k} user {u}");
                let gb: Vec<u64> = got[u].scores.iter().map(|s| s.to_bits()).collect();
                let wb: Vec<u64> = want[u].scores.iter().map(|s| s.to_bits()).collect();
                assert_eq!(gb, wb, "score bits k={k} user {u}");
            }
        }
        // Ad-hoc vector queries run the same pipeline.
        let q = m.users().row(3);
        let got = sparse.query_vector(q, 5);
        assert_eq!(got.items, bmm.query_range(5, 3..4)[0].items);
    }

    #[test]
    fn build_time_is_recorded() {
        let m = model();
        let lemp = LempSolver::build(m, &LempConfig::default());
        assert!(lemp.build_seconds() >= 0.0);
        assert!(lemp.build_seconds() < 10.0);
    }
}
