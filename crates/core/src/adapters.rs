//! [`MipsSolver`] adapters for the LEMP and FEXIPRO baseline crates.

use crate::solver::MipsSolver;
use mips_data::MfModel;
use mips_fexipro::{FexiproConfig, FexiproIndex};
use mips_lemp::{LempConfig, LempIndex};
use mips_topk::TopKList;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

/// LEMP behind the common solver interface.
pub struct LempSolver {
    model: Arc<MfModel>,
    index: LempIndex,
    build_seconds: f64,
}

impl LempSolver {
    /// Builds the LEMP index (bucketing + per-bucket tuning).
    pub fn build(model: Arc<MfModel>, config: &LempConfig) -> LempSolver {
        let start = Instant::now();
        let index = LempIndex::build(&model, config);
        let build_seconds = start.elapsed().as_secs_f64();
        LempSolver {
            model,
            index,
            build_seconds,
        }
    }

    /// [`LempSolver::build`] with the mixed-precision screen enabled:
    /// scans pre-score candidates in f32 and skip exact dots the error
    /// envelope proves hopeless, with bit-identical results (see
    /// [`mips_lemp::scan`]). The mirror rounding pass is part of the
    /// reported build time.
    pub fn build_screen(model: Arc<MfModel>, config: &LempConfig) -> LempSolver {
        let start = Instant::now();
        let mut index = LempIndex::build(&model, config);
        index.enable_screen();
        let build_seconds = start.elapsed().as_secs_f64();
        LempSolver {
            model,
            index,
            build_seconds,
        }
    }

    /// The wrapped index (for stats-aware benches).
    pub fn index(&self) -> &LempIndex {
        &self.index
    }
}

impl MipsSolver for LempSolver {
    fn name(&self) -> &str {
        if self.index.is_screening() {
            "LEMP+f32"
        } else {
            "LEMP"
        }
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn batches_users(&self) -> bool {
        false // point queries: OPTIMUS may t-test LEMP
    }

    fn precision(&self) -> crate::precision::Precision {
        if self.index.is_screening() {
            crate::precision::Precision::F32Rescore
        } else {
            crate::precision::Precision::F64
        }
    }

    fn num_users(&self) -> usize {
        self.model.num_users()
    }

    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
        assert!(users.end <= self.num_users(), "user range out of bounds");
        users
            .map(|u| self.index.query(self.model.users().row(u), k))
            .collect()
    }

    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
        crate::solver::dedup_query_subset(users, |distinct| {
            distinct
                .iter()
                .map(|&u| self.index.query(self.model.users().row(u), k))
                .collect()
        })
    }
}

/// FEXIPRO behind the common solver interface.
pub struct FexiproSolver {
    index: FexiproIndex,
    name: &'static str,
    build_seconds: f64,
}

impl FexiproSolver {
    /// Builds the FEXIPRO index (SVD, quantization, user preprocessing).
    pub fn build(model: Arc<MfModel>, config: &FexiproConfig) -> FexiproSolver {
        let start = Instant::now();
        let index = FexiproIndex::build(&model, config);
        let build_seconds = start.elapsed().as_secs_f64();
        let name = if config.enable_reduction {
            "FEXIPRO-SIR"
        } else {
            "FEXIPRO-SI"
        };
        FexiproSolver {
            index,
            name,
            build_seconds,
        }
    }

    /// The wrapped index (for stats-aware benches).
    pub fn index(&self) -> &FexiproIndex {
        &self.index
    }
}

impl MipsSolver for FexiproSolver {
    fn name(&self) -> &str {
        self.name
    }

    fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    fn batches_users(&self) -> bool {
        false // point queries: OPTIMUS may t-test FEXIPRO
    }

    fn num_users(&self) -> usize {
        self.index.num_users()
    }

    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
        assert!(users.end <= self.num_users(), "user range out of bounds");
        users.map(|u| self.index.query_user(u, k)).collect()
    }

    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
        crate::solver::dedup_query_subset(users, |distinct| {
            distinct
                .iter()
                .map(|&u| self.index.query_user(u, k))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::BmmSolver;
    use mips_data::synth::{synth_model, SynthConfig};

    fn model() -> Arc<MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: 20,
            num_items: 60,
            num_factors: 8,
            ..SynthConfig::default()
        }))
    }

    #[test]
    fn adapters_agree_with_bmm() {
        let m = model();
        let bmm = BmmSolver::build(Arc::clone(&m));
        let want = bmm.query_all(4);

        let lemp = LempSolver::build(Arc::clone(&m), &LempConfig::default());
        let got = lemp.query_all(4);
        for u in 0..20 {
            assert_eq!(got[u].items, want[u].items, "LEMP user {u}");
        }

        for cfg in [FexiproConfig::si(), FexiproConfig::sir()] {
            let fex = FexiproSolver::build(Arc::clone(&m), &cfg);
            let got = fex.query_all(4);
            for u in 0..20 {
                assert_eq!(got[u].items, want[u].items, "{} user {u}", fex.name());
            }
        }
    }

    #[test]
    fn adapters_report_point_query_semantics() {
        let m = model();
        assert!(!LempSolver::build(Arc::clone(&m), &LempConfig::default()).batches_users());
        assert!(!FexiproSolver::build(m, &FexiproConfig::si()).batches_users());
    }

    #[test]
    fn build_time_is_recorded() {
        let m = model();
        let lemp = LempSolver::build(m, &LempConfig::default());
        assert!(lemp.build_seconds() >= 0.0);
        assert!(lemp.build_seconds() < 10.0);
    }
}
