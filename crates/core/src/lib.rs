//! Exact maximum inner product search behind a request/response serving
//! engine: blocked matrix multiply, the MAXIMUS index, and the OPTIMUS
//! online optimizer as the engine's query planner.
//!
//! This crate implements the two contributions of *"To Index or Not to
//! Index: Optimizing Exact Maximum Inner Product Search"* (Abuzaid et al.,
//! ICDE 2019) and packages them — together with the LEMP and FEXIPRO
//! baseline ports — behind one fallible, pluggable facade:
//!
//! * [`engine`] — **the primary public API.** An
//!   [`EngineBuilder`] assembles a model with a set
//!   of registered backends; [`QueryRequest`] /
//!   [`QueryResponse`] express per-request `k`,
//!   user ranges or explicit id lists, and per-user item exclusions;
//!   every entry point returns `Result<_, MipsError>` instead of
//!   panicking; and [`PreparedPlan`] caches the
//!   planner's choice so repeated requests never re-sample.
//! * [`bmm`] — the hardware-efficient brute force (§II-B): one blocked
//!   matrix multiply per user batch followed by heap-based top-k
//!   selection.
//! * [`maximus`] — the paper's index (§III): k-means user clusters, a
//!   per-cluster sorted item list under the Koenigstein angular bound, and
//!   a work-shared blocked multiply over the first `B` list items.
//! * [`optimus`] — the paper's optimizer (§IV): times candidates on a
//!   small user sample sized to occupy the L2 cache, optionally stops
//!   early with an incremental t-test, and picks the estimated winner.
//!   The engine invokes it through [`Optimus::choose`](optimus::Optimus::choose)
//!   as its query planner.
//! * [`solver`] — the [`solver::MipsSolver`] trait every backend
//!   implements, plus the legacy [`solver::Strategy`] enum, kept as a thin
//!   compatibility shim over the engine's registry keys.
//! * [`parallel`] — user-partitioned multi-core serving (Fig. 6). New code
//!   reaches it by setting [`engine::EngineConfig::threads`]; the free
//!   functions remain for direct solver access.
//! * [`serve`] — the sharded concurrent serving runtime: a
//!   [`MipsServer`] fronts an engine with contiguous
//!   user shards, a persistent worker pool behind a bounded submission
//!   queue, dynamic micro-batching of small same-`(shard, k)` requests,
//!   and per-shard latency/throughput metrics.
//! * [`verify`] — a semantic exactness checker used throughout the test
//!   suite.
//!
//! ## Serving in five lines
//!
//! ```
//! use mips_core::engine::{EngineBuilder, QueryRequest};
//! use mips_data::synth::{synth_model, SynthConfig};
//! use std::sync::Arc;
//!
//! let model = Arc::new(synth_model(&SynthConfig {
//!     num_users: 80, num_items: 100, num_factors: 8,
//!     ..SynthConfig::default()
//! }));
//! let engine = EngineBuilder::new().model(model).with_default_backends().build()?;
//! let top5 = engine.execute(&QueryRequest::top_k(5))?;
//! assert_eq!(top5.results.len(), 80);
//! # Ok::<(), mips_core::engine::MipsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod bmm;
pub mod engine;
pub mod maximus;
#[cfg(mips_model_check)]
#[doc(hidden)]
pub mod model_support;
pub mod optimus;
pub mod parallel;
pub mod precision;
pub mod serve;
pub mod solver;
pub mod sync;
pub mod verify;

pub use adapters::{FexiproSolver, LempSolver, SparseSolver};
pub use bmm::BmmSolver;
#[allow(deprecated)]
pub use engine::EngineConfig;
pub use engine::{
    BackendRegistry, Engine, EngineBuilder, EngineOptions, ExclusionSet, MipsError, PreparedPlan,
    QueryRequest, QueryResponse, SolverFactory, UserSelection,
};
pub use maximus::{MaximusConfig, MaximusIndex};
pub use optimus::{Optimus, OptimusConfig, OptimusOutcome};
pub use precision::Precision;
#[allow(deprecated)]
pub use serve::ServerConfig;
pub use serve::{
    LatencySnapshot, MipsServer, ResponseHandle, ServeOptions, ServerBuilder, ServerMetrics,
    ShardMetrics,
};
pub use solver::{MipsSolver, Strategy};
