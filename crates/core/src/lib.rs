//! Exact maximum inner product search: blocked matrix multiply, the MAXIMUS
//! index, and the OPTIMUS online optimizer.
//!
//! This crate implements the two contributions of *"To Index or Not to
//! Index: Optimizing Exact Maximum Inner Product Search"* (Abuzaid et al.,
//! ICDE 2019), plus the common solver interface that ties them to the LEMP
//! and FEXIPRO baseline ports:
//!
//! * [`bmm`] — the hardware-efficient brute force (§II-B): one blocked
//!   matrix multiply per user batch followed by heap-based top-k selection.
//! * [`maximus`] — the paper's index (§III): k-means user clusters, a
//!   per-cluster sorted item list under the Koenigstein angular bound, and a
//!   work-shared blocked multiply over the first `B` list items.
//! * [`optimus`] — the paper's optimizer (§IV): builds candidate indexes
//!   (construction is cheap relative to serving, Fig. 4), times them and BMM
//!   on a small user sample sized to occupy the L2 cache, optionally stops
//!   sampling early with an incremental t-test, then serves the remaining
//!   users with the estimated winner.
//! * [`solver`] — the [`solver::MipsSolver`] trait and [`solver::Strategy`]
//!   factory enum shared by everything above.
//! * [`parallel`] — multi-core serving by user partitioning (Fig. 6).
//! * [`verify`] — a semantic exactness checker used throughout the test
//!   suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod bmm;
pub mod maximus;
pub mod optimus;
pub mod parallel;
pub mod solver;
pub mod verify;

pub use adapters::{FexiproSolver, LempSolver};
pub use bmm::BmmSolver;
pub use maximus::{MaximusConfig, MaximusIndex};
pub use optimus::{Optimus, OptimusConfig, OptimusOutcome};
pub use solver::{MipsSolver, Strategy};
