//! The persistent worker pool.
//!
//! Workers loop on the shared submission queue: pop one sub-request,
//! optionally grow it into a micro-batch, execute on the owning shard, and
//! scatter results. Any worker serves any shard — with contiguous
//! user-sharding the *work* is partitioned, while the *pool* stays fully
//! utilized under skewed traffic (a hot shard's backlog is drained by every
//! idle worker, not just a pinned one).
//!
//! Workers are topology-agnostic: each sub-request carries the
//! [`ShardEngine`](super::shard::ShardEngine) it was admitted against, so
//! after a [`swap_model`](crate::engine::Engine::swap_model) the pool picks
//! up the new shard set request by request, without restarting — old-epoch
//! work drains on the old shard engines while new-epoch work runs on the
//! new ones.
//!
//! A panicking backend (a custom factory or solver) must not wedge callers
//! blocked on a [`super::ResponseHandle`], so each batch executes under
//! `catch_unwind`: affected requests complete with
//! [`MipsError::WorkerPanicked`] and the worker survives to serve the next
//! item.

use super::batcher::{collect_batch, execute_batch};
use super::ServerShared;
use crate::engine::MipsError;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::Arc;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The body of one worker thread.
pub(crate) fn run_worker(shared: Arc<ServerShared>) {
    while let Some(first) = shared.queue.pop() {
        let policy = shared.policy;
        let batch = if policy.enabled && first.batchable(policy.max_batch) {
            collect_batch(&shared.queue, first, &policy)
        } else {
            vec![first]
        };
        // The batch's shard engine (all subs share it — the batch key is
        // the engine's identity); kept out of the batch so the panic
        // handler can settle counters after `execute_batch` consumed it.
        let shard = Arc::clone(&batch[0].engine);

        // Keep handles to every affected pending so a panic mid-execution
        // can still complete them with an error. `fail` on an
        // already-finished pending is a no-op, so blanket-failing after a
        // panic only touches the requests the panic actually cut short.
        let pendings: Vec<_> = batch.iter().map(|s| Arc::clone(&s.pending)).collect();
        let progress = AtomicUsize::new(0);
        let executed = catch_unwind(AssertUnwindSafe(|| execute_batch(batch, &progress)));
        if let Err(payload) = executed {
            // Settle the shard counter for the subs execute_batch never
            // reached, so `submitted == completed` survives backend panics.
            let unsettled = pendings.len() - progress.load(Ordering::Relaxed);
            shard
                .counters
                .add(&shard.counters.completed, unsettled as u64);
            let message = panic_message(payload.as_ref());
            for pending in pendings {
                pending.fail(MipsError::WorkerPanicked {
                    message: message.clone(),
                });
            }
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "backend panicked".to_string()
    }
}
