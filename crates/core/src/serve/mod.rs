//! The sharded concurrent serving runtime: many requests, many cores, one
//! model.
//!
//! [`crate::engine`] serves one request at a time inside a blocking call.
//! This module turns that library into a traffic-serving system, the
//! ROADMAP's "millions of users" north star:
//!
//! * **Sharding.** The model's users are split into contiguous ranges (the
//!   paper's Fig. 6 partitioning), one `ShardEngine` per shard with its own
//!   [`PreparedPlan`](crate::engine::PreparedPlan) cache and counters.
//!   A request that straddles shards is split and its response reassembled
//!   in request order — including id-lists and exclusion sets that cross
//!   boundaries.
//! * **A persistent worker pool** fed by a bounded multi-producer
//!   submission queue. [`MipsServer::submit`] applies backpressure by
//!   blocking; [`MipsServer::try_submit`] bounces with
//!   [`MipsError::ServerOverloaded`] instead.
//! * **Dynamic micro-batching.** Queued single-user/small sub-requests
//!   targeting the same `(shard, k)` coalesce into one batched solver call
//!   — the paper's batched-GEMM amortization applied to concurrent traffic
//!   — flushing on a size ([`ServerBuilder::max_batch`]) or deadline
//!   ([`ServerBuilder::batch_window`]) threshold.
//! * **Observability.** Per-shard throughput/latency counters and
//!   request-level p50/p99, via [`MipsServer::metrics`].
//! * **Hot model swap.** [`Engine::swap_model`] on the fronted engine is
//!   picked up without restarting the server: each request is admitted
//!   onto the epoch current at submission and served on it end to end,
//!   while the shard topology (re-chunked when the user count changed)
//!   follows the new epoch for subsequent admissions. The micro-batcher
//!   never coalesces across epochs, and [`ServerMetrics`] reports the
//!   serving epoch and swap count.
//! * **Shard-local indexes.** [`ServerBuilder::index_scope`] selects the
//!   granularity of derived state: one global solver set shared by every
//!   shard ([`IndexScope::Global`]), per-shard indexes and plans built
//!   over each shard's user slice ([`IndexScope::PerShard`] — the paper's
//!   optimizer applied to each shard's own data shape), or a per-shard
//!   OPTIMUS choice between the two ([`IndexScope::Auto`]). Shard-local
//!   state is built lazily on first use within a model epoch and reclaimed
//!   with it; results are bit-identical to the global engine either way.
//!
//! Results are bit-identical to sequential [`Engine::execute`] calls; the
//! concurrency is invisible except in the clock.
//!
//! ```
//! use mips_core::engine::{EngineBuilder, QueryRequest};
//! use mips_core::serve::ServerBuilder;
//! use mips_data::synth::{synth_model, SynthConfig};
//! use std::sync::Arc;
//!
//! let model = Arc::new(synth_model(&SynthConfig {
//!     num_users: 120, num_items: 200, num_factors: 8,
//!     ..SynthConfig::default()
//! }));
//! let engine = Arc::new(
//!     EngineBuilder::new().model(model).with_default_backends().build().unwrap(),
//! );
//! let server = ServerBuilder::new()
//!     .engine(engine)
//!     .shards(4)
//!     .workers(2)
//!     .build()
//!     .unwrap();
//! // Submit a few requests concurrently, then wait on each.
//! let handles: Vec<_> = (0..8)
//!     .map(|u| server.submit(&QueryRequest::top_k(5).users(vec![u])).unwrap())
//!     .collect();
//! for handle in handles {
//!     assert_eq!(handle.wait().unwrap().results.len(), 1);
//! }
//! assert_eq!(server.metrics().completed, 8);
//! ```

pub(crate) mod batcher;
pub(crate) mod metrics;
pub(crate) mod queue;
pub(crate) mod shard;
mod worker;

pub use crate::engine::IndexScope;
pub use metrics::{
    escape_json, JsonWriter, LatencyHistogram, LatencySnapshot, ServerMetrics, ShardMetrics,
};

use crate::engine::epoch::{ArcCell, ModelEpoch};
use crate::engine::{lock_recovering, Engine, MipsError, QueryRequest, QueryResponse};
use crate::sync::atomic::Ordering;
use crate::sync::thread::JoinHandle;
use crate::sync::{Arc, Mutex};
use batcher::BatchPolicy;
use metrics::{ServerCounters, ShardCounters};
use queue::SubmitQueue;
use shard::{Pending, ShardEngine, ShardRouter};
use std::ops::Range;
use std::time::{Duration, Instant};

/// Tunables of the serving runtime — every [`ServerBuilder`] knob as one
/// typed value. Zeroes mean "pick for me" where noted;
/// [`ServeOptions::validate`] (called by [`ServerBuilder::build`]) checks
/// everything else, so a hand-assembled options value and a
/// builder-assembled one are rejected identically.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// User shards (contiguous ranges). `0` = one per available core,
    /// capped by the user count.
    pub shards: usize,
    /// Worker threads in the pool. `0` = match the shard count.
    pub workers: usize,
    /// Submission-queue bound, in sub-requests; the backpressure threshold.
    pub queue_capacity: usize,
    /// Master switch for micro-batching (off = every sub-request is its own
    /// solver call).
    pub batching: bool,
    /// Largest micro-batch, in **users**: the budget for one coalesced
    /// solver call, whether it is 32 single-user requests or four 8-user
    /// ones. Sub-requests at or above this size are served solo.
    pub max_batch: usize,
    /// How long a worker holds a partial batch open for more arrivals.
    /// Zero (the default) flushes adaptively: coalesce whatever is already
    /// queued, never wait.
    pub batch_window: Duration,
    /// Granularity of derived-state construction: whether shards share the
    /// epoch's global solver set and plans ([`IndexScope::Global`], the
    /// default), build their own over their user slice
    /// ([`IndexScope::PerShard`]), or let per-shard OPTIMUS decide shard by
    /// shard ([`IndexScope::Auto`]). Results are bit-identical whatever
    /// the scope.
    pub index_scope: IndexScope,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            shards: 0,
            workers: 0,
            queue_capacity: 1024,
            batching: true,
            max_batch: 32,
            batch_window: Duration::ZERO,
            index_scope: IndexScope::Global,
        }
    }
}

impl ServeOptions {
    /// Checks the invariants that do not depend on the engine being served
    /// (`0 = pick for me` resolution and the queue-vs-shard admission bound
    /// happen in [`ServerBuilder::build`], which calls this first).
    pub fn validate(&self) -> Result<(), MipsError> {
        if !self.batching && self.batch_window > Duration::ZERO {
            // A window without batching would be silently ignored — the
            // caller asked for deadline coalescing the runtime would never
            // perform.
            return Err(MipsError::InvalidConfig(
                "batch_window requires batching to be enabled".into(),
            ));
        }
        if self.queue_capacity == 0 {
            return Err(MipsError::InvalidConfig(
                "queue_capacity must be at least 1".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(MipsError::InvalidConfig(
                "max_batch must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Former name of [`ServeOptions`].
#[deprecated(note = "renamed to ServeOptions")]
pub type ServerConfig = ServeOptions;

/// Step-by-step assembly of a [`MipsServer`].
#[derive(Default)]
pub struct ServerBuilder {
    engine: Option<Arc<Engine>>,
    config: ServeOptions,
    /// Whether [`ServerBuilder::shards`]/[`ServerBuilder::workers`] were
    /// called explicitly: an explicit `0` is a configuration error, while
    /// an untouched builder (or a wholesale [`ServerBuilder::config`])
    /// keeps the documented `0 = pick for me` resolution.
    shards_set: bool,
    workers_set: bool,
}

impl ServerBuilder {
    /// An empty builder with default tunables.
    pub fn new() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// The engine to serve (model + backends + planner). Shared: the same
    /// engine can keep serving direct `execute` calls.
    pub fn engine(mut self, engine: Arc<Engine>) -> ServerBuilder {
        self.engine = Some(engine);
        self
    }

    /// Sets the shard count (contiguous user ranges). Passing `0` here is
    /// rejected at [`ServerBuilder::build`]: omit the call for automatic
    /// sizing.
    pub fn shards(mut self, shards: usize) -> ServerBuilder {
        self.config.shards = shards;
        self.shards_set = true;
        self
    }

    /// Sets the worker-pool size. Passing `0` here is rejected at
    /// [`ServerBuilder::build`]: omit the call for automatic sizing (one
    /// worker per shard).
    pub fn workers(mut self, workers: usize) -> ServerBuilder {
        self.config.workers = workers;
        self.workers_set = true;
        self
    }

    /// Sets the submission-queue bound (sub-requests).
    pub fn queue_capacity(mut self, capacity: usize) -> ServerBuilder {
        self.config.queue_capacity = capacity;
        self
    }

    /// Enables or disables micro-batching.
    pub fn batching(mut self, enabled: bool) -> ServerBuilder {
        self.config.batching = enabled;
        self
    }

    /// Sets the micro-batch budget (users per coalesced solver call).
    pub fn max_batch(mut self, max_batch: usize) -> ServerBuilder {
        self.config.max_batch = max_batch;
        self
    }

    /// Sets the deadline-flush window (zero = adaptive flush only).
    pub fn batch_window(mut self, window: Duration) -> ServerBuilder {
        self.config.batch_window = window;
        self
    }

    /// Sets the index scope: global derived state (default), shard-local
    /// construction, or per-shard OPTIMUS choice. See [`IndexScope`].
    pub fn index_scope(mut self, scope: IndexScope) -> ServerBuilder {
        self.config.index_scope = scope;
        self
    }

    /// Sets every serving option at once.
    pub fn options(mut self, options: ServeOptions) -> ServerBuilder {
        self.config = options;
        self
    }

    /// Former name of [`ServerBuilder::options`].
    #[deprecated(note = "renamed to ServerBuilder::options")]
    pub fn config(self, config: ServeOptions) -> ServerBuilder {
        self.options(config)
    }

    /// Validates the assembly, spawns the worker pool, and returns the
    /// running server.
    pub fn build(self) -> Result<MipsServer, MipsError> {
        let engine = self
            .engine
            .ok_or_else(|| MipsError::InvalidConfig("a server needs an engine".into()))?;
        let mut config = self.config;
        if self.shards_set && config.shards == 0 {
            return Err(MipsError::InvalidConfig(
                "shards must be at least 1 (omit the call for automatic sizing)".into(),
            ));
        }
        if self.workers_set && config.workers == 0 {
            return Err(MipsError::InvalidConfig(
                "workers must be at least 1 (omit the call for automatic sizing)".into(),
            ));
        }
        config.validate()?;
        if config.shards == 0 {
            config.shards = crate::sync::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1);
        }
        if config.workers == 0 {
            config.workers = config.shards;
        }
        if config.queue_capacity < config.shards.min(engine.model().num_users()) {
            // A request can split into one sub-request per shard; a queue
            // smaller than that could only admit such a request into an
            // empty queue, which sustained small traffic can starve forever.
            // (Topology rebuilds after a model swap additionally cap the
            // effective shard count at `queue_capacity`, so the guarantee
            // survives swaps that grow the user count.)
            return Err(MipsError::InvalidConfig(format!(
                "queue_capacity ({}) must be at least the shard count ({}) \
                 so any request can be admitted",
                config.queue_capacity,
                config.shards.min(engine.model().num_users())
            )));
        }

        let snapshot = engine.snapshot();
        let counters = Arc::new(ServerCounters::default());
        let topology = Arc::new(build_topology(&engine, &snapshot, &config, None));
        let shared = Arc::new(ServerShared {
            engine,
            topology: ArcCell::new(topology),
            rebuild: Mutex::new(()),
            queue: SubmitQueue::new(config.queue_capacity),
            policy: BatchPolicy {
                enabled: config.batching,
                max_batch: config.max_batch,
                window: config.batch_window,
            },
            counters,
            config: config.clone(),
        });
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::Builder::new()
                    .name(format!("mips-serve-{i}"))
                    .spawn(move || worker::run_worker(shared))
                    .map_err(|e| MipsError::InvalidConfig(format!("spawning worker {i}: {e}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MipsServer { shared, workers })
    }
}

/// The shard layout for one model epoch: the router that splits requests
/// plus the epoch-pinned [`ShardEngine`] each shard executes on.
///
/// A model swap does not mutate a topology — a fresh one is built for the
/// new epoch on the next admission (see [`ServerShared::topology_for`]) and
/// installed atomically, so in-flight sub-requests keep their old shard
/// engines until they settle.
pub(crate) struct Topology {
    pub(crate) epoch: u64,
    pub(crate) router: ShardRouter,
    pub(crate) shards: Vec<Arc<ShardEngine>>,
}

/// Builds the topology serving `snapshot`: shards re-chunk to the epoch's
/// user count (capped by the configured shard count and, post-swap, the
/// queue capacity — so a whole-model request always fits the queue). When
/// the previous topology has identical bounds, per-shard counters carry
/// over so swap-induced rebuilds do not reset cumulative metrics; a
/// re-shard (changed bounds) starts them afresh.
fn build_topology(
    engine: &Arc<Engine>,
    snapshot: &Arc<ModelEpoch>,
    config: &ServeOptions,
    previous: Option<&Topology>,
) -> Topology {
    let shard_cap = config.shards.min(config.queue_capacity);
    let router = ShardRouter::new(snapshot.model.num_users(), shard_cap);
    let carry_over =
        previous.filter(|prev| prev.router.bounds() == router.bounds() && !prev.shards.is_empty());
    let shards = router
        .bounds()
        .iter()
        .enumerate()
        .map(|(i, users)| {
            let counters = match carry_over {
                Some(prev) => Arc::clone(&prev.shards[i].counters),
                None => Arc::new(ShardCounters::default()),
            };
            Arc::new(ShardEngine::new(
                i,
                users.clone(),
                config.index_scope,
                Arc::clone(engine),
                Arc::clone(snapshot),
                counters,
            ))
        })
        .collect();
    Topology {
        epoch: snapshot.id,
        router,
        shards,
    }
}

/// State shared between the server handle and its workers.
pub(crate) struct ServerShared {
    pub(crate) engine: Arc<Engine>,
    /// The topology serving the newest epoch the server has seen.
    pub(crate) topology: ArcCell<Topology>,
    /// Serializes topology rebuilds so concurrent submitters after a swap
    /// build the new shard set once, not once each.
    rebuild: Mutex<()>,
    pub(crate) queue: SubmitQueue,
    pub(crate) policy: BatchPolicy,
    pub(crate) counters: Arc<ServerCounters>,
    pub(crate) config: ServeOptions,
}

impl ServerShared {
    /// The topology for the given epoch snapshot, rebuilding (and
    /// installing) it when the engine has swapped since the last admission.
    ///
    /// Returns `None` when `snapshot` is already older than the installed
    /// topology (another submitter raced a newer swap in): the caller must
    /// re-snapshot and re-validate on the newer epoch. This keeps the
    /// installed topology's epoch monotonic and ensures every admitted
    /// sub-request lands on shard counters that [`MipsServer::metrics`]
    /// can see — no orphan topologies.
    pub(crate) fn topology_for(&self, snapshot: &Arc<ModelEpoch>) -> Option<Arc<Topology>> {
        let current = self.topology.load();
        if current.epoch == snapshot.id {
            return Some(current);
        }
        if current.epoch > snapshot.id {
            return None;
        }
        let _rebuild = lock_recovering(&self.rebuild);
        let current = self.topology.load();
        if current.epoch == snapshot.id {
            return Some(current);
        }
        if current.epoch > snapshot.id {
            return None;
        }
        let fresh = Arc::new(build_topology(
            &self.engine,
            snapshot,
            &self.config,
            Some(&current),
        ));
        self.topology.swap_with(|_| Arc::clone(&fresh));
        self.counters.swaps.fetch_add(1, Ordering::Relaxed);
        Some(fresh)
    }
}

/// A waitable in-flight request returned by [`MipsServer::submit`].
#[must_use = "wait() on the handle to get the response"]
pub struct ResponseHandle {
    pending: Arc<Pending>,
}

impl ResponseHandle {
    /// Blocks until the request completes, returning the reassembled
    /// response (or the first error any shard hit).
    pub fn wait(self) -> Result<QueryResponse, MipsError> {
        self.pending.wait()
    }

    /// Whether the request has already completed (non-blocking).
    pub fn is_finished(&self) -> bool {
        self.pending.is_finished()
    }
}

/// The sharded concurrent serving runtime. See the [module docs](self).
pub struct MipsServer {
    shared: Arc<ServerShared>,
    workers: Vec<JoinHandle<()>>,
}

impl MipsServer {
    /// Starts assembling a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::new()
    }

    /// The engine this server fronts.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// The effective serving options (after `0 = auto` resolution).
    pub fn options(&self) -> &ServeOptions {
        &self.shared.config
    }

    /// Former name of [`MipsServer::options`].
    #[deprecated(note = "renamed to MipsServer::options")]
    pub fn config(&self) -> &ServeOptions {
        &self.shared.config
    }

    /// The contiguous user range of each shard of the current topology
    /// (a snapshot: a model swap that changes the user count re-chunks).
    pub fn shard_bounds(&self) -> Vec<Range<usize>> {
        self.shared.topology.load().router.bounds().to_vec()
    }

    /// Worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Validates and enqueues a request, blocking while the submission
    /// queue is over capacity (backpressure). Returns a handle to wait on.
    pub fn submit(&self, request: &QueryRequest) -> Result<ResponseHandle, MipsError> {
        self.submit_inner(request, true)
    }

    /// [`MipsServer::submit`], but a full queue returns
    /// [`MipsError::ServerOverloaded`] instead of blocking.
    pub fn try_submit(&self, request: &QueryRequest) -> Result<ResponseHandle, MipsError> {
        self.submit_inner(request, false)
    }

    /// Submits and waits: the drop-in concurrent replacement for
    /// [`Engine::execute`].
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, MipsError> {
        self.submit(request)?.wait()
    }

    fn submit_inner(
        &self,
        request: &QueryRequest,
        block: bool,
    ) -> Result<ResponseHandle, MipsError> {
        // One epoch snapshot per request: validation, splitting, planning,
        // and serving all resolve against it, so a concurrent swap_model
        // can never tear a request across two models. If a newer epoch was
        // installed while validating (rare swap race), retry on it —
        // epochs are monotonic, so this terminates.
        let (snapshot, topology) = loop {
            let snapshot = self.shared.engine.snapshot();
            request.validate(&snapshot.model)?;
            if let Some(topology) = self.shared.topology_for(&snapshot) {
                break (snapshot, topology);
            }
        };
        let now = Instant::now();
        let result_len = request.result_len(&snapshot.model);
        let pending = Arc::new(Pending::with_counters(
            result_len,
            now,
            Some(Arc::clone(&self.shared.counters)),
            snapshot.id,
        ));
        let subs = topology
            .router
            .split(request, &pending, now, &topology.shards);
        debug_assert!(!subs.is_empty(), "validated requests select users");
        // Safe to set after splitting: no worker sees the subs until
        // push_all succeeds below.
        pending.set_parts(subs.len());
        // Count shard submissions only after admission succeeds, so bounced
        // requests never show up as phantom in-flight work in ShardMetrics.
        let shard_counters: Vec<Arc<ShardCounters>> = subs
            .iter()
            .map(|s| Arc::clone(&s.engine.counters))
            .collect();
        match self.shared.queue.push_all(subs, block) {
            Ok(()) => {
                for counters in &shard_counters {
                    counters.add(&counters.submitted, 1);
                }
                self.shared
                    .counters
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                Ok(ResponseHandle { pending })
            }
            Err(error) => {
                if matches!(error, MipsError::ServerOverloaded { .. }) {
                    self.shared
                        .counters
                        .rejected
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(error)
            }
        }
    }

    /// Snapshots every counter: request-level throughput/latency plus the
    /// per-shard breakdown of the current topology (per-shard counters
    /// survive swaps that keep the shard bounds; a re-shard resets them).
    pub fn metrics(&self) -> ServerMetrics {
        let topology = self.shared.topology.load();
        ServerMetrics {
            submitted: self.shared.counters.submitted.load(Ordering::Relaxed),
            completed: self.shared.counters.completed.load(Ordering::Relaxed),
            rejected: self.shared.counters.rejected.load(Ordering::Relaxed),
            failed: self.shared.counters.failed.load(Ordering::Relaxed),
            epoch: topology.epoch,
            index_scope: self.shared.config.index_scope,
            precision: self.shared.engine.precision(),
            swaps: self.shared.counters.swaps.load(Ordering::Relaxed),
            latency: self.shared.counters.latency.snapshot(),
            shards: topology.shards.iter().map(|s| s.metrics()).collect(),
        }
    }

    /// Drains in-flight work and stops the pool. Also happens on `Drop`;
    /// the explicit form surfaces worker panics as a `Result`.
    pub fn shutdown(mut self) -> Result<(), MipsError> {
        self.shared.queue.close();
        let mut panicked = false;
        for worker in self.workers.drain(..) {
            panicked |= worker.join().is_err();
        }
        if panicked {
            return Err(MipsError::WorkerPanicked {
                message: "worker thread exited abnormally".into(),
            });
        }
        Ok(())
    }
}

impl Drop for MipsServer {
    fn drop(&mut self) {
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl std::fmt::Debug for MipsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let topology = self.shared.topology.load();
        f.debug_struct("MipsServer")
            .field("epoch", &topology.epoch)
            .field("shards", &topology.router.num_shards())
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.shared.config.queue_capacity)
            .field("batching", &self.shared.policy.enabled)
            .field("max_batch", &self.shared.policy.max_batch)
            .field("index_scope", &self.shared.config.index_scope)
            .finish()
    }
}
