//! Lock-free serving counters: per-shard throughput and latency.
//!
//! Workers record into atomics on every completed sub-request, so metrics
//! collection never contends with serving. Latencies go into a logarithmic
//! histogram (one power-of-two bucket per nanosecond magnitude), which is
//! enough resolution for the p50/p99 figures the bench reports while
//! keeping `record` to two atomic adds.

use crate::engine::IndexScope;
use crate::sync::atomic::{AtomicU64, Ordering};
use std::fmt::Write as _;
use std::ops::Range;

/// A minimal hand-rolled JSON writer: compact output, comma bookkeeping,
/// string escaping — nothing else. Shared by everything in this workspace
/// that emits JSON (the `/metrics` endpoint of `mips-net`, the bench
/// digests) so the wire format and the committed BENCH_* files come from
/// one serializer, dependency-free.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// One entry per open container: whether it already has an element
    /// (the next one needs a comma).
    comma: Vec<bool>,
}

impl JsonWriter {
    /// An empty writer.
    pub fn new() -> JsonWriter {
        JsonWriter::default()
    }

    fn elem(&mut self) {
        if let Some(last) = self.comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    fn key(&mut self, key: &str) {
        self.elem();
        self.out.push('"');
        self.out.push_str(&escape_json(key));
        self.out.push_str("\":");
    }

    /// Opens an object (the root value, or an array element).
    pub fn begin_obj(&mut self) {
        self.elem();
        self.out.push('{');
        self.comma.push(false);
    }

    /// Opens an object-valued field inside the current object.
    pub fn begin_obj_field(&mut self, key: &str) {
        self.key(key);
        self.out.push('{');
        self.comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_obj(&mut self) {
        self.comma.pop();
        self.out.push('}');
    }

    /// Opens an array-valued field inside the current object.
    pub fn begin_arr_field(&mut self, key: &str) {
        self.key(key);
        self.out.push('[');
        self.comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_arr(&mut self) {
        self.comma.pop();
        self.out.push(']');
    }

    /// Writes a string field (escaped).
    pub fn field_str(&mut self, key: &str, value: &str) {
        self.key(key);
        self.out.push('"');
        self.out.push_str(&escape_json(value));
        self.out.push('"');
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, key: &str, value: u64) {
        self.key(key);
        let _ = write!(self.out, "{value}");
    }

    /// Writes a boolean field.
    pub fn field_bool(&mut self, key: &str, value: bool) {
        self.key(key);
        let _ = write!(self.out, "{value}");
    }

    /// Writes a float field with a fixed number of decimals (the bench
    /// digest convention: stable, diffable output).
    pub fn field_f64(&mut self, key: &str, value: f64, decimals: usize) {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.out, "{value:.decimals$}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a float field at full precision: Rust's shortest
    /// round-trippable decimal form, so `str::parse::<f64>` on the other
    /// end recovers the exact bits (the wire contract for scores).
    pub fn field_f64_shortest(&mut self, key: &str, value: f64) {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a field whose value is pre-rendered JSON (for composing
    /// sub-documents rendered elsewhere).
    pub fn field_raw(&mut self, key: &str, raw_json: &str) {
        self.key(key);
        self.out.push_str(raw_json);
    }

    /// Writes a bare float array element at full precision.
    pub fn push_f64_shortest(&mut self, value: f64) {
        self.elem();
        if value.is_finite() {
            let _ = write!(self.out, "{value}");
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a bare unsigned-integer array element.
    pub fn push_u64(&mut self, value: u64) {
        self.elem();
        let _ = write!(self.out, "{value}");
    }

    /// The rendered JSON.
    pub fn finish(self) -> String {
        debug_assert!(self.comma.is_empty(), "unbalanced JSON containers");
        self.out
    }
}

/// Escapes a string for inclusion in a JSON string literal: quotes,
/// backslashes, and all control characters below 0x20.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Number of power-of-two latency buckets (2^0 ns .. 2^63 ns).
const BUCKETS: usize = 64;

/// A concurrent log2 latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` nanoseconds; quantiles are
/// read back with geometric interpolation inside the winning bucket, so the
/// reported p50/p99 carry at most a factor-of-√2 bucketing error — plenty
/// for regression tracking across PRs.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// A histogram with all buckets empty.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record_ns(&self, ns: u64) {
        let idx = (63 - ns.max(1).leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Snapshots the histogram into plain numbers.
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        LatencySnapshot {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                self.sum_ns.load(Ordering::Relaxed) as f64 / count as f64 / 1e3
            },
            p50_us: quantile_us(&counts, 0.50),
            p99_us: quantile_us(&counts, 0.99),
            max_us: self.max_ns.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}

/// The quantile `q` of a bucketed sample, in microseconds.
///
/// The total is derived from the bucket counts themselves (not the
/// histogram's separate `count` atomic): a concurrent `record_ns` between
/// the two loads could otherwise make the rank exceed the bucket sum and
/// the scan walk off the end.
fn quantile_us(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Rank of the sample we are after (1-based, clamped into range).
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            // Interpolate geometrically inside bucket [2^i, 2^(i+1)):
            // rank fraction `within` maps to `low * 2^within`, so the
            // reported quantile moves multiplicatively through the bucket,
            // matching the histogram's own logarithmic spacing (linear
            // interpolation would bias the low half of every bucket).
            let within = (rank - seen) as f64 / c as f64;
            let low = (1u64 << i) as f64;
            return low * within.exp2() / 1e3;
        }
        seen += c;
    }
    unreachable!("rank is clamped to the bucket sum")
}

/// Plain-number view of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency in microseconds (log-bucket resolution).
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds (log-bucket resolution).
    pub p99_us: f64,
    /// Largest single latency in microseconds.
    pub max_us: f64,
}

impl LatencySnapshot {
    /// Writes this snapshot as a JSON object field into `w`.
    pub fn write_json(&self, w: &mut JsonWriter, key: &str) {
        w.begin_obj_field(key);
        w.field_u64("count", self.count);
        w.field_f64("mean_us", self.mean_us, 3);
        w.field_f64("p50_us", self.p50_us, 3);
        w.field_f64("p99_us", self.p99_us, 3);
        w.field_f64("max_us", self.max_us, 3);
        w.end_obj();
    }
}

/// One shard's serving counters, updated lock-free by the worker pool.
#[derive(Default)]
pub struct ShardCounters {
    /// Sub-requests routed to this shard.
    pub(crate) submitted: AtomicU64,
    /// Sub-requests completed (success or failure).
    pub(crate) completed: AtomicU64,
    /// Solver invocations (a micro-batch counts once).
    pub(crate) batches: AtomicU64,
    /// Solver invocations served through a mixed-precision f32-screen
    /// plan — `batches - f32_batches - i8_batches` ran f64-direct.
    pub(crate) f32_batches: AtomicU64,
    /// Solver invocations served through an int8-screen plan.
    pub(crate) i8_batches: AtomicU64,
    /// Scores the f32 screen evaluated across this shard's batches.
    pub(crate) screen_candidates_f32: AtomicU64,
    /// Of those, candidates surviving to the exact f64 rescore.
    pub(crate) screen_survivors_f32: AtomicU64,
    /// Scores the int8 screen evaluated across this shard's batches.
    pub(crate) screen_candidates_i8: AtomicU64,
    /// Of those, candidates surviving to the exact f64 rescore.
    pub(crate) screen_survivors_i8: AtomicU64,
    /// Sub-requests that shared their solver invocation with at least one
    /// other sub-request (i.e. were actually coalesced).
    pub(crate) coalesced: AtomicU64,
    /// Individual user top-k lists produced.
    pub(crate) users_served: AtomicU64,
    /// Nanoseconds spent inside solver calls for this shard.
    pub(crate) busy_ns: AtomicU64,
    /// Shard-local index builds this shard's planning performed
    /// (`PerShard`/`Auto` scopes; 0 under `Global`).
    pub(crate) local_index_builds: AtomicU64,
    /// Nanoseconds spent inside those shard-local builds.
    pub(crate) local_build_ns: AtomicU64,
    /// Sub-request latency, submission to completion.
    pub(crate) latency: LatencyHistogram,
}

impl ShardCounters {
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshots the counters for shard `shard` covering `users`, serving
    /// under `index_scope`.
    pub(crate) fn snapshot(
        &self,
        shard: usize,
        users: Range<usize>,
        index_scope: IndexScope,
    ) -> ShardMetrics {
        ShardMetrics {
            shard,
            users,
            index_scope,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            f32_batches: self.f32_batches.load(Ordering::Relaxed),
            i8_batches: self.i8_batches.load(Ordering::Relaxed),
            screen_candidates_f32: self.screen_candidates_f32.load(Ordering::Relaxed),
            screen_survivors_f32: self.screen_survivors_f32.load(Ordering::Relaxed),
            screen_candidates_i8: self.screen_candidates_i8.load(Ordering::Relaxed),
            screen_survivors_i8: self.screen_survivors_i8.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            users_served: self.users_served.load(Ordering::Relaxed),
            busy_seconds: self.busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
            local_index_builds: self.local_index_builds.load(Ordering::Relaxed),
            local_build_us: self.local_build_ns.load(Ordering::Relaxed) / 1_000,
            latency: self.latency.snapshot(),
        }
    }
}

/// Point-in-time view of one shard's counters.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// The contiguous user range this shard owns.
    pub users: Range<usize>,
    /// The index scope this shard serves under (which tier of derived
    /// state its plans come from).
    pub index_scope: IndexScope,
    /// Sub-requests routed to this shard so far.
    pub submitted: u64,
    /// Sub-requests completed so far.
    pub completed: u64,
    /// Solver invocations (one per micro-batch).
    pub batches: u64,
    /// Of those, how many ran through a mixed-precision plan with an f32
    /// screen + exact f64 rescore. Results are bit-identical either way;
    /// under [`crate::precision::Precision::Auto`] this and `i8_batches`
    /// show the per-shard planner decisions in effect.
    pub f32_batches: u64,
    /// How many batches ran through an int8 screen + exact f64 rescore
    /// plan (`batches - f32_batches - i8_batches` ran f64-direct).
    pub i8_batches: u64,
    /// Scores the f32 screen evaluated (candidates it could have pruned)
    /// across this shard's batches.
    pub screen_candidates_f32: u64,
    /// f32-screen candidates that survived the envelope test and were
    /// rescored with an exact f64 dot; `candidates - survivors` exact dots
    /// were proven unnecessary. The survivor rate is the screen's
    /// selectivity in production traffic.
    pub screen_survivors_f32: u64,
    /// Scores the int8 screen evaluated across this shard's batches.
    pub screen_candidates_i8: u64,
    /// int8-screen candidates that survived to the exact f64 rescore.
    pub screen_survivors_i8: u64,
    /// Sub-requests that were coalesced into a shared batch.
    pub coalesced: u64,
    /// User top-k lists produced.
    pub users_served: u64,
    /// Wall-clock seconds spent inside solver calls.
    pub busy_seconds: f64,
    /// Shard-local index builds performed by this shard's planning (0
    /// under [`IndexScope::Global`]; under `Auto` local candidates are
    /// built to be timed, so this also counts shards that ended up staying
    /// on the global plan).
    pub local_index_builds: u64,
    /// Microseconds of wall clock spent inside those builds.
    pub local_build_us: u64,
    /// Sub-request latency distribution (submission → completion).
    pub latency: LatencySnapshot,
}

impl ShardMetrics {
    /// Writes this shard's counters as one JSON object element into `w`
    /// (call between `begin_arr_field`/`end_arr`).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.field_u64("shard", self.shard as u64);
        w.field_raw(
            "users",
            &format!("[{},{}]", self.users.start, self.users.end),
        );
        w.field_str("index_scope", self.index_scope.as_str());
        w.field_u64("submitted", self.submitted);
        w.field_u64("completed", self.completed);
        w.field_u64("batches", self.batches);
        w.field_u64("f32_batches", self.f32_batches);
        w.field_u64("i8_batches", self.i8_batches);
        w.field_u64("screen_candidates_f32", self.screen_candidates_f32);
        w.field_u64("screen_survivors_f32", self.screen_survivors_f32);
        w.field_u64("screen_candidates_i8", self.screen_candidates_i8);
        w.field_u64("screen_survivors_i8", self.screen_survivors_i8);
        w.field_u64("coalesced", self.coalesced);
        w.field_u64("users_served", self.users_served);
        w.field_f64("busy_seconds", self.busy_seconds, 6);
        w.field_u64("local_index_builds", self.local_index_builds);
        w.field_u64("local_build_us", self.local_build_us);
        self.latency.write_json(w, "latency");
        w.end_obj();
    }
}

/// Server-wide counters (request granularity, across all shards).
#[derive(Default)]
pub struct ServerCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) failed: AtomicU64,
    /// Topology installs beyond the initial one: how many model swaps the
    /// serving runtime has picked up (re-sharding included).
    pub(crate) swaps: AtomicU64,
    pub(crate) latency: LatencyHistogram,
}

/// Point-in-time view of a whole [`super::MipsServer`].
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Requests accepted by `submit`/`try_submit`.
    pub submitted: u64,
    /// Requests fully served (all shards reassembled).
    pub completed: u64,
    /// Requests bounced by backpressure (`try_submit` on a full queue).
    pub rejected: u64,
    /// Requests that completed with an error (worker panic, plan failure).
    pub failed: u64,
    /// The model epoch the server is currently admitting requests onto.
    /// In-flight requests may still be finishing on older epochs.
    pub epoch: u64,
    /// The configured index scope (granularity of derived-state
    /// construction; every shard of this server serves under it).
    pub index_scope: IndexScope,
    /// The engine's configured numeric mode
    /// ([`crate::precision::Precision`]). Per-plan decisions under `Auto`
    /// surface as each shard's `f32_batches` / `i8_batches` shares.
    pub precision: crate::precision::Precision,
    /// Model swaps the runtime has picked up (topology rebuilds — the
    /// count of `swap_model` calls whose new epoch reached the server).
    pub swaps: u64,
    /// End-to-end request latency (submission → reassembled response).
    pub latency: LatencySnapshot,
    /// Per-shard counters, in shard order. Counters accumulate across
    /// swaps while the shard bounds are unchanged; a swap that re-shards
    /// (the user count changed) starts the per-shard counters afresh.
    pub shards: Vec<ShardMetrics>,
}

impl ServerMetrics {
    /// Total micro-batches executed across shards.
    pub fn batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Total micro-batches served through f32-screen plans.
    pub fn f32_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.f32_batches).sum()
    }

    /// Total micro-batches served through int8-screen plans.
    pub fn i8_batches(&self) -> u64 {
        self.shards.iter().map(|s| s.i8_batches).sum()
    }

    /// Total f32-screen (candidates, survivors) across shards.
    pub fn screen_f32(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(c, s), m| {
            (c + m.screen_candidates_f32, s + m.screen_survivors_f32)
        })
    }

    /// Total int8-screen (candidates, survivors) across shards.
    pub fn screen_i8(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(c, s), m| {
            (c + m.screen_candidates_i8, s + m.screen_survivors_i8)
        })
    }

    /// Total sub-requests that shared a batch, across shards.
    pub fn coalesced(&self) -> u64 {
        self.shards.iter().map(|s| s.coalesced).sum()
    }

    /// Total shard-local index builds across shards (0 under
    /// [`IndexScope::Global`]).
    pub fn local_index_builds(&self) -> u64 {
        self.shards.iter().map(|s| s.local_index_builds).sum()
    }

    /// Total microseconds spent building shard-local indexes, across
    /// shards.
    pub fn local_build_us(&self) -> u64 {
        self.shards.iter().map(|s| s.local_build_us).sum()
    }

    /// Renders the whole snapshot — server counters, latency, per-shard
    /// breakdown — as one compact JSON document. This is the body of the
    /// `mips-net` `GET /metrics` endpoint and the shape bench digests
    /// embed, produced by the shared [`JsonWriter`].
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// [`ServerMetrics::to_json`], but composing into an existing writer.
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_obj();
        w.field_u64("submitted", self.submitted);
        w.field_u64("completed", self.completed);
        w.field_u64("rejected", self.rejected);
        w.field_u64("failed", self.failed);
        w.field_u64("epoch", self.epoch);
        w.field_str("index_scope", self.index_scope.as_str());
        w.field_str("precision", self.precision.as_str());
        w.field_u64("swaps", self.swaps);
        w.field_u64("batches", self.batches());
        w.field_u64("f32_batches", self.f32_batches());
        w.field_u64("i8_batches", self.i8_batches());
        let (cand_f32, surv_f32) = self.screen_f32();
        w.field_u64("screen_candidates_f32", cand_f32);
        w.field_u64("screen_survivors_f32", surv_f32);
        let (cand_i8, surv_i8) = self.screen_i8();
        w.field_u64("screen_candidates_i8", cand_i8);
        w.field_u64("screen_survivors_i8", surv_i8);
        w.field_u64("coalesced", self.coalesced());
        w.field_f64("mean_batch", self.mean_batch_size(), 2);
        w.field_u64("local_index_builds", self.local_index_builds());
        w.field_u64("local_build_us", self.local_build_us());
        self.latency.write_json(w, "latency");
        w.begin_arr_field("shards");
        for shard in &self.shards {
            shard.write_json(w);
        }
        w.end_arr();
        w.end_obj();
    }

    /// Mean sub-requests per solver invocation (1.0 = no coalescing).
    pub fn mean_batch_size(&self) -> f64 {
        let (sub, batches) = self
            .shards
            .iter()
            .fold((0u64, 0u64), |(s, b), m| (s + m.completed, b + m.batches));
        if batches == 0 {
            0.0
        } else {
            sub as f64 / batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record_ns(1_000); // ~1us
        }
        h.record_ns(1_000_000); // 1ms outlier
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // p50 sits in the 1us bucket (512..1024ns → ~0.5-1.0us reported).
        assert!(snap.p50_us >= 0.5 && snap.p50_us <= 2.1, "{snap:?}");
        // p99 still below the outlier bucket, max catches it exactly.
        assert!(snap.p99_us <= 2.1, "{snap:?}");
        assert!((snap.max_us - 1_000.0).abs() < 1e-9);
        assert!(snap.mean_us > 1.0 && snap.mean_us < 20.0);
    }

    #[test]
    fn quantiles_interpolate_geometrically_within_a_bucket() {
        // 100 identical samples land in bucket 10 ([1024ns, 2048ns)); the
        // quantile at rank r must be exactly 1024 * 2^(r/100).
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record_ns(1_500);
        }
        let snap = h.snapshot();
        let expect = |q: f64| 1024.0 * (q).exp2() / 1e3;
        assert!((snap.p50_us - expect(0.50)).abs() < 1e-9, "{snap:?}");
        assert!((snap.p99_us - expect(0.99)).abs() < 1e-9, "{snap:?}");
        // Geometric interpolation never leaves the bucket.
        assert!(snap.p50_us >= 1.024 && snap.p50_us < 2.048);
        assert!(snap.p99_us >= 1.024 && snap.p99_us < 2.048);
    }

    #[test]
    fn quantiles_walk_to_the_correct_bucket_for_known_contents() {
        // 90 samples in bucket 9 ([512, 1024)), 10 in bucket 19
        // ([524288, 1048576)).
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ns(1_000);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let snap = h.snapshot();
        // p50: rank 50 of 100 sits in the first bucket, 50/90 deep.
        let p50 = 512.0 * (50.0f64 / 90.0).exp2() / 1e3;
        // p99: rank 99, 9/10 into the outlier bucket.
        let p99 = 524_288.0 * (9.0f64 / 10.0).exp2() / 1e3;
        assert!((snap.p50_us - p50).abs() < 1e-9, "{snap:?}");
        assert!((snap.p99_us - p99).abs() < 1e-6, "{snap:?}");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap, LatencySnapshot::default());
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let h = LatencyHistogram::new();
        h.record_ns(0);
        assert_eq!(h.snapshot().count, 1);
        assert!(h.snapshot().p50_us <= 0.01);
    }

    #[test]
    fn json_writer_commas_nesting_and_escapes() {
        let mut w = JsonWriter::new();
        w.begin_obj();
        w.field_str("name", "a\"b\\c\nd");
        w.field_u64("n", 7);
        w.field_bool("ok", true);
        w.field_f64("t", 1.25, 2);
        w.field_f64_shortest("x", 0.1);
        w.begin_arr_field("xs");
        w.push_u64(1);
        w.push_u64(2);
        w.begin_obj();
        w.field_u64("inner", 3);
        w.end_obj();
        w.end_arr();
        w.field_f64("nan", f64::NAN, 3);
        w.end_obj();
        assert_eq!(
            w.finish(),
            "{\"name\":\"a\\\"b\\\\c\\nd\",\"n\":7,\"ok\":true,\"t\":1.25,\"x\":0.1,\
             \"xs\":[1,2,{\"inner\":3}],\"nan\":null}"
        );
    }

    #[test]
    fn shortest_f64_roundtrips_bits() {
        for v in [0.1, 1.0 / 3.0, 1e-300, -2.5e17, f64::MIN_POSITIVE, 123.456] {
            let mut w = JsonWriter::new();
            w.begin_obj();
            w.field_f64_shortest("v", v);
            w.end_obj();
            let s = w.finish();
            let rendered = &s["{\"v\":".len()..s.len() - 1];
            let parsed: f64 = rendered.parse().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn escape_json_covers_control_characters() {
        assert_eq!(escape_json("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape_json("tab\there"), "tab\\there");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn server_metrics_render_as_json() {
        let shard_counters = ShardCounters::default();
        shard_counters.add(&shard_counters.submitted, 3);
        shard_counters.add(&shard_counters.completed, 3);
        shard_counters.add(&shard_counters.i8_batches, 2);
        shard_counters.add(&shard_counters.screen_candidates_i8, 120);
        shard_counters.add(&shard_counters.screen_survivors_i8, 7);
        shard_counters.latency.record_ns(1_000);
        let shard = shard_counters.snapshot(0, 0..25, IndexScope::PerShard);
        let metrics = ServerMetrics {
            submitted: 3,
            completed: 3,
            rejected: 1,
            failed: 0,
            epoch: 2,
            index_scope: IndexScope::PerShard,
            precision: crate::precision::Precision::Auto,
            swaps: 2,
            latency: LatencySnapshot::default(),
            shards: vec![shard],
        };
        let json = metrics.to_json();
        for needle in [
            "\"submitted\":3",
            "\"rejected\":1",
            "\"epoch\":2",
            "\"index_scope\":\"per-shard\"",
            "\"precision\":\"auto\"",
            "\"f32_batches\":0",
            "\"i8_batches\":2",
            "\"screen_candidates_f32\":0",
            "\"screen_survivors_f32\":0",
            "\"screen_candidates_i8\":120",
            "\"screen_survivors_i8\":7",
            "\"shards\":[{\"shard\":0,\"users\":[0,25]",
            "\"latency\":{\"count\":",
        ] {
            assert!(json.contains(needle), "{json} missing {needle}");
        }
        // Balanced and compact: one line, equal brace/bracket counts.
        assert!(!json.contains('\n'));
        let count = |c: char| json.chars().filter(|&x| x == c).count();
        assert_eq!(count('{'), count('}'));
        assert_eq!(count('['), count(']'));
    }
}
