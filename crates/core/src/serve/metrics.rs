//! Lock-free serving counters: per-shard throughput and latency.
//!
//! Workers record into atomics on every completed sub-request, so metrics
//! collection never contends with serving. Latencies go into a logarithmic
//! histogram (one power-of-two bucket per nanosecond magnitude), which is
//! enough resolution for the p50/p99 figures the bench reports while
//! keeping `record` to two atomic adds.

use crate::engine::IndexScope;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets (2^0 ns .. 2^63 ns).
const BUCKETS: usize = 64;

/// A concurrent log2 latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))` nanoseconds; quantiles are
/// read back with geometric interpolation inside the winning bucket, so the
/// reported p50/p99 carry at most a factor-of-√2 bucketing error — plenty
/// for regression tracking across PRs.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// A histogram with all buckets empty.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency sample.
    pub fn record_ns(&self, ns: u64) {
        let idx = (63 - ns.max(1).leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Snapshots the histogram into plain numbers.
    pub fn snapshot(&self) -> LatencySnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        LatencySnapshot {
            count,
            mean_us: if count == 0 {
                0.0
            } else {
                self.sum_ns.load(Ordering::Relaxed) as f64 / count as f64 / 1e3
            },
            p50_us: quantile_us(&counts, 0.50),
            p99_us: quantile_us(&counts, 0.99),
            max_us: self.max_ns.load(Ordering::Relaxed) as f64 / 1e3,
        }
    }
}

/// The quantile `q` of a bucketed sample, in microseconds.
///
/// The total is derived from the bucket counts themselves (not the
/// histogram's separate `count` atomic): a concurrent `record_ns` between
/// the two loads could otherwise make the rank exceed the bucket sum and
/// the scan walk off the end.
fn quantile_us(counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Rank of the sample we are after (1-based, clamped into range).
    let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            // Interpolate geometrically inside bucket [2^i, 2^(i+1)):
            // rank fraction `within` maps to `low * 2^within`, so the
            // reported quantile moves multiplicatively through the bucket,
            // matching the histogram's own logarithmic spacing (linear
            // interpolation would bias the low half of every bucket).
            let within = (rank - seen) as f64 / c as f64;
            let low = (1u64 << i) as f64;
            return low * within.exp2() / 1e3;
        }
        seen += c;
    }
    unreachable!("rank is clamped to the bucket sum")
}

/// Plain-number view of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency in microseconds.
    pub mean_us: f64,
    /// Median latency in microseconds (log-bucket resolution).
    pub p50_us: f64,
    /// 99th-percentile latency in microseconds (log-bucket resolution).
    pub p99_us: f64,
    /// Largest single latency in microseconds.
    pub max_us: f64,
}

/// One shard's serving counters, updated lock-free by the worker pool.
#[derive(Default)]
pub struct ShardCounters {
    /// Sub-requests routed to this shard.
    pub(crate) submitted: AtomicU64,
    /// Sub-requests completed (success or failure).
    pub(crate) completed: AtomicU64,
    /// Solver invocations (a micro-batch counts once).
    pub(crate) batches: AtomicU64,
    /// Sub-requests that shared their solver invocation with at least one
    /// other sub-request (i.e. were actually coalesced).
    pub(crate) coalesced: AtomicU64,
    /// Individual user top-k lists produced.
    pub(crate) users_served: AtomicU64,
    /// Nanoseconds spent inside solver calls for this shard.
    pub(crate) busy_ns: AtomicU64,
    /// Shard-local index builds this shard's planning performed
    /// (`PerShard`/`Auto` scopes; 0 under `Global`).
    pub(crate) local_index_builds: AtomicU64,
    /// Nanoseconds spent inside those shard-local builds.
    pub(crate) local_build_ns: AtomicU64,
    /// Sub-request latency, submission to completion.
    pub(crate) latency: LatencyHistogram,
}

impl ShardCounters {
    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshots the counters for shard `shard` covering `users`, serving
    /// under `index_scope`.
    pub(crate) fn snapshot(
        &self,
        shard: usize,
        users: Range<usize>,
        index_scope: IndexScope,
    ) -> ShardMetrics {
        ShardMetrics {
            shard,
            users,
            index_scope,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            users_served: self.users_served.load(Ordering::Relaxed),
            busy_seconds: self.busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
            local_index_builds: self.local_index_builds.load(Ordering::Relaxed),
            local_build_us: self.local_build_ns.load(Ordering::Relaxed) / 1_000,
            latency: self.latency.snapshot(),
        }
    }
}

/// Point-in-time view of one shard's counters.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// The contiguous user range this shard owns.
    pub users: Range<usize>,
    /// The index scope this shard serves under (which tier of derived
    /// state its plans come from).
    pub index_scope: IndexScope,
    /// Sub-requests routed to this shard so far.
    pub submitted: u64,
    /// Sub-requests completed so far.
    pub completed: u64,
    /// Solver invocations (one per micro-batch).
    pub batches: u64,
    /// Sub-requests that were coalesced into a shared batch.
    pub coalesced: u64,
    /// User top-k lists produced.
    pub users_served: u64,
    /// Wall-clock seconds spent inside solver calls.
    pub busy_seconds: f64,
    /// Shard-local index builds performed by this shard's planning (0
    /// under [`IndexScope::Global`]; under `Auto` local candidates are
    /// built to be timed, so this also counts shards that ended up staying
    /// on the global plan).
    pub local_index_builds: u64,
    /// Microseconds of wall clock spent inside those builds.
    pub local_build_us: u64,
    /// Sub-request latency distribution (submission → completion).
    pub latency: LatencySnapshot,
}

/// Server-wide counters (request granularity, across all shards).
#[derive(Default)]
pub(crate) struct ServerCounters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) failed: AtomicU64,
    /// Topology installs beyond the initial one: how many model swaps the
    /// serving runtime has picked up (re-sharding included).
    pub(crate) swaps: AtomicU64,
    pub(crate) latency: LatencyHistogram,
}

/// Point-in-time view of a whole [`super::MipsServer`].
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// Requests accepted by `submit`/`try_submit`.
    pub submitted: u64,
    /// Requests fully served (all shards reassembled).
    pub completed: u64,
    /// Requests bounced by backpressure (`try_submit` on a full queue).
    pub rejected: u64,
    /// Requests that completed with an error (worker panic, plan failure).
    pub failed: u64,
    /// The model epoch the server is currently admitting requests onto.
    /// In-flight requests may still be finishing on older epochs.
    pub epoch: u64,
    /// The configured index scope (granularity of derived-state
    /// construction; every shard of this server serves under it).
    pub index_scope: IndexScope,
    /// Model swaps the runtime has picked up (topology rebuilds — the
    /// count of `swap_model` calls whose new epoch reached the server).
    pub swaps: u64,
    /// End-to-end request latency (submission → reassembled response).
    pub latency: LatencySnapshot,
    /// Per-shard counters, in shard order. Counters accumulate across
    /// swaps while the shard bounds are unchanged; a swap that re-shards
    /// (the user count changed) starts the per-shard counters afresh.
    pub shards: Vec<ShardMetrics>,
}

impl ServerMetrics {
    /// Total micro-batches executed across shards.
    pub fn batches(&self) -> u64 {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Total sub-requests that shared a batch, across shards.
    pub fn coalesced(&self) -> u64 {
        self.shards.iter().map(|s| s.coalesced).sum()
    }

    /// Total shard-local index builds across shards (0 under
    /// [`IndexScope::Global`]).
    pub fn local_index_builds(&self) -> u64 {
        self.shards.iter().map(|s| s.local_index_builds).sum()
    }

    /// Total microseconds spent building shard-local indexes, across
    /// shards.
    pub fn local_build_us(&self) -> u64 {
        self.shards.iter().map(|s| s.local_build_us).sum()
    }

    /// Mean sub-requests per solver invocation (1.0 = no coalescing).
    pub fn mean_batch_size(&self) -> f64 {
        let (sub, batches) = self
            .shards
            .iter()
            .fold((0u64, 0u64), |(s, b), m| (s + m.completed, b + m.batches));
        if batches == 0 {
            0.0
        } else {
            sub as f64 / batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_the_samples() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record_ns(1_000); // ~1us
        }
        h.record_ns(1_000_000); // 1ms outlier
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        // p50 sits in the 1us bucket (512..1024ns → ~0.5-1.0us reported).
        assert!(snap.p50_us >= 0.5 && snap.p50_us <= 2.1, "{snap:?}");
        // p99 still below the outlier bucket, max catches it exactly.
        assert!(snap.p99_us <= 2.1, "{snap:?}");
        assert!((snap.max_us - 1_000.0).abs() < 1e-9);
        assert!(snap.mean_us > 1.0 && snap.mean_us < 20.0);
    }

    #[test]
    fn quantiles_interpolate_geometrically_within_a_bucket() {
        // 100 identical samples land in bucket 10 ([1024ns, 2048ns)); the
        // quantile at rank r must be exactly 1024 * 2^(r/100).
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record_ns(1_500);
        }
        let snap = h.snapshot();
        let expect = |q: f64| 1024.0 * (q).exp2() / 1e3;
        assert!((snap.p50_us - expect(0.50)).abs() < 1e-9, "{snap:?}");
        assert!((snap.p99_us - expect(0.99)).abs() < 1e-9, "{snap:?}");
        // Geometric interpolation never leaves the bucket.
        assert!(snap.p50_us >= 1.024 && snap.p50_us < 2.048);
        assert!(snap.p99_us >= 1.024 && snap.p99_us < 2.048);
    }

    #[test]
    fn quantiles_walk_to_the_correct_bucket_for_known_contents() {
        // 90 samples in bucket 9 ([512, 1024)), 10 in bucket 19
        // ([524288, 1048576)).
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_ns(1_000);
        }
        for _ in 0..10 {
            h.record_ns(1_000_000);
        }
        let snap = h.snapshot();
        // p50: rank 50 of 100 sits in the first bucket, 50/90 deep.
        let p50 = 512.0 * (50.0f64 / 90.0).exp2() / 1e3;
        // p99: rank 99, 9/10 into the outlier bucket.
        let p99 = 524_288.0 * (9.0f64 / 10.0).exp2() / 1e3;
        assert!((snap.p50_us - p50).abs() < 1e-9, "{snap:?}");
        assert!((snap.p99_us - p99).abs() < 1e-6, "{snap:?}");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let snap = LatencyHistogram::new().snapshot();
        assert_eq!(snap, LatencySnapshot::default());
    }

    #[test]
    fn zero_latency_lands_in_the_first_bucket() {
        let h = LatencyHistogram::new();
        h.record_ns(0);
        assert_eq!(h.snapshot().count, 1);
        assert!(h.snapshot().p50_us <= 0.01);
    }
}
