//! Shard routing: contiguous user ranges, request splitting, and response
//! reassembly.
//!
//! The paper's Fig. 6 observation — read-only indexes make user-partitioned
//! parallelism near-linear — is applied here at the *serving* level: the
//! model's users are split into contiguous shards (the same
//! [`chunk_bounds`](crate::parallel::chunk_bounds) partitioning the
//! multi-core path uses), a request is split into at most one sub-request
//! per shard, and the per-shard results are scattered back into the
//! response in request order. Exclusion sets ride along untouched: they are
//! keyed by global user id, so a set that straddles shards simply travels
//! with every sub-request that needs it.

use super::metrics::{ServerCounters, ShardCounters, ShardMetrics};
use crate::engine::epoch::ModelEpoch;
use crate::engine::{
    lock_recovering, Engine, ExclusionSet, IndexScope, MipsError, PreparedPlan, QueryRequest,
    QueryResponse, UserSelection,
};
use crate::parallel::chunk_bounds;
use crate::sync::{Arc, Condvar, Mutex};
use mips_topk::TopKList;
use std::collections::HashMap;
use std::ops::Range;
use std::time::Instant;

/// One shard of the serving runtime: a contiguous user range plus the
/// shard-local state the workers touch on the hot path — its own
/// [`PreparedPlan`] cache (so steady-state serving never takes the engine's
/// global plan lock) and its counters. Solver scratch stays where PR 1/2
/// put it: allocated inside each `query_*` call, one set per worker
/// invocation, never shared.
///
/// A shard engine is pinned to one model epoch: sub-requests carry an
/// `Arc` to the shard engine they were split against, so a sub-request
/// admitted before a [`swap_model`](Engine::swap_model) plans and serves on
/// its original epoch even if the swap lands mid-queue. Fresh shard
/// engines (a new topology) are built for the new epoch on the next
/// admission; the old set is reclaimed when the last in-flight sub-request
/// drops its `Arc`.
pub(crate) struct ShardEngine {
    pub(crate) index: usize,
    pub(crate) users: Range<usize>,
    /// The pinned model epoch (plans, solvers, and validation all resolve
    /// against this snapshot, never the engine's live state).
    pub(crate) epoch: Arc<ModelEpoch>,
    /// The granularity of derived state this shard plans with:
    /// [`IndexScope::Global`] shares the epoch's whole-model tier,
    /// `PerShard`/`Auto` build (lazily, on first use within the epoch)
    /// shard-local solvers and plans over a view of `users`. Shard-local
    /// state lives in the epoch's per-shard cache tier, so swaps and
    /// re-sharding reclaim it exactly like the global state.
    scope: IndexScope,
    engine: Arc<Engine>,
    plans: Mutex<HashMap<usize, Arc<PreparedPlan>>>,
    /// Shared so a re-built topology with identical bounds carries its
    /// cumulative counters forward (see `build_topology`).
    pub(crate) counters: Arc<ShardCounters>,
}

impl ShardEngine {
    pub(crate) fn new(
        index: usize,
        users: Range<usize>,
        scope: IndexScope,
        engine: Arc<Engine>,
        epoch: Arc<ModelEpoch>,
        counters: Arc<ShardCounters>,
    ) -> ShardEngine {
        ShardEngine {
            index,
            users,
            scope,
            epoch,
            engine,
            plans: Mutex::new(HashMap::new()),
            counters,
        }
    }

    /// The plan for `k` on this shard's pinned epoch: shard-local cache
    /// first, then the epoch's shared tier on a miss — the global per-`k`
    /// cache under [`IndexScope::Global`], the per-shard tier (keyed by
    /// this shard's bounds) under `PerShard`/`Auto`. Either way concurrent
    /// planning across shards and topologies dedupes in the epoch.
    ///
    /// Shard-local index construction performed on a miss is rolled into
    /// this shard's `local_index_builds` / build-time counters.
    pub(crate) fn plan(&self, k: usize) -> Result<Arc<PreparedPlan>, MipsError> {
        if let Some(plan) = lock_recovering(&self.plans).get(&k) {
            return Ok(Arc::clone(plan));
        }
        let plan = if self.scope.builds_local() {
            let mut stats = crate::engine::scope::ShardBuildStats::default();
            let plan = self.engine.prepare_shard_on(
                &self.epoch,
                &self.users,
                k,
                self.scope,
                &mut stats,
            )?;
            if stats.builds > 0 {
                self.counters
                    .add(&self.counters.local_index_builds, stats.builds);
                self.counters
                    .add(&self.counters.local_build_ns, stats.build_ns);
            }
            plan
        } else {
            self.engine.prepare_on(&self.epoch, k)?
        };
        lock_recovering(&self.plans).insert(k, Arc::clone(&plan));
        Ok(plan)
    }

    pub(crate) fn metrics(&self) -> ShardMetrics {
        self.counters
            .snapshot(self.index, self.users.clone(), self.scope)
    }
}

/// Maps users to shards and splits requests at shard boundaries.
pub(crate) struct ShardRouter {
    bounds: Vec<Range<usize>>,
}

impl ShardRouter {
    /// Partitions `num_users` into at most `shards` contiguous ranges
    /// (fewer when there are not enough users; the final range is shorter
    /// when the division is ragged).
    pub(crate) fn new(num_users: usize, shards: usize) -> ShardRouter {
        ShardRouter {
            bounds: chunk_bounds(num_users, shards),
        }
    }

    pub(crate) fn bounds(&self) -> &[Range<usize>] {
        &self.bounds
    }

    pub(crate) fn num_shards(&self) -> usize {
        self.bounds.len()
    }

    /// The shard owning `user`. Caller guarantees `user` is in range.
    fn shard_of(&self, user: usize) -> usize {
        // Shards are contiguous and start at 0; binary-search the start
        // offsets.
        self.bounds
            .partition_point(|r| r.end <= user)
            .min(self.bounds.len() - 1)
    }

    /// Splits a validated request into per-shard sub-requests, all wired to
    /// one [`Pending`] reassembly buffer sized for the full response. Each
    /// sub-request carries the [`ShardEngine`] it was split against
    /// (`engines[shard]`), pinning it to that topology's model epoch.
    pub(crate) fn split(
        &self,
        request: &QueryRequest,
        pending: &Arc<Pending>,
        now: Instant,
        engines: &[Arc<ShardEngine>],
    ) -> Vec<SubRequest> {
        debug_assert_eq!(engines.len(), self.bounds.len());
        let exclude = request.exclude.clone().filter(|e| !e.is_empty());
        let sub = |users: SubUsers, shard: usize| SubRequest {
            shard,
            epoch: engines[shard].epoch.id,
            k: request.k,
            users,
            exclude: exclude.clone(),
            pending: Arc::clone(pending),
            engine: Arc::clone(&engines[shard]),
            submitted_at: now,
        };
        match &request.users {
            UserSelection::All => self
                .bounds
                .iter()
                .filter(|r| !r.is_empty())
                .enumerate()
                .map(|(shard, r)| {
                    sub(
                        SubUsers::Range {
                            users: r.clone(),
                            out_start: r.start,
                        },
                        shard,
                    )
                })
                .collect(),
            UserSelection::Range(range) => {
                let mut subs = Vec::new();
                for (shard, bounds) in self.bounds.iter().enumerate() {
                    let start = range.start.max(bounds.start);
                    let end = range.end.min(bounds.end);
                    if start < end {
                        subs.push(sub(
                            SubUsers::Range {
                                users: start..end,
                                out_start: start - range.start,
                            },
                            shard,
                        ));
                    }
                }
                subs
            }
            UserSelection::Ids(ids) => {
                // Group positions by shard, preserving request order within
                // each shard.
                let mut per_shard: HashMap<usize, (Vec<usize>, Vec<usize>)> = HashMap::new();
                for (pos, &user) in ids.iter().enumerate() {
                    let entry = per_shard.entry(self.shard_of(user)).or_default();
                    entry.0.push(user);
                    entry.1.push(pos);
                }
                let mut shards: Vec<usize> = per_shard.keys().copied().collect();
                shards.sort_unstable();
                shards
                    .into_iter()
                    .map(|shard| {
                        let (users, positions) = per_shard.remove(&shard).unwrap();
                        sub(SubUsers::Ids { users, positions }, shard)
                    })
                    .collect()
            }
        }
    }
}

/// The users of one sub-request, with the positions their results occupy in
/// the final response.
#[derive(Debug, Clone)]
pub enum SubUsers {
    /// A contiguous slice of the shard's range; results land contiguously
    /// starting at `out_start`.
    Range {
        /// Global user ids to serve.
        users: Range<usize>,
        /// First response slot this range fills.
        out_start: usize,
    },
    /// Explicit ids (all owned by one shard), scattered back one by one.
    Ids {
        /// Global user ids to serve, in request order.
        users: Vec<usize>,
        /// Response slot for each served user.
        positions: Vec<usize>,
    },
}

impl SubUsers {
    /// Number of users this sub-request serves.
    pub fn len(&self) -> usize {
        match self {
            SubUsers::Range { users, .. } => users.len(),
            SubUsers::Ids { users, .. } => users.len(),
        }
    }
}

/// One unit of shard work: a per-shard slice of a request, submitted to the
/// worker pool through the server's queue.
pub(crate) struct SubRequest {
    pub(crate) shard: usize,
    /// The model epoch this sub-request is pinned to (`engine.epoch.id`,
    /// duplicated here so metrics and assertions need no pointer chase).
    pub(crate) epoch: u64,
    pub(crate) k: usize,
    pub(crate) users: SubUsers,
    pub(crate) exclude: Option<Arc<ExclusionSet>>,
    pub(crate) pending: Arc<Pending>,
    /// The shard engine to execute on — the topology entry current at
    /// admission, kept alive by this `Arc` until the sub-request settles.
    pub(crate) engine: Arc<ShardEngine>,
    pub(crate) submitted_at: Instant,
}

impl SubRequest {
    /// Whether the micro-batcher may coalesce this sub-request with others
    /// targeting the same `(shard, k)`. Exclusion-carrying requests are
    /// served solo: two batched requests could exclude different items for
    /// the same user, which a merged exclusion set cannot express.
    pub(crate) fn batchable(&self, max_batch: usize) -> bool {
        self.exclude.is_none() && self.users.len() < max_batch
    }

    /// The sub-request as a standalone engine request (unbatched path).
    pub(crate) fn to_request(&self) -> QueryRequest {
        QueryRequest {
            k: self.k,
            users: match &self.users {
                SubUsers::Range { users, .. } => UserSelection::Range(users.clone()),
                SubUsers::Ids { users, .. } => UserSelection::Ids(users.clone()),
            },
            exclude: self.exclude.clone(),
        }
    }
}

/// Reassembly state for one in-flight request: a slot per selected user,
/// filled by sub-request completions in any order, plus the condvar the
/// caller's [`ResponseHandle`](super::ResponseHandle) waits on.
pub struct Pending {
    state: Mutex<PendingState>,
    done: Condvar,
    /// Server-wide counters to roll into when the request finishes; rolled
    /// up *before* the waiter wakes, so metrics never lag a completed
    /// `wait`. `None` in unit tests that exercise the pending alone.
    counters: Option<Arc<ServerCounters>>,
    /// The model epoch the request was admitted under, reported back in
    /// [`QueryResponse::epoch`].
    epoch: u64,
}

struct PendingState {
    results: Vec<TopKList>,
    remaining: usize,
    backend: String,
    precision: crate::precision::Precision,
    error: Option<MipsError>,
    finished: bool,
    submitted_at: Instant,
    latency: f64,
}

impl Pending {
    /// A pending response with `result_len` slots. The number of
    /// sub-requests it waits for is set by [`Pending::set_parts`] once the
    /// split is known — before any worker can see the sub-requests.
    #[cfg(any(test, mips_model_check))]
    pub fn new(result_len: usize, now: Instant) -> Pending {
        Pending::with_counters(result_len, now, None, 0)
    }

    /// [`Pending::new`] wired to the server's request-level counters and
    /// stamped with the model epoch the request was admitted under.
    pub fn with_counters(
        result_len: usize,
        now: Instant,
        counters: Option<Arc<ServerCounters>>,
        epoch: u64,
    ) -> Pending {
        Pending {
            state: Mutex::new(PendingState {
                results: vec![TopKList::empty(); result_len],
                remaining: 0,
                backend: String::new(),
                precision: crate::precision::Precision::F64,
                error: None,
                finished: false,
                submitted_at: now,
                latency: 0.0,
            }),
            done: Condvar::new(),
            counters,
            epoch,
        }
    }

    /// Records how many sub-request completions finish this request. Must
    /// be called exactly once, before the sub-requests are enqueued.
    pub fn set_parts(&self, parts: usize) {
        let mut state = self.lock();
        debug_assert_eq!(state.remaining, 0, "set_parts called twice");
        state.remaining = parts;
    }

    fn lock(&self) -> crate::sync::MutexGuard<'_, PendingState> {
        self.state
            .lock()
            .unwrap_or_else(crate::sync::PoisonError::into_inner)
    }

    /// Scatters one sub-request's results into the response. Returns `true`
    /// when this completion finished the whole request.
    ///
    /// A completion arriving after the request already finished (an early
    /// failure on another shard, or the panic handler re-failing a batch
    /// whose earlier subs completed) is ignored: the waiter may already
    /// have taken the result buffers, and the part count must not
    /// underflow.
    pub fn complete(
        &self,
        users: &SubUsers,
        lists: Vec<TopKList>,
        backend: &str,
        precision: crate::precision::Precision,
    ) -> bool {
        let mut state = self.lock();
        if state.finished {
            return false;
        }
        match users {
            SubUsers::Range { out_start, .. } => {
                for (offset, list) in lists.into_iter().enumerate() {
                    state.results[out_start + offset] = list;
                }
            }
            SubUsers::Ids { positions, .. } => {
                for (&pos, list) in positions.iter().zip(lists) {
                    state.results[pos] = list;
                }
            }
        }
        if state.backend.is_empty() {
            state.backend = backend.to_string();
            // Like the backend label, the first completing sub-request
            // names the response's precision; under per-shard Auto plans
            // the shards of one request may differ, and "first to finish"
            // is the same convention the backend field already uses.
            state.precision = precision;
        }
        self.finish_one(state)
    }

    /// Fails the whole request (first error wins). Returns `true` when this
    /// completion finished the request. Ignored once the request already
    /// finished (see [`Pending::complete`]).
    pub fn fail(&self, error: MipsError) -> bool {
        let mut state = self.lock();
        if state.finished {
            return false;
        }
        state.error.get_or_insert(error);
        self.finish_one(state)
    }

    fn finish_one(&self, mut state: crate::sync::MutexGuard<'_, PendingState>) -> bool {
        state.remaining -= 1;
        if state.remaining == 0 {
            state.finished = true;
            state.latency = state.submitted_at.elapsed().as_secs_f64();
            if let Some(counters) = &self.counters {
                use crate::sync::atomic::Ordering;
                counters.completed.fetch_add(1, Ordering::Relaxed);
                if state.error.is_some() {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                }
                counters.latency.record_ns((state.latency * 1e9) as u64);
            }
            self.done.notify_all();
            true
        } else {
            false
        }
    }

    /// Whether the request has fully completed (with result or error).
    pub fn is_finished(&self) -> bool {
        self.lock().finished
    }

    /// Blocks until every sub-request has completed, then takes the
    /// response (or the first error).
    pub fn wait(&self) -> Result<QueryResponse, MipsError> {
        let mut state = self.lock();
        while !state.finished {
            state = self
                .done
                .wait(state)
                .unwrap_or_else(crate::sync::PoisonError::into_inner);
        }
        if let Some(error) = state.error.take() {
            return Err(error);
        }
        Ok(QueryResponse {
            results: std::mem::take(&mut state.results),
            backend: std::mem::take(&mut state.backend),
            precision: state.precision,
            planned: true,
            epoch: self.epoch,
            serve_seconds: state.latency,
        })
    }
}

/// Test-only construction of a shard-engine set over a tiny real engine,
/// shared by the shard/queue/batcher unit tests (which exercise routing and
/// coalescing identity, not serving).
#[cfg(test)]
pub(crate) fn test_engines(router: &ShardRouter) -> Vec<Arc<ShardEngine>> {
    use crate::engine::{BmmFactory, EngineBuilder};
    use mips_data::synth::{synth_model, SynthConfig};
    let model = Arc::new(synth_model(&SynthConfig {
        num_users: router.bounds().last().map_or(1, |r| r.end).max(1),
        num_items: 16,
        num_factors: 4,
        ..SynthConfig::default()
    }));
    let engine = Arc::new(
        EngineBuilder::new()
            .model(model)
            .register(BmmFactory)
            .build()
            .unwrap(),
    );
    let epoch = engine.snapshot();
    router
        .bounds()
        .iter()
        .enumerate()
        .map(|(i, users)| {
            Arc::new(ShardEngine::new(
                i,
                users.clone(),
                IndexScope::Global,
                Arc::clone(&engine),
                Arc::clone(&epoch),
                Arc::new(ShardCounters::default()),
            ))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> ShardRouter {
        // 10 users over 3 shards: ragged bounds 0..4, 4..8, 8..10.
        ShardRouter::new(10, 3)
    }

    #[test]
    fn bounds_are_contiguous_and_ragged_division_is_covered() {
        let r = router();
        assert_eq!(r.bounds(), &[0..4, 4..8, 8..10]);
        let one = ShardRouter::new(3, 8);
        assert_eq!(one.num_shards(), 3, "never more shards than users");
        let whole = ShardRouter::new(10, 1);
        assert_eq!(whole.num_shards(), 1);
        assert_eq!(whole.bounds()[0], 0..10);
    }

    #[test]
    fn shard_of_respects_boundaries() {
        let r = router();
        for (user, shard) in [(0, 0), (3, 0), (4, 1), (7, 1), (8, 2), (9, 2)] {
            assert_eq!(r.shard_of(user), shard, "user {user}");
        }
    }

    #[test]
    fn splits_cover_each_selection_shape() {
        let r = router();
        let engines = test_engines(&r);
        let now = Instant::now();
        let all = QueryRequest::top_k(2);
        let pending = Arc::new(Pending::new(10, now));
        let subs = r.split(&all, &pending, now, &engines);
        assert_eq!(subs.len(), 3);
        assert!(
            matches!(&subs[1].users, SubUsers::Range { users, out_start } if *users == (4..8) && *out_start == 4)
        );
        // Every sub-request is pinned to its shard's engine and epoch.
        for sub in &subs {
            assert!(Arc::ptr_eq(&sub.engine, &engines[sub.shard]));
            assert_eq!(sub.epoch, engines[sub.shard].epoch.id);
        }

        // A range straddling the first boundary only touches two shards.
        let range = QueryRequest::top_k(2).users_range(2..6);
        let pending = Arc::new(Pending::new(4, now));
        let subs = r.split(&range, &pending, now, &engines);
        assert_eq!(subs.len(), 2);
        assert!(
            matches!(&subs[0].users, SubUsers::Range { users, out_start } if *users == (2..4) && *out_start == 0)
        );
        assert!(
            matches!(&subs[1].users, SubUsers::Range { users, out_start } if *users == (4..6) && *out_start == 2)
        );

        // Ids scatter by shard but keep their response positions.
        let ids = QueryRequest::top_k(2).users(vec![9, 0, 5, 0]);
        let pending = Arc::new(Pending::new(4, now));
        let subs = r.split(&ids, &pending, now, &engines);
        assert_eq!(subs.len(), 3);
        assert!(
            matches!(&subs[0].users, SubUsers::Ids { users, positions } if users == &[0, 0] && positions == &[1, 3])
        );
        assert!(
            matches!(&subs[2].users, SubUsers::Ids { users, positions } if users == &[9] && positions == &[0])
        );
    }

    #[test]
    fn pending_reassembles_out_of_order_completions() {
        let now = Instant::now();
        let pending = Pending::new(3, now);
        pending.set_parts(2);
        let mk = |item: u32| TopKList {
            items: vec![item],
            scores: vec![item as f64],
        };
        let last = SubUsers::Ids {
            users: vec![7],
            positions: vec![2],
        };
        assert!(!pending.complete(&last, vec![mk(30)], "B", crate::precision::Precision::F64));
        assert!(!pending.is_finished());
        let first = SubUsers::Range {
            users: 0..2,
            out_start: 0,
        };
        assert!(pending.complete(
            &first,
            vec![mk(10), mk(20)],
            "B",
            crate::precision::Precision::F64
        ));
        let response = pending.wait().unwrap();
        assert_eq!(response.backend, "B");
        assert_eq!(
            response
                .results
                .iter()
                .map(|l| l.items[0])
                .collect::<Vec<_>>(),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn first_error_wins_and_fails_the_wait() {
        let now = Instant::now();
        let pending = Pending::new(2, now);
        pending.set_parts(2);
        pending.fail(MipsError::EmptyUserList);
        pending.fail(MipsError::NoBackends);
        assert!(pending.is_finished());
        assert_eq!(pending.wait().unwrap_err(), MipsError::EmptyUserList);
    }
}
