//! The dynamic micro-batcher: coalescing small requests into one solver
//! call.
//!
//! The paper's central measurement is that batched GEMM amortizes per-query
//! work — a `32 × f · f × n` multiply is far cheaper than 32 separate
//! `1 × f` passes over the item matrix (§II-B; LEMP makes the same
//! observation with bucket-batched probing). Single-user traffic squanders
//! that, so the batcher coalesces queued sub-requests that target the same
//! `(shard, k)` into one `query_subset` call:
//!
//! * **Adaptive flush (default).** A worker pops one sub-request, then
//!   extracts every queued match up to `max_batch`. Under light load the
//!   queue is empty and requests serve solo with zero added latency; under
//!   heavy load a backlog forms and batches fill — throughput rises exactly
//!   when it is needed.
//! * **Deadline flush (`batch_window > 0`).** After draining the backlog a
//!   worker holds the partial batch open for the window, absorbing
//!   arrivals, then flushes. Trades bounded latency for larger batches on
//!   trickling traffic.
//!
//! Coalescing is transparent: every solver's `query_subset` produces
//! per-user results that are independent of batch composition (the stress
//! suite asserts bit-identical results against sequential
//! [`Engine::execute`](crate::engine::Engine::execute) calls), and
//! exclusion-carrying sub-requests are never coalesced, because two
//! requests may exclude different items for the same user.

use super::queue::{BatchKey, SubmitQueue};
use super::shard::{ShardEngine, SubRequest, SubUsers};
use crate::engine::serve;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Flush policy for the micro-batcher.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchPolicy {
    pub(crate) enabled: bool,
    pub(crate) max_batch: usize,
    pub(crate) window: Duration,
}

/// Gathers the micro-batch led by `first`: drains queued matches, then
/// (with a deadline policy) holds the batch open for the window.
pub(crate) fn collect_batch(
    queue: &SubmitQueue,
    first: SubRequest,
    policy: &BatchPolicy,
) -> Vec<SubRequest> {
    let key = BatchKey::of(&first);
    // `max_batch` budgets the coalesced solver call in *users*: a batch of
    // 32 single-user requests and a batch of four 8-user requests cost the
    // same, and a small request is never made to wait behind a coalesced
    // call bigger than the knob promises.
    let mut budget = policy.max_batch.saturating_sub(first.users.len());
    let mut batch = vec![first];
    queue.extract_matching(key, budget, policy.max_batch, &mut batch);
    budget = policy
        .max_batch
        .saturating_sub(batch.iter().map(|s| s.users.len()).sum());
    if budget > 0 && !policy.window.is_zero() {
        let deadline = batch[0].submitted_at + policy.window;
        queue.extract_until(
            key,
            policy.max_batch,
            policy.max_batch,
            deadline,
            &mut batch,
        );
    }
    batch
}

/// Executes one batch (one or many coalesced sub-requests) on its shard,
/// scattering results back into each pending response. Request-level
/// completion metrics roll up inside the pending itself, before any waiter
/// wakes. `progress` counts subs whose shard `completed` counter has been
/// bumped — the worker's panic handler uses it to settle the remainder so
/// `submitted == completed` holds even across backend panics.
pub(crate) fn execute_batch(shard: &ShardEngine, batch: Vec<SubRequest>, progress: &AtomicUsize) {
    debug_assert!(!batch.is_empty());
    debug_assert!(batch.iter().all(|s| s.shard == shard.index));
    let k = batch[0].k;
    let settle_one = |sub: &SubRequest| {
        shard.counters.add(&shard.counters.completed, 1);
        shard
            .counters
            .latency
            .record_ns(sub.submitted_at.elapsed().as_nanos() as u64);
        progress.fetch_add(1, Ordering::Relaxed);
    };

    let plan = match shard.plan(k) {
        Ok(plan) => plan,
        Err(error) => {
            for sub in &batch {
                settle_one(sub);
                sub.pending.fail(error.clone());
            }
            return;
        }
    };
    let model = plan.model();
    let solver = plan.solver();

    let started = Instant::now();
    let outcome = if batch.len() == 1 {
        // Solo path: ranges stay ranges, exclusions allowed.
        let request = batch[0].to_request();
        serve(model, solver, 1, &request, true).map(|r| r.results)
    } else {
        // Coalesced path: concatenate ids into one gathered batch. Repeats
        // across sub-requests are fine — the solver's dedup fans results
        // back out per occurrence.
        let mut users: Vec<usize> = Vec::with_capacity(batch.iter().map(|s| s.users.len()).sum());
        for sub in &batch {
            match &sub.users {
                SubUsers::Range { users: r, .. } => users.extend(r.clone()),
                SubUsers::Ids { users: ids, .. } => users.extend_from_slice(ids),
            }
        }
        let request = crate::engine::QueryRequest {
            k,
            users: crate::engine::UserSelection::Ids(users),
            exclude: None,
        };
        serve(model, solver, 1, &request, true).map(|r| r.results)
    };
    let busy_ns = started.elapsed().as_nanos() as u64;

    // Roll up shard counters before scattering so metrics never lag the
    // caller's wakeup.
    let total_users: usize = batch.iter().map(|s| s.users.len()).sum();
    shard.counters.add(&shard.counters.batches, 1);
    shard.counters.add(&shard.counters.busy_ns, busy_ns);
    shard
        .counters
        .add(&shard.counters.users_served, total_users as u64);
    if batch.len() > 1 {
        shard
            .counters
            .add(&shard.counters.coalesced, batch.len() as u64);
    }

    match outcome {
        Ok(mut results) => {
            debug_assert_eq!(results.len(), total_users);
            // Scatter back to front so each split_off is O(its own slice).
            for sub in batch.iter().rev() {
                let lists = results.split_off(results.len() - sub.users.len());
                // Count and time *before* completing: the last completion
                // wakes the waiter, and metrics must already be consistent
                // when it reads them.
                settle_one(sub);
                sub.pending.complete(&sub.users, lists, plan.backend_name());
            }
        }
        Err(error) => {
            for sub in &batch {
                settle_one(sub);
                sub.pending.fail(error.clone());
            }
        }
    }
}
