//! The dynamic micro-batcher: coalescing small requests into one solver
//! call.
//!
//! The paper's central measurement is that batched GEMM amortizes per-query
//! work — a `32 × f · f × n` multiply is far cheaper than 32 separate
//! `1 × f` passes over the item matrix (§II-B; LEMP makes the same
//! observation with bucket-batched probing). Single-user traffic squanders
//! that, so the batcher coalesces queued sub-requests that target the same
//! shard engine at the same `k` into one `query_subset` call:
//!
//! * **Adaptive flush (default).** A worker pops one sub-request, then
//!   extracts every queued match up to `max_batch`. Under light load the
//!   queue is empty and requests serve solo with zero added latency; under
//!   heavy load a backlog forms and batches fill — throughput rises exactly
//!   when it is needed.
//! * **Deadline flush (`batch_window > 0`).** After draining the backlog a
//!   worker holds the partial batch open, absorbing arrivals, then flushes.
//!   The hold-open window is anchored at **pop time** (when the worker
//!   starts assembling the batch), not at the leader's submission time: a
//!   leader that already sat in the queue for a full window — exactly the
//!   backlog situation where coalescing pays most — still gets a window's
//!   worth of arrivals. To keep queue delay from compounding unboundedly,
//!   the hold-open is capped so the leader's **total** queue latency
//!   (submission → flush) never exceeds [`QUEUE_LATENCY_CAP`] windows; a
//!   leader already past that cap flushes immediately with whatever the
//!   backlog drain produced.
//!
//! Coalescing is transparent: every solver's `query_subset` produces
//! per-user results that are independent of batch composition (the stress
//! suite asserts bit-identical results against sequential
//! [`Engine::execute`](crate::engine::Engine::execute) calls), and
//! exclusion-carrying sub-requests are never coalesced, because two
//! requests may exclude different items for the same user. Model epochs
//! are respected by construction: the batch key is the identity of the
//! shard engine (which pins one epoch), so sub-requests admitted before
//! and after a [`swap_model`](crate::engine::Engine::swap_model) can never
//! share a solver call.

use super::queue::{BoundedQueue, QueueItem};
use super::shard::{SubRequest, SubUsers};
use crate::engine::serve;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::Arc;
use std::time::{Duration, Instant};

/// Bound on a deadline-flush leader's total queue latency, in units of
/// `batch_window`: the hold-open never extends a leader's
/// submission-to-flush delay beyond this many windows. See the module docs
/// for the semantics.
pub const QUEUE_LATENCY_CAP: u32 = 4;

/// Flush policy for the micro-batcher.
#[derive(Debug, Clone, Copy)]
pub struct BatchPolicy {
    /// Whether coalescing is enabled at all.
    pub enabled: bool,
    /// Budget of one coalesced solver call, in units of item weight
    /// (users).
    pub max_batch: usize,
    /// Deadline-flush hold-open window; zero disables the hold-open.
    pub window: Duration,
}

/// Gathers the micro-batch led by `first`: drains queued matches, then
/// (with a deadline policy) holds the batch open for the window — anchored
/// at pop time, capped by the leader's total queue latency (module docs).
/// Generic over [`QueueItem`] so the model-check suite can drive the exact
/// coalescing protocol with toy items.
pub fn collect_batch<I: QueueItem>(
    queue: &BoundedQueue<I>,
    first: I,
    policy: &BatchPolicy,
) -> Vec<I> {
    let key = first.key();
    // `max_batch` budgets the coalesced solver call in *users*: a batch of
    // 32 single-user requests and a batch of four 8-user requests cost the
    // same, and a small request is never made to wait behind a coalesced
    // call bigger than the knob promises.
    let mut budget = policy.max_batch.saturating_sub(first.weight());
    let mut batch = vec![first];
    queue.extract_matching(key, budget, policy.max_batch, &mut batch);
    budget = policy
        .max_batch
        .saturating_sub(batch.iter().map(|s| s.weight()).sum());
    if budget > 0 && !policy.window.is_zero() {
        let now = Instant::now();
        let latency_cap = batch[0].submitted_at() + policy.window * QUEUE_LATENCY_CAP;
        let deadline = (now + policy.window).min(latency_cap);
        if deadline > now {
            queue.extract_until(
                key,
                policy.max_batch,
                policy.max_batch,
                deadline,
                &mut batch,
            );
        }
    }
    batch
}

/// Executes one batch (one or many coalesced sub-requests) on the shard
/// engine every sub-request in it is pinned to, scattering results back
/// into each pending response. Request-level completion metrics roll up
/// inside the pending itself, before any waiter wakes. `progress` counts
/// subs whose shard `completed` counter has been bumped — the worker's
/// panic handler uses it to settle the remainder so
/// `submitted == completed` holds even across backend panics.
pub(crate) fn execute_batch(batch: Vec<SubRequest>, progress: &AtomicUsize) {
    debug_assert!(!batch.is_empty());
    // The batch key guarantees one shard engine (hence one epoch) per
    // batch.
    debug_assert!(batch
        .iter()
        .all(|s| Arc::ptr_eq(&s.engine, &batch[0].engine)));
    let shard = Arc::clone(&batch[0].engine);
    debug_assert!(batch
        .iter()
        .all(|s| s.shard == shard.index && s.epoch == shard.epoch.id));
    let k = batch[0].k;
    let settle_one = |sub: &SubRequest| {
        shard.counters.add(&shard.counters.completed, 1);
        shard
            .counters
            .latency
            .record_ns(sub.submitted_at.elapsed().as_nanos() as u64);
        progress.fetch_add(1, Ordering::Relaxed);
    };

    let plan = match shard.plan(k) {
        Ok(plan) => plan,
        Err(error) => {
            for sub in &batch {
                settle_one(sub);
                sub.pending.fail(error.clone());
            }
            return;
        }
    };
    let model = plan.model();
    let solver = plan.solver();

    let started = Instant::now();
    let outcome = if batch.len() == 1 {
        // Solo path: ranges stay ranges, exclusions allowed.
        let request = batch[0].to_request();
        serve(model, solver, 1, &request, true, plan.epoch()).map(|r| r.results)
    } else {
        // Coalesced path: concatenate ids into one gathered batch. Repeats
        // across sub-requests are fine — the solver's dedup fans results
        // back out per occurrence.
        let mut users: Vec<usize> = Vec::with_capacity(batch.iter().map(|s| s.users.len()).sum());
        for sub in &batch {
            match &sub.users {
                SubUsers::Range { users: r, .. } => users.extend(r.clone()),
                SubUsers::Ids { users: ids, .. } => users.extend_from_slice(ids),
            }
        }
        let request = crate::engine::QueryRequest {
            k,
            users: crate::engine::UserSelection::Ids(users),
            exclude: None,
        };
        serve(model, solver, 1, &request, true, plan.epoch()).map(|r| r.results)
    };
    let busy_ns = started.elapsed().as_nanos() as u64;

    // Roll up shard counters before scattering so metrics never lag the
    // caller's wakeup.
    let total_users: usize = batch.iter().map(|s| s.users.len()).sum();
    shard.counters.add(&shard.counters.batches, 1);
    match plan.precision() {
        crate::precision::Precision::F32Rescore => {
            shard.counters.add(&shard.counters.f32_batches, 1);
        }
        crate::precision::Precision::I8Rescore => {
            shard.counters.add(&shard.counters.i8_batches, 1);
        }
        _ => {}
    }
    // Fold the solver's screen work into the shard's per-mode counters.
    // Under concurrency another worker's in-flight scan may drain here —
    // attribution is per-shard, and a shard's plan has one screen mode, so
    // the per-mode totals stay exact.
    if let Some(tally) = solver.take_screen_stats() {
        let (candidates, survivors) = match plan.precision() {
            crate::precision::Precision::I8Rescore => (
                &shard.counters.screen_candidates_i8,
                &shard.counters.screen_survivors_i8,
            ),
            _ => (
                &shard.counters.screen_candidates_f32,
                &shard.counters.screen_survivors_f32,
            ),
        };
        shard.counters.add(candidates, tally.screened);
        shard.counters.add(survivors, tally.rescored);
    }
    shard.counters.add(&shard.counters.busy_ns, busy_ns);
    shard
        .counters
        .add(&shard.counters.users_served, total_users as u64);
    if batch.len() > 1 {
        shard
            .counters
            .add(&shard.counters.coalesced, batch.len() as u64);
    }

    match outcome {
        Ok(mut results) => {
            debug_assert_eq!(results.len(), total_users);
            // Scatter back to front so each split_off is O(its own slice).
            for sub in batch.iter().rev() {
                let lists = results.split_off(results.len() - sub.users.len());
                // Count and time *before* completing: the last completion
                // wakes the waiter, and metrics must already be consistent
                // when it reads them.
                settle_one(sub);
                sub.pending
                    .complete(&sub.users, lists, plan.backend_name(), plan.precision());
            }
        }
        Err(error) => {
            for sub in &batch {
                settle_one(sub);
                sub.pending.fail(error.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::queue::SubmitQueue;
    use crate::serve::shard::{test_engines, Pending, ShardEngine, ShardRouter};
    use crate::sync::Arc;

    fn policy(window: Duration) -> BatchPolicy {
        BatchPolicy {
            enabled: true,
            max_batch: 8,
            window,
        }
    }

    fn sub_at(engine: &Arc<ShardEngine>, user: usize, submitted_at: Instant) -> SubRequest {
        SubRequest {
            shard: engine.index,
            epoch: engine.epoch.id,
            k: 2,
            users: SubUsers::Ids {
                users: vec![user],
                positions: vec![0],
            },
            exclude: None,
            pending: Arc::new(Pending::new(1, submitted_at)),
            engine: Arc::clone(engine),
            submitted_at,
        }
    }

    #[test]
    fn stale_leaders_still_hold_the_window_open_at_pop_time() {
        // The leader already waited one full window in the queue — the old
        // submission-anchored deadline would flush immediately and lose
        // exactly the coalescing a backlog makes valuable. The pop-anchored
        // window must still absorb an arrival landing shortly after pop.
        let engines = test_engines(&ShardRouter::new(8, 1));
        let window = Duration::from_millis(80);
        let queue = SubmitQueue::new(16);
        let leader = sub_at(&engines[0], 0, Instant::now() - window);
        crate::sync::thread::scope(|scope| {
            scope.spawn(|| {
                crate::sync::thread::sleep(Duration::from_millis(10));
                queue
                    .push_all(vec![sub_at(&engines[0], 1, Instant::now())], false)
                    .unwrap();
            });
            let batch = collect_batch(&queue, leader, &policy(window));
            assert_eq!(batch.len(), 2, "the late arrival must coalesce");
        });
    }

    #[test]
    fn the_queue_latency_cap_bounds_the_hold_open() {
        // A leader already past QUEUE_LATENCY_CAP windows of queue delay
        // flushes with whatever the drain produced instead of waiting.
        let engines = test_engines(&ShardRouter::new(8, 1));
        let window = Duration::from_millis(60);
        let queue = SubmitQueue::new(16);
        let ancient = sub_at(
            &engines[0],
            0,
            Instant::now() - window * (QUEUE_LATENCY_CAP + 1),
        );
        let started = Instant::now();
        let batch = collect_batch(&queue, ancient, &policy(window));
        assert_eq!(batch.len(), 1);
        assert!(
            started.elapsed() < window / 2,
            "capped leader must not hold the batch open: {:?}",
            started.elapsed()
        );
    }
}
