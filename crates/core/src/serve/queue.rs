//! The bounded submission queue feeding the worker pool.
//!
//! Many submitter threads push, the worker pool pops — with two properties
//! the runtime needs beyond a plain channel:
//!
//! * **All-or-nothing admission.** A request that straddles shards becomes
//!   several sub-requests; admitting half of them and bouncing the rest
//!   would leave a request permanently incomplete. `push_all` admits a
//!   request's whole sub-request set atomically or not at all.
//! * **Keyed extraction.** The micro-batcher coalesces queued sub-requests
//!   that target the same `(shard, k)`. Workers pull their first item FIFO,
//!   then extract every queued match, leaving other work in order for the
//!   rest of the pool.
//!
//! Capacity is the backpressure bound: `push_all` with `block = false`
//! refuses over-capacity submissions ([`MipsError::ServerOverloaded`]),
//! with `block = true` it waits for the pool to drain. The server builder
//! guarantees `capacity >= shard count`, so every request's sub-request
//! set fits; the empty-queue admission of an oversized set below is
//! defense in depth, not a supported mode (it would be starvable under
//! sustained small traffic).

use super::shard::SubRequest;
use crate::engine::MipsError;
use crate::sync::{Arc, Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The key micro-batchable work is coalesced under: one concrete
/// [`ShardEngine`](super::shard::ShardEngine) instance at one `k`.
///
/// Keying on the shard engine's identity (not its index) makes coalescing
/// epoch-safe by construction: a model swap installs a new topology with
/// new shard engines, so sub-requests admitted before and after a swap can
/// never share a batch — they would plan on different models. The raw
/// address is stable and unambiguous here because every candidate
/// sub-request holds the engine alive through its `Arc` while it is
/// queued, so two equal addresses always mean the same live engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct BatchKey {
    /// `Arc::as_ptr` of the shard engine, kept as a plain address token —
    /// never dereferenced, only compared.
    engine: usize,
    k: usize,
}

impl BatchKey {
    pub(crate) fn of(sub: &SubRequest) -> BatchKey {
        BatchKey {
            engine: Arc::as_ptr(&sub.engine) as usize,
            k: sub.k,
        }
    }
}

/// Work items the bounded queue can carry and the micro-batcher can
/// coalesce. `SubRequest` is the production item; the model-check suite
/// drives the same queue/batcher code with toy items, so the protocols
/// are checked without building engines.
pub trait QueueItem {
    /// Coalescing key: items with equal keys may share a batch.
    type Key: Copy + PartialEq;
    /// The key this item coalesces under.
    fn key(&self) -> Self::Key;
    /// The item's cost against the batch budget (users, for
    /// sub-requests).
    fn weight(&self) -> usize;
    /// Whether this item may join a coalesced batch at all.
    fn batchable(&self, max_batch: usize) -> bool;
    /// When the item was submitted; anchors the batcher's queue-latency
    /// cap.
    fn submitted_at(&self) -> Instant;
}

impl QueueItem for SubRequest {
    type Key = BatchKey;
    fn key(&self) -> BatchKey {
        BatchKey::of(self)
    }
    fn weight(&self) -> usize {
        self.users.len()
    }
    fn batchable(&self, max_batch: usize) -> bool {
        // The inherent method: no exclusions, and small enough to share.
        SubRequest::batchable(self, max_batch)
    }
    fn submitted_at(&self) -> Instant {
        self.submitted_at
    }
}

struct QueueState<I> {
    items: VecDeque<I>,
    closed: bool,
}

/// Bounded MPMC queue of keyed work items with atomic multi-item
/// admission and keyed extraction. [`SubmitQueue`] is the production
/// instantiation.
pub struct BoundedQueue<I: QueueItem> {
    state: Mutex<QueueState<I>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// The production queue: sub-requests keyed by `(shard engine, k)`.
pub(crate) type SubmitQueue = BoundedQueue<SubRequest>;

impl<I: QueueItem> BoundedQueue<I> {
    /// An empty queue admitting at most `capacity` queued items.
    pub fn new(capacity: usize) -> BoundedQueue<I> {
        assert!(capacity > 0, "BoundedQueue: capacity must be > 0");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> crate::sync::MutexGuard<'_, QueueState<I>> {
        self.state
            .lock()
            .unwrap_or_else(crate::sync::PoisonError::into_inner)
    }

    /// Queued items right now.
    #[cfg(any(test, mips_model_check))]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Admits `subs` atomically. With `block`, waits for space; without,
    /// returns [`MipsError::ServerOverloaded`] when the set does not fit.
    pub fn push_all(&self, subs: Vec<I>, block: bool) -> Result<(), MipsError> {
        let mut state = self.lock();
        loop {
            if state.closed {
                return Err(MipsError::ServerShutdown);
            }
            let fits = state.items.len() + subs.len() <= self.capacity
                || (state.items.is_empty() && subs.len() > self.capacity);
            if fits {
                state.items.extend(subs);
                drop(state);
                self.not_empty.notify_all();
                return Ok(());
            }
            if !block {
                return Err(MipsError::ServerOverloaded {
                    capacity: self.capacity,
                });
            }
            state = self
                .not_full
                .wait(state)
                .unwrap_or_else(crate::sync::PoisonError::into_inner);
        }
    }

    /// Blocks for the next item; `None` once the queue is closed and
    /// drained.
    pub fn pop(&self) -> Option<I> {
        let mut state = self.lock();
        loop {
            if let Some(sub) = state.items.pop_front() {
                drop(state);
                self.not_full.notify_all();
                return Some(sub);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(crate::sync::PoisonError::into_inner);
        }
    }

    /// Extracts queued sub-requests matching `key` (batchable ones only)
    /// whose users fit within `budget_users`, preserving the queue order of
    /// everything else. The budget bounds the *work* of the coalesced
    /// solver call — in users, not sub-requests — so `max_batch` means the
    /// same thing whether traffic is single-user or small-range.
    pub fn extract_matching(
        &self,
        key: I::Key,
        budget_users: usize,
        max_batch: usize,
        out: &mut Vec<I>,
    ) {
        if budget_users == 0 {
            return;
        }
        let mut state = self.lock();
        // Allocation-free pre-scan: under mixed load most of the backlog is
        // other shards' work (and the deadline batcher rescans every few
        // milliseconds), so the no-match case must not pay a queue rebuild.
        let fits = |sub: &I, budget: usize| {
            sub.key() == key && sub.batchable(max_batch) && sub.weight() <= budget
        };
        if !state.items.iter().any(|sub| fits(sub, budget_users)) {
            return;
        }
        let mut kept = VecDeque::with_capacity(state.items.len());
        let mut budget = budget_users;
        for sub in state.items.drain(..) {
            if fits(&sub, budget) {
                budget -= sub.weight();
                out.push(sub);
            } else {
                kept.push_back(sub);
            }
        }
        state.items = kept;
        drop(state);
        self.not_full.notify_all();
    }

    /// Waits until `deadline` for more `key`-matching arrivals, extracting
    /// them into `out` until the batch holds `target_users` weight or the
    /// window closes. Used by the deadline-flush micro-batcher.
    pub fn extract_until(
        &self,
        key: I::Key,
        target_users: usize,
        max_batch: usize,
        deadline: Instant,
        out: &mut Vec<I>,
    ) {
        let users_in = |out: &[I]| out.iter().map(|s| s.weight()).sum::<usize>();
        loop {
            if users_in(out) >= target_users {
                return;
            }
            self.extract_matching(key, target_users - users_in(out), max_batch, out);
            if users_in(out) >= target_users {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let state = self.lock();
            if state.closed {
                return;
            }
            // Wait for any arrival (or the window to close), then rescan.
            let (_state, timeout) = self
                .not_empty
                .wait_timeout(
                    state,
                    deadline.duration_since(now).min(Duration::from_millis(5)),
                )
                .unwrap_or_else(crate::sync::PoisonError::into_inner);
            let _ = timeout;
        }
    }

    /// Closes the queue: pending pops drain the backlog, then return
    /// `None`; new pushes fail with [`MipsError::ServerShutdown`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::shard::{test_engines, Pending, ShardEngine, ShardRouter, SubUsers};

    /// One shard-engine set shared by every sub-request of a test, so
    /// sub-requests with equal shard indexes get equal batch keys.
    fn engines() -> Vec<Arc<ShardEngine>> {
        test_engines(&ShardRouter::new(12, 3))
    }

    fn sub(engines: &[Arc<ShardEngine>], shard: usize, k: usize, user: usize) -> SubRequest {
        let now = Instant::now();
        SubRequest {
            shard,
            epoch: engines[shard].epoch.id,
            k,
            users: SubUsers::Ids {
                users: vec![user],
                positions: vec![0],
            },
            exclude: None,
            pending: Arc::new(Pending::new(1, now)),
            engine: Arc::clone(&engines[shard]),
            submitted_at: now,
        }
    }

    #[test]
    fn try_push_bounces_when_full_blocking_push_waits() {
        let e = engines();
        let q = SubmitQueue::new(2);
        q.push_all(vec![sub(&e, 0, 1, 0), sub(&e, 0, 1, 1)], false)
            .unwrap();
        assert!(matches!(
            q.push_all(vec![sub(&e, 0, 1, 2)], false),
            Err(MipsError::ServerOverloaded { capacity: 2 })
        ));
        // A consumer frees a slot; the blocked push completes.
        crate::sync::thread::scope(|scope| {
            let handle = scope.spawn(|| q.push_all(vec![sub(&e, 0, 1, 2)], true));
            crate::sync::thread::sleep(Duration::from_millis(20));
            assert!(q.pop().is_some());
            handle.join().unwrap().unwrap();
        });
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn oversized_requests_admit_only_into_an_empty_queue() {
        let e = engines();
        let q = SubmitQueue::new(2);
        let big = vec![sub(&e, 0, 1, 0), sub(&e, 1, 1, 1), sub(&e, 2, 1, 2)];
        q.push_all(big, false).unwrap();
        assert_eq!(q.len(), 3);
        assert!(q.push_all(vec![sub(&e, 0, 1, 3)], false).is_err());
    }

    #[test]
    fn extract_matching_pulls_only_the_key_and_keeps_order() {
        let e = engines();
        let q = SubmitQueue::new(16);
        q.push_all(
            vec![
                sub(&e, 0, 5, 0),
                sub(&e, 1, 5, 1),
                sub(&e, 0, 5, 2),
                sub(&e, 0, 3, 3),
            ],
            false,
        )
        .unwrap();
        let first = q.pop().unwrap();
        assert_eq!((first.shard, first.k), (0, 5));
        let key = BatchKey::of(&first);
        let mut batch = vec![first];
        q.extract_matching(key, 8, 32, &mut batch);
        assert_eq!(batch.len(), 2, "only shard-0 k=5 items coalesce");
        // The others remain FIFO.
        assert_eq!(q.pop().unwrap().shard, 1);
        assert_eq!(q.pop().unwrap().k, 3);
    }

    #[test]
    fn subs_on_different_shard_engine_sets_never_share_a_key() {
        // Two topologies (e.g. before and after a model swap) produce
        // distinct batch keys even at the same shard index and k, so the
        // micro-batcher cannot coalesce across epochs.
        let old_topology = engines();
        let new_topology = engines();
        let a = sub(&old_topology, 0, 5, 1);
        let b = sub(&new_topology, 0, 5, 2);
        assert_ne!(BatchKey::of(&a), BatchKey::of(&b));
        assert_eq!(BatchKey::of(&a), BatchKey::of(&sub(&old_topology, 0, 5, 3)));
    }

    #[test]
    fn closed_queue_drains_then_ends() {
        let e = engines();
        let q = SubmitQueue::new(4);
        q.push_all(vec![sub(&e, 0, 1, 0)], false).unwrap();
        q.close();
        assert!(matches!(
            q.push_all(vec![sub(&e, 0, 1, 1)], true),
            Err(MipsError::ServerShutdown)
        ));
        assert!(q.pop().is_some(), "backlog drains after close");
        assert!(q.pop().is_none());
    }

    #[test]
    fn extract_until_respects_the_deadline() {
        let e = engines();
        let q = SubmitQueue::new(4);
        let leader = sub(&e, 0, 2, 0);
        let key = BatchKey::of(&leader);
        let mut out = vec![leader];
        let deadline = Instant::now() + Duration::from_millis(15);
        q.extract_until(key, 4, 32, deadline, &mut out);
        assert_eq!(out.len(), 1, "nothing arrived inside the window");
        assert!(Instant::now() >= deadline);
    }
}
