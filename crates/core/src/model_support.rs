//! Model-check surface: the concurrency-protocol internals, exported for
//! the `model_check` test suite only.
//!
//! This module exists **only** under `--cfg mips_model_check` and is
//! `#[doc(hidden)]` — it is not API. The model suite drives the epoch
//! cache, the bounded queue, the micro-batcher, and the pending-response
//! protocol directly (with toy items where the production item would need
//! a real engine), so the protocols are explored exhaustively without
//! building models. Everything here is a plain re-export of the internal
//! items plus a few accessor functions for counter fields the tests
//! assert on.

pub use crate::engine::epoch::{get_or_build, ArcCell, CacheCell};
pub use crate::serve::batcher::{collect_batch, BatchPolicy, QUEUE_LATENCY_CAP};
pub use crate::serve::metrics::ServerCounters;
pub use crate::serve::queue::{BoundedQueue, QueueItem};
pub use crate::serve::shard::{Pending, SubUsers};
pub use mips_topk::TopKList;

use crate::sync::atomic::Ordering;

/// Requests the server-wide counters have rolled up as completed.
pub fn server_completed(counters: &ServerCounters) -> u64 {
    counters.completed.load(Ordering::Relaxed)
}

/// Requests the server-wide counters have rolled up as failed.
pub fn server_failed(counters: &ServerCounters) -> u64 {
    counters.failed.load(Ordering::Relaxed)
}

/// End-to-end latency samples the server-wide histogram has recorded.
pub fn server_latency_count(counters: &ServerCounters) -> u64 {
    counters.latency.snapshot().count
}
