//! The crate's single doorway to synchronization primitives.
//!
//! Every module in `mips-core` imports `Mutex`/`RwLock`/`Condvar`/
//! atomics/`thread` through this facade instead of `std::sync` /
//! `std::thread` directly (`mips-lint` enforces it). In a normal build
//! the facade is nothing but `pub use std::...` re-exports — zero
//! runtime cost, identical types. Under `--cfg mips_model_check`
//! (`RUSTFLAGS="--cfg mips_model_check"`) the lock, condvar, atomic,
//! and spawn/join types come from the vendored `loom` shim instead:
//! every operation becomes a yield point of a deterministic scheduler
//! that exhaustively explores interleavings, which is what the
//! `model_check` test suite runs under.
//!
//! Deliberately **always std**, in both cfgs:
//!
//! * [`Arc`]/`Weak` — refcount bumps are uninstrumented; epoch-lifetime
//!   suites observe refcounts through `Arc::strong_count`/`Weak`
//!   directly, which stay exact because the model serializes threads.
//! * [`OnceLock`] — used for process-wide lazy statics (kernel
//!   dispatch, shared empty maps) whose state intentionally outlives a
//!   single model execution.
//! * [`PoisonError`]/[`LockResult`] — the loom shim reuses the std
//!   error type, so `unwrap_or_else(PoisonError::into_inner)` call
//!   sites compile unchanged under both cfgs.
//! * [`Barrier`] and [`thread::scope`]/[`thread::sleep`]/
//!   [`thread::available_parallelism`] — used by the data-parallel scan
//!   path and unit tests only; scoped threads are outside the model
//!   (model suites drive the serve/epoch protocols, which don't use
//!   them).

#[cfg(not(mips_model_check))]
mod imp {
    pub use std::sync::{
        Arc, Barrier, Condvar, LockResult, Mutex, MutexGuard, OnceLock, PoisonError, RwLock,
        RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult, Weak,
    };

    /// Atomic types and memory orderings (std in normal builds).
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawn/join and scoped threads (std in normal builds).
    pub mod thread {
        pub use std::thread::{
            available_parallelism, scope, sleep, spawn, yield_now, Builder, JoinHandle, Scope,
            ScopedJoinHandle,
        };
    }
}

#[cfg(mips_model_check)]
mod imp {
    pub use loom::sync::{
        Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard, WaitTimeoutResult,
    };
    pub use std::sync::{Arc, Barrier, LockResult, OnceLock, PoisonError, Weak};

    /// Atomic types and memory orderings (loom-instrumented).
    pub mod atomic {
        pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    /// Thread spawn/join (loom-instrumented); scoped threads and
    /// timing remain std and are not modeled.
    pub mod thread {
        pub use loom::thread::{spawn, yield_now, Builder, JoinHandle};
        pub use std::thread::{available_parallelism, scope, sleep, Scope, ScopedJoinHandle};
    }
}

pub use imp::*;
