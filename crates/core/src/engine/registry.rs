//! The open backend registry.
//!
//! The seed design hard-coded every solver in a `match` inside
//! `Strategy::build`; adding a backend meant editing `mips-core`. The
//! registry inverts that: a backend is anything implementing
//! [`SolverFactory`], registered under a string key. The built-in solvers
//! ship as factories ([`BmmFactory`], [`MaximusFactory`], [`LempFactory`],
//! [`FexiproFactory`]), and downstream crates can register their own with
//! [`FnFactory`] or a custom type — the planner treats all of them alike.

use super::error::MipsError;
use crate::adapters::{FexiproSolver, LempSolver, SparseSolver};
use crate::bmm::BmmSolver;
use crate::maximus::{MaximusConfig, MaximusIndex};
use crate::optimus::cost::{AnalyticalBmmModel, AnalyticalSparseModel};
use crate::solver::MipsSolver;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Arc, Mutex};
use mips_data::{MfModel, ModelView};
use mips_fexipro::FexiproConfig;
use mips_lemp::LempConfig;
use mips_sparse::SparseConfig;
use std::collections::HashMap;

/// Builds solvers for one backend family.
///
/// Factories are cheap, immutable descriptions; index construction happens
/// in [`SolverFactory::build`] and is timed by the produced solver
/// (`MipsSolver::build_seconds`).
pub trait SolverFactory: Send + Sync {
    /// Stable registry key (`"bmm"`, `"maximus"`, `"lemp"`, …).
    fn key(&self) -> &str;

    /// Constructs a solver over `model`.
    fn build(&self, model: &Arc<MfModel>) -> Result<Box<dyn MipsSolver>, MipsError>;

    /// Constructs a solver over a contiguous user-range view of a model
    /// (shard-local index construction). The produced solver addresses
    /// users by **local** row (`0..view.num_users()`).
    ///
    /// The default materializes the view into a sub-model (one `memcpy` of
    /// the contiguous factor block) and delegates to
    /// [`SolverFactory::build`], so every existing factory is view-capable
    /// unchanged; factories whose solver can serve straight off the parent
    /// matrix override this to skip even that copy ([`BmmFactory`] does).
    fn build_view(&self, view: &ModelView) -> Result<Box<dyn MipsSolver>, MipsError> {
        self.build(&view.to_model())
    }

    /// Constructs the mixed-precision variant of this backend — scans
    /// screen in f32 with a conservative error envelope, survivors are
    /// rescored in f64, results stay bit-identical (see
    /// [`mips_topk::screen`]). `None` (the default) means the backend has
    /// no screen path: the engine then serves it f64-direct under every
    /// [`Precision`](crate::precision::Precision) setting.
    fn build_screen(
        &self,
        _model: &Arc<MfModel>,
    ) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        None
    }

    /// Shard-local [`SolverFactory::build_screen`] over a user-range view.
    /// The default materializes the view into a sub-model like
    /// [`SolverFactory::build_view`]; zero-copy factories override it.
    fn build_screen_view(
        &self,
        view: &ModelView,
    ) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        self.build_screen(&view.to_model())
    }

    /// Constructs the int8 screen variant of this backend — scans run
    /// exact integer dots over symmetric int8 codes with a quantization
    /// envelope, survivors are rescored in f64, results stay bit-identical
    /// (see [`mips_topk::screen_i8`]). `None` (the default) means the
    /// backend has no i8 path: the engine then serves it f64-direct under
    /// every [`Precision`](crate::precision::Precision) setting.
    fn build_screen_i8(
        &self,
        _model: &Arc<MfModel>,
    ) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        None
    }

    /// Shard-local [`SolverFactory::build_screen_i8`] over a user-range
    /// view; defaults to materializing the view like
    /// [`SolverFactory::build_view`], zero-copy factories override it.
    fn build_screen_i8_view(
        &self,
        view: &ModelView,
    ) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        self.build_screen_i8(&view.to_model())
    }
}

/// Factory for the brute-force blocked matrix multiply.
#[derive(Debug, Clone, Default)]
pub struct BmmFactory;

impl SolverFactory for BmmFactory {
    fn key(&self) -> &str {
        "bmm"
    }

    fn build(&self, model: &Arc<MfModel>) -> Result<Box<dyn MipsSolver>, MipsError> {
        Ok(Box::new(BmmSolver::build(Arc::clone(model))))
    }

    fn build_view(&self, view: &ModelView) -> Result<Box<dyn MipsSolver>, MipsError> {
        // Zero-copy: the solver reads the parent factor matrix through the
        // view's offset, no sub-model is materialized.
        Ok(Box::new(BmmSolver::build_view(view)))
    }

    fn build_screen(&self, model: &Arc<MfModel>) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        Some(Ok(Box::new(BmmSolver::build_screen(Arc::clone(model)))))
    }

    fn build_screen_view(
        &self,
        view: &ModelView,
    ) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        // Zero-copy like build_view; the f32 mirror is shared with the
        // parent model, so sibling shards reuse one rounding pass.
        Some(Ok(Box::new(BmmSolver::build_screen_view(view))))
    }

    fn build_screen_i8(
        &self,
        model: &Arc<MfModel>,
    ) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        Some(Ok(Box::new(BmmSolver::build_screen_i8(Arc::clone(model)))))
    }

    fn build_screen_i8_view(
        &self,
        view: &ModelView,
    ) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        // Zero-copy like build_view; the int8 mirror is shared with the
        // parent model, so sibling shards reuse one quantization pass.
        Some(Ok(Box::new(BmmSolver::build_screen_i8_view(view))))
    }
}

/// Factory for the MAXIMUS index with a fixed configuration.
#[derive(Debug, Clone, Default)]
pub struct MaximusFactory {
    /// Index parameters used for every build.
    pub config: MaximusConfig,
}

impl MaximusFactory {
    /// A factory with the given parameters.
    pub fn new(config: MaximusConfig) -> MaximusFactory {
        MaximusFactory { config }
    }
}

impl MaximusFactory {
    /// The config checks `MaximusIndex::build` would otherwise assert on,
    /// surfaced as typed errors (shared by the plain and screen builds).
    fn validate_config(&self) -> Result<(), MipsError> {
        for (value, name) in [
            (self.config.num_clusters, "num_clusters"),
            (self.config.kmeans_iters, "kmeans_iters"),
            (self.config.block_size, "block_size"),
        ] {
            if value == 0 {
                return Err(MipsError::BackendBuild {
                    key: "maximus".to_string(),
                    message: format!("MaximusConfig: {name} must be > 0"),
                });
            }
        }
        Ok(())
    }
}

impl SolverFactory for MaximusFactory {
    fn key(&self) -> &str {
        "maximus"
    }

    fn build(&self, model: &Arc<MfModel>) -> Result<Box<dyn MipsSolver>, MipsError> {
        self.validate_config()?;
        Ok(Box::new(MaximusIndex::build(
            Arc::clone(model),
            &self.config,
        )))
    }

    fn build_screen(&self, model: &Arc<MfModel>) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        Some(self.validate_config().map(|()| {
            Box::new(MaximusIndex::build_screen(Arc::clone(model), &self.config))
                as Box<dyn MipsSolver>
        }))
    }

    fn build_screen_i8(
        &self,
        model: &Arc<MfModel>,
    ) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        Some(self.validate_config().map(|()| {
            Box::new(MaximusIndex::build_screen_i8(
                Arc::clone(model),
                &self.config,
            )) as Box<dyn MipsSolver>
        }))
    }

    // Shard-local builds (the default `build_view`) keep `num_clusters`
    // as configured, so a view covering a fraction of the users gets
    // proportionally *finer* clustering — tighter θ_b, harder pruning on
    // norm-skewed catalogs, at the cost of some §III-D work-sharing on
    // flat ones. That diversity is deliberate: it gives `IndexScope::Auto`
    // a local candidate that is genuinely different from the global index,
    // and the per-shard OPTIMUS run decides from measurements which one a
    // shard keeps. (Scaling clusters down to the view's user fraction was
    // measured to flatten both the cost *and* the win to parity.)
}

/// Factory for the LEMP baseline with a fixed configuration.
#[derive(Debug, Clone, Default)]
pub struct LempFactory {
    /// Index parameters used for every build.
    pub config: LempConfig,
}

impl LempFactory {
    /// A factory with the given parameters.
    pub fn new(config: LempConfig) -> LempFactory {
        LempFactory { config }
    }
}

impl LempFactory {
    /// The config checks `LempIndex::build` would otherwise assert on,
    /// surfaced as typed errors (shared by the plain and screen builds).
    fn validate_config(&self) -> Result<(), MipsError> {
        if self.config.bucket_size == 0 {
            return Err(MipsError::BackendBuild {
                key: "lemp".to_string(),
                message: "LempConfig: bucket_size must be > 0".to_string(),
            });
        }
        if !(0.0..=1.0).contains(&self.config.checkpoint_fraction) {
            return Err(MipsError::BackendBuild {
                key: "lemp".to_string(),
                message: format!(
                    "LempConfig: checkpoint_fraction must be in [0, 1], got {}",
                    self.config.checkpoint_fraction
                ),
            });
        }
        Ok(())
    }
}

impl SolverFactory for LempFactory {
    fn key(&self) -> &str {
        "lemp"
    }

    fn build(&self, model: &Arc<MfModel>) -> Result<Box<dyn MipsSolver>, MipsError> {
        self.validate_config()?;
        Ok(Box::new(LempSolver::build(Arc::clone(model), &self.config)))
    }

    fn build_screen(&self, model: &Arc<MfModel>) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        Some(self.validate_config().map(|()| {
            Box::new(LempSolver::build_screen(Arc::clone(model), &self.config))
                as Box<dyn MipsSolver>
        }))
    }

    fn build_screen_i8(
        &self,
        model: &Arc<MfModel>,
    ) -> Option<Result<Box<dyn MipsSolver>, MipsError>> {
        Some(self.validate_config().map(|()| {
            Box::new(LempSolver::build_screen_i8(Arc::clone(model), &self.config))
                as Box<dyn MipsSolver>
        }))
    }
}

/// Factory for FEXIPRO; the key distinguishes the SI and SIR presets.
#[derive(Debug, Clone)]
pub struct FexiproFactory {
    key: &'static str,
    config: FexiproConfig,
}

impl FexiproFactory {
    /// SVD + integer pruning (the paper's FEXIPRO-SI).
    pub fn si() -> FexiproFactory {
        FexiproFactory {
            key: "fexipro-si",
            config: FexiproConfig::si(),
        }
    }

    /// All pruning stages (the paper's FEXIPRO-SIR).
    pub fn sir() -> FexiproFactory {
        FexiproFactory {
            key: "fexipro-sir",
            config: FexiproConfig::sir(),
        }
    }
}

impl SolverFactory for FexiproFactory {
    fn key(&self) -> &str {
        self.key
    }

    fn build(&self, model: &Arc<MfModel>) -> Result<Box<dyn MipsSolver>, MipsError> {
        Ok(Box::new(FexiproSolver::build(
            Arc::clone(model),
            &self.config,
        )))
    }
}

/// Factory for the sparse inverted-index backend with a fixed
/// configuration — the registry's first non-scan access pattern.
#[derive(Debug, Clone, Default)]
pub struct SparseFactory {
    /// Index parameters used for every build (pruning threshold, hybrid
    /// dense/sparse column split).
    pub config: SparseConfig,
}

impl SparseFactory {
    /// A factory with the given parameters.
    pub fn new(config: SparseConfig) -> SparseFactory {
        SparseFactory { config }
    }

    /// The config checks `InvertedIndex::build` would otherwise panic on,
    /// surfaced as typed errors.
    fn validate_config(&self) -> Result<(), MipsError> {
        self.config
            .validate()
            .map_err(|message| MipsError::BackendBuild {
                key: "sparse".to_string(),
                message: format!("SparseConfig: {message}"),
            })
    }
}

impl SolverFactory for SparseFactory {
    fn key(&self) -> &str {
        "sparse"
    }

    fn build(&self, model: &Arc<MfModel>) -> Result<Box<dyn MipsSolver>, MipsError> {
        self.validate_config()?;
        Ok(Box::new(SparseSolver::build(
            Arc::clone(model),
            &self.config,
        )))
    }
}

/// Adapts a closure into a [`SolverFactory`] — the quickest way to register
/// a custom backend.
pub struct FnFactory<F> {
    key: String,
    build: F,
}

impl<F> FnFactory<F>
where
    F: Fn(&Arc<MfModel>) -> Result<Box<dyn MipsSolver>, MipsError> + Send + Sync,
{
    /// A factory calling `build` under the given key.
    pub fn new(key: impl Into<String>, build: F) -> FnFactory<F> {
        FnFactory {
            key: key.into(),
            build,
        }
    }
}

impl<F> SolverFactory for FnFactory<F>
where
    F: Fn(&Arc<MfModel>) -> Result<Box<dyn MipsSolver>, MipsError> + Send + Sync,
{
    fn key(&self) -> &str {
        &self.key
    }

    fn build(&self, model: &Arc<MfModel>) -> Result<Box<dyn MipsSolver>, MipsError> {
        (self.build)(model)
    }
}

/// An ordered, key-unique set of backends.
///
/// Order matters: the planner samples candidates in registration order and
/// uses the first batch-capable backend as the timing reference for its
/// t-test, so conventionally BMM registers first.
///
/// The registry also owns the planner's **calibration cache**: the
/// analytical BMM cost model's sustained FLOP rate, measured once per SIMD
/// kernel and shared (through clones of the registry, and therefore across
/// model epochs and shards) by every plan that wants the §IV-A analytical
/// prior — see [`BackendRegistry::analytical_bmm`].
#[derive(Clone, Default)]
pub struct BackendRegistry {
    factories: Vec<Arc<dyn SolverFactory>>,
    /// Calibrated rate per `(kernel name, f32?)`. Behind an `Arc` so engine
    /// builders that clone the registry keep sharing one cache.
    calibration: Arc<Mutex<HashMap<(&'static str, bool), AnalyticalBmmModel>>>,
    /// How many real calibration measurements have run (tests assert the
    /// cache actually dedupes across epochs and shards).
    calibration_runs: Arc<AtomicU64>,
    /// Calibrated postings-walk rate per kernel name, cached like the BMM
    /// rate (its own cache and counter: sparse calibration only runs when a
    /// sparse backend is actually planned, and tests pin the BMM counter).
    sparse_calibration: Arc<Mutex<HashMap<&'static str, AnalyticalSparseModel>>>,
    /// Cache misses of [`BackendRegistry::analytical_sparse`].
    sparse_calibration_runs: Arc<AtomicU64>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> BackendRegistry {
        BackendRegistry::default()
    }

    /// The calibrated analytical BMM cost model for the **active** SIMD
    /// kernel, measuring on first use and caching the rate per kernel
    /// name.
    ///
    /// A rate calibrated under one kernel must never be reused under
    /// another (the module docs of [`crate::optimus::cost`]), so the cache
    /// key is the kernel name; within one kernel the rate is a host
    /// property, not a model property, so epochs and shards all reuse the
    /// single measurement instead of re-timing a `256³` GEMM on their
    /// first plan.
    pub fn analytical_bmm(&self) -> AnalyticalBmmModel {
        self.calibrated(false)
    }

    /// The calibrated FLOP rate of the **single-precision** screen
    /// kernels, cached like [`BackendRegistry::analytical_bmm`] — the
    /// planner's prior for the scan phase of the mixed-precision path.
    pub fn analytical_bmm_f32(&self) -> AnalyticalBmmModel {
        self.calibrated(true)
    }

    fn calibrated(&self, f32_rate: bool) -> AnalyticalBmmModel {
        let kernel = mips_linalg::simd::active().name();
        let mut cache = super::lock_recovering(&self.calibration);
        if let Some(model) = cache.get(&(kernel, f32_rate)) {
            return *model;
        }
        // Calibration is a few milliseconds; holding the lock dedupes
        // concurrent first callers onto one measurement.
        let model = if f32_rate {
            AnalyticalBmmModel::calibrate_f32()
        } else {
            AnalyticalBmmModel::calibrate()
        };
        self.calibration_runs.fetch_add(1, Ordering::Relaxed);
        cache.insert((kernel, f32_rate), model);
        model
    }

    /// How many calibration measurements [`BackendRegistry::analytical_bmm`]
    /// has actually run (cache misses).
    pub fn calibration_runs(&self) -> u64 {
        self.calibration_runs.load(Ordering::Relaxed)
    }

    /// The calibrated analytical cost model of the sparse inverted-index
    /// accumulation loop, cached per kernel name like
    /// [`BackendRegistry::analytical_bmm`].
    pub fn analytical_sparse(&self) -> AnalyticalSparseModel {
        let kernel = mips_linalg::simd::active().name();
        let mut cache = super::lock_recovering(&self.sparse_calibration);
        if let Some(model) = cache.get(kernel) {
            return *model;
        }
        let model = AnalyticalSparseModel::calibrate();
        self.sparse_calibration_runs.fetch_add(1, Ordering::Relaxed);
        cache.insert(kernel, model);
        model
    }

    /// Cache misses of [`BackendRegistry::analytical_sparse`].
    pub fn sparse_calibration_runs(&self) -> u64 {
        self.sparse_calibration_runs.load(Ordering::Relaxed)
    }

    /// The registry of all built-in backends with default parameters:
    /// `bmm`, `maximus`, `lemp`, `fexipro-si`, `fexipro-sir`, `sparse`.
    pub fn with_defaults() -> BackendRegistry {
        BackendRegistry::with_defaults_configured(SparseConfig::default())
    }

    /// [`BackendRegistry::with_defaults`] with the sparse backend's knobs
    /// taken from `sparse` — how `EngineOptions.sparse` reaches the default
    /// registration path.
    pub fn with_defaults_configured(sparse: SparseConfig) -> BackendRegistry {
        let mut registry = BackendRegistry::new();
        registry
            .register(Arc::new(BmmFactory))
            .and_then(|r| r.register(Arc::new(MaximusFactory::default())))
            .and_then(|r| r.register(Arc::new(LempFactory::default())))
            .and_then(|r| r.register(Arc::new(FexiproFactory::si())))
            .and_then(|r| r.register(Arc::new(FexiproFactory::sir())))
            .and_then(|r| r.register(Arc::new(SparseFactory::new(sparse))))
            .expect("default keys are unique");
        registry
    }

    /// Registers a backend; fails on a duplicate key.
    pub fn register(
        &mut self,
        factory: Arc<dyn SolverFactory>,
    ) -> Result<&mut BackendRegistry, MipsError> {
        if self.get(factory.key()).is_some() {
            return Err(MipsError::DuplicateBackend {
                key: factory.key().to_string(),
            });
        }
        self.factories.push(factory);
        Ok(self)
    }

    /// Looks a backend up by key.
    pub fn get(&self, key: &str) -> Option<&Arc<dyn SolverFactory>> {
        self.factories.iter().find(|f| f.key() == key)
    }

    /// Registered keys, in registration order.
    pub fn keys(&self) -> Vec<&str> {
        self.factories.iter().map(|f| f.key()).collect()
    }

    /// The factories, in registration order.
    pub fn factories(&self) -> &[Arc<dyn SolverFactory>] {
        &self.factories
    }

    /// Number of registered backends.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// `true` when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

impl std::fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("keys", &self.keys())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_data::synth::{synth_model, SynthConfig};

    fn model() -> Arc<MfModel> {
        Arc::new(synth_model(&SynthConfig {
            num_users: 12,
            num_items: 30,
            num_factors: 6,
            ..SynthConfig::default()
        }))
    }

    #[test]
    fn defaults_cover_all_builtins_in_order() {
        let registry = BackendRegistry::with_defaults();
        assert_eq!(
            registry.keys(),
            vec![
                "bmm",
                "maximus",
                "lemp",
                "fexipro-si",
                "fexipro-sir",
                "sparse"
            ]
        );
        let m = model();
        for factory in registry.factories() {
            let solver = factory.build(&m).expect("builtin builds");
            assert_eq!(solver.num_users(), 12);
            assert_eq!(solver.query_all(2).len(), 12);
        }
    }

    #[test]
    fn every_builtin_builds_over_a_view_identically_to_the_sliced_model() {
        let registry = BackendRegistry::with_defaults();
        let m = model();
        let view = ModelView::of_range(&m, 3..9);
        for factory in registry.factories() {
            let over_view = factory.build_view(&view).expect("view build");
            let over_model = factory.build(&view.to_model()).expect("model build");
            assert_eq!(over_view.num_users(), 6, "{}", factory.key());
            assert_eq!(
                over_view.query_all(3),
                over_model.query_all(3),
                "{} view build must match the materialized sub-model",
                factory.key()
            );
        }
    }

    #[test]
    fn screen_builds_cover_the_scan_backends_and_stay_bit_identical() {
        let registry = BackendRegistry::with_defaults();
        let m = model();
        for factory in registry.factories() {
            let has_screen = matches!(factory.key(), "bmm" | "maximus" | "lemp");
            match factory.build_screen(&m) {
                None => assert!(!has_screen, "{} lost its screen path", factory.key()),
                Some(built) => {
                    assert!(has_screen, "{} unexpectedly screens", factory.key());
                    let screened = built.expect("screen build");
                    assert_eq!(
                        screened.precision(),
                        crate::precision::Precision::F32Rescore,
                        "{}",
                        factory.key()
                    );
                    let plain = factory.build(&m).expect("plain build");
                    let want = plain.query_all(3);
                    let got = screened.query_all(3);
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.items, w.items, "{}", factory.key());
                        for (a, b) in g.scores.iter().zip(&w.scores) {
                            assert_eq!(a.to_bits(), b.to_bits(), "{}", factory.key());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn screen_i8_builds_cover_the_scan_backends_and_stay_bit_identical() {
        let registry = BackendRegistry::with_defaults();
        let m = model();
        for factory in registry.factories() {
            let has_i8 = matches!(factory.key(), "bmm" | "maximus" | "lemp");
            match factory.build_screen_i8(&m) {
                None => assert!(!has_i8, "{} lost its i8 path", factory.key()),
                Some(built) => {
                    assert!(has_i8, "{} unexpectedly screens in i8", factory.key());
                    let screened = built.expect("i8 screen build");
                    assert_eq!(
                        screened.precision(),
                        crate::precision::Precision::I8Rescore,
                        "{}",
                        factory.key()
                    );
                    let plain = factory.build(&m).expect("plain build");
                    let want = plain.query_all(3);
                    let got = screened.query_all(3);
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(g.items, w.items, "{}", factory.key());
                        for (a, b) in g.scores.iter().zip(&w.scores) {
                            assert_eq!(a.to_bits(), b.to_bits(), "{}", factory.key());
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn analytical_bmm_calibrates_once_per_kernel_and_shares_across_clones() {
        let registry = BackendRegistry::with_defaults();
        assert_eq!(registry.calibration_runs(), 0);
        let first = registry.analytical_bmm();
        assert_eq!(registry.calibration_runs(), 1);
        assert!(first.flops_per_second > 0.0);
        // Second call (and calls through a clone — the engine builder
        // clones the registry) reuse the measurement.
        let clone = registry.clone();
        let again = clone.analytical_bmm();
        assert_eq!(registry.calibration_runs(), 1);
        assert_eq!(clone.calibration_runs(), 1);
        assert_eq!(again.flops_per_second, first.flops_per_second);
        assert_eq!(again.kernel, first.kernel);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let mut registry = BackendRegistry::with_defaults();
        let err = registry.register(Arc::new(BmmFactory)).unwrap_err();
        assert_eq!(err, MipsError::DuplicateBackend { key: "bmm".into() });
    }

    #[test]
    fn fn_factory_registers_custom_backends() {
        let mut registry = BackendRegistry::new();
        registry
            .register(Arc::new(FnFactory::new(
                "custom-bmm",
                |m: &Arc<MfModel>| {
                    Ok(Box::new(crate::bmm::BmmSolver::build(Arc::clone(m)))
                        as Box<dyn MipsSolver>)
                },
            )))
            .unwrap();
        assert_eq!(registry.keys(), vec!["custom-bmm"]);
        let solver = registry.get("custom-bmm").unwrap().build(&model()).unwrap();
        assert_eq!(solver.name(), "Blocked MM");
    }
}
