//! The typed error surface of the serving engine.
//!
//! Every fallible engine entry point returns [`MipsError`] instead of
//! panicking: malformed requests from remote callers are an expected input
//! class for a serving system, not a programming error.

/// Everything that can go wrong assembling an engine or serving a request.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MipsError {
    /// `k` is zero or exceeds the item catalog.
    InvalidK {
        /// The requested `k`.
        k: usize,
        /// Items in the model's catalog.
        num_items: usize,
    },
    /// A requested user id does not exist in the model.
    UserOutOfRange {
        /// The first requested user id that is out of range.
        user: usize,
        /// Users in the model.
        num_users: usize,
    },
    /// An excluded item id does not exist in the model.
    ItemOutOfRange {
        /// The offending item id.
        item: u32,
        /// Items in the model's catalog.
        num_items: usize,
    },
    /// The request selects no users (empty id list or empty range).
    EmptyUserList,
    /// A vector query's payload is malformed (wrong dimensionality,
    /// non-finite values, or invalid sparse encoding).
    InvalidVector(String),
    /// The model has no users or no items.
    EmptyModel,
    /// No backend is registered under the requested key.
    UnknownBackend {
        /// The key that failed to resolve.
        key: String,
    },
    /// A backend with this key is already registered.
    DuplicateBackend {
        /// The colliding key.
        key: String,
    },
    /// The engine was built without any backends.
    NoBackends,
    /// A configuration value is out of its valid domain.
    InvalidConfig(String),
    /// A backend failed to construct its index.
    BackendBuild {
        /// The backend's registry key.
        key: String,
        /// Human-readable cause.
        message: String,
    },
    /// The serving runtime refused a submission because its bounded queue
    /// is full (backpressure; retry later or use the blocking `submit`).
    ServerOverloaded {
        /// The queue bound that was hit, in sub-requests.
        capacity: usize,
    },
    /// The serving runtime is shutting down and no longer accepts work.
    ServerShutdown,
    /// A worker thread panicked while serving this request (the runtime
    /// itself survives; other requests are unaffected).
    WorkerPanicked {
        /// The panic payload, when it carried a message.
        message: String,
    },
}

impl MipsError {
    /// The HTTP status code this error maps to on the wire — the canonical
    /// mapping used by the `mips-net` front end, kept next to the error
    /// type so new variants pick a status in the same change.
    ///
    /// The classes:
    ///
    /// * malformed requests (bad `k`, unknown users/items, empty
    ///   selections) → `400 Bad Request`;
    /// * a request naming a backend that is not registered → `404 Not
    ///   Found`;
    /// * backpressure ([`MipsError::ServerOverloaded`]) → `429 Too Many
    ///   Requests` (pair it with a `Retry-After` header);
    /// * shutdown/unavailable states → `503 Service Unavailable`;
    /// * everything else (construction failures, worker panics) → `500`.
    pub fn http_status(&self) -> u16 {
        match self {
            MipsError::InvalidK { .. }
            | MipsError::UserOutOfRange { .. }
            | MipsError::ItemOutOfRange { .. }
            | MipsError::EmptyUserList
            | MipsError::InvalidVector(_)
            | MipsError::InvalidConfig(_) => 400,
            MipsError::UnknownBackend { .. } => 404,
            MipsError::DuplicateBackend { .. } => 409,
            MipsError::ServerOverloaded { .. } => 429,
            MipsError::EmptyModel | MipsError::ServerShutdown => 503,
            MipsError::NoBackends
            | MipsError::BackendBuild { .. }
            | MipsError::WorkerPanicked { .. } => 500,
        }
    }

    /// `true` when [`MipsError::http_status`] is a 4xx — the request was at
    /// fault, and retrying it unchanged cannot succeed.
    pub fn is_client_error(&self) -> bool {
        (400..500).contains(&self.http_status())
    }
}

impl std::fmt::Display for MipsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MipsError::InvalidK { k, num_items } => {
                write!(f, "invalid k = {k}: must be in 1..={num_items}")
            }
            MipsError::UserOutOfRange { user, num_users } => {
                write!(
                    f,
                    "user id {user} out of range: model has {num_users} users"
                )
            }
            MipsError::ItemOutOfRange { item, num_items } => {
                write!(
                    f,
                    "excluded item id {item} out of range: model has {num_items} items"
                )
            }
            MipsError::EmptyUserList => write!(f, "request selects no users"),
            MipsError::InvalidVector(msg) => write!(f, "invalid query vector: {msg}"),
            MipsError::EmptyModel => write!(f, "model has no users or no items"),
            MipsError::UnknownBackend { key } => {
                write!(f, "no backend registered under key {key:?}")
            }
            MipsError::DuplicateBackend { key } => {
                write!(f, "backend key {key:?} registered twice")
            }
            MipsError::NoBackends => write!(f, "engine has no registered backends"),
            MipsError::InvalidConfig(msg) => write!(f, "invalid engine config: {msg}"),
            MipsError::BackendBuild { key, message } => {
                write!(f, "backend {key:?} failed to build: {message}")
            }
            MipsError::ServerOverloaded { capacity } => {
                write!(
                    f,
                    "server overloaded: submission queue at capacity ({capacity} sub-requests)"
                )
            }
            MipsError::ServerShutdown => write!(f, "server is shutting down"),
            MipsError::WorkerPanicked { message } => {
                write!(f, "serving worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for MipsError {}

#[cfg(test)]
mod tests {
    use super::MipsError;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(MipsError, &str)> = vec![
            (MipsError::InvalidK { k: 0, num_items: 9 }, "invalid k = 0"),
            (
                MipsError::UserOutOfRange {
                    user: 12,
                    num_users: 10,
                },
                "user id 12",
            ),
            (MipsError::EmptyUserList, "no users"),
            (MipsError::UnknownBackend { key: "nope".into() }, "\"nope\""),
            (MipsError::NoBackends, "no registered backends"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&MipsError::EmptyModel);
    }

    #[test]
    fn http_status_classes() {
        assert_eq!(
            MipsError::InvalidK { k: 0, num_items: 9 }.http_status(),
            400
        );
        assert_eq!(
            MipsError::UserOutOfRange {
                user: 9,
                num_users: 9
            }
            .http_status(),
            400
        );
        assert_eq!(MipsError::EmptyUserList.http_status(), 400);
        assert_eq!(
            MipsError::UnknownBackend { key: "x".into() }.http_status(),
            404
        );
        assert_eq!(
            MipsError::ServerOverloaded { capacity: 4 }.http_status(),
            429
        );
        assert_eq!(MipsError::ServerShutdown.http_status(), 503);
        assert_eq!(
            MipsError::WorkerPanicked { message: "".into() }.http_status(),
            500
        );
        assert!(MipsError::EmptyUserList.is_client_error());
        assert!(MipsError::ServerOverloaded { capacity: 4 }.is_client_error());
        assert!(!MipsError::ServerShutdown.is_client_error());
    }
}
