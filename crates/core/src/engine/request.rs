//! The request/response pair served by the engine.
//!
//! A [`QueryRequest`] describes one unit of serving work: how many items to
//! return, which users to serve (everyone, a contiguous range, or an
//! explicit id list), and optionally which items to withhold per user (the
//! recommender scenario: never re-recommend what a user already rated).

use super::error::MipsError;
use crate::sync::{Arc, OnceLock};
use mips_data::sparse::SparseVec;
use mips_data::MfModel;
use mips_topk::TopKList;
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Which users a request serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserSelection {
    /// Every user of the model, in user order.
    All,
    /// A contiguous user range, in order.
    Range(Range<usize>),
    /// An explicit id list; results come back in input order, and repeated
    /// ids are allowed (each occurrence gets its result).
    Ids(Vec<usize>),
}

/// Per-user sets of item ids to withhold from results.
///
/// In recommender serving these are the items a user has already rated:
/// the model scores them highly by construction, but surfacing them again
/// is useless. Exclusions are applied exactly — the engine widens `k`
/// internally so filtered users still receive their true top-k among the
/// remaining items.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExclusionSet {
    per_user: HashMap<usize, HashSet<u32>>,
}

/// Shared empty set so `for_user` can return a reference for absent users.
fn empty_items() -> &'static HashSet<u32> {
    static EMPTY: OnceLock<HashSet<u32>> = OnceLock::new();
    EMPTY.get_or_init(HashSet::new)
}

impl ExclusionSet {
    /// An empty exclusion set.
    pub fn new() -> ExclusionSet {
        ExclusionSet::default()
    }

    /// Builds from `(user, item)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (usize, u32)>) -> ExclusionSet {
        let mut set = ExclusionSet::new();
        for (user, item) in pairs {
            set.insert(user, item);
        }
        set
    }

    /// Withholds `item` from `user`'s results.
    pub fn insert(&mut self, user: usize, item: u32) {
        self.per_user.entry(user).or_default().insert(item);
    }

    /// The items withheld for `user` (empty when none).
    pub fn for_user(&self, user: usize) -> &HashSet<u32> {
        self.per_user.get(&user).unwrap_or_else(|| empty_items())
    }

    /// Number of exclusions for `user`.
    pub fn count_for(&self, user: usize) -> usize {
        self.for_user(user).len()
    }

    /// `true` when no user has any exclusions.
    pub fn is_empty(&self) -> bool {
        self.per_user.values().all(HashSet::is_empty)
    }

    /// Iterates all `(user, items)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &HashSet<u32>)> {
        self.per_user.iter().map(|(u, v)| (*u, v))
    }
}

/// One serving request.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Results per user; must be in `1..=num_items`.
    pub k: usize,
    /// The users to serve.
    pub users: UserSelection,
    /// Items to withhold per user, if any. Shared via [`Arc`] so a large
    /// set (every rated item of every user) is attached to each request
    /// without a deep copy; entries for users outside the selection are
    /// ignored, validation included.
    pub exclude: Option<Arc<ExclusionSet>>,
}

impl QueryRequest {
    /// Top-`k` for every user.
    pub fn top_k(k: usize) -> QueryRequest {
        QueryRequest {
            k,
            users: UserSelection::All,
            exclude: None,
        }
    }

    /// Restricts the request to a contiguous user range.
    pub fn users_range(mut self, range: Range<usize>) -> QueryRequest {
        self.users = UserSelection::Range(range);
        self
    }

    /// Restricts the request to an explicit user id list (results in input
    /// order).
    pub fn users(mut self, ids: impl Into<Vec<usize>>) -> QueryRequest {
        self.users = UserSelection::Ids(ids.into());
        self
    }

    /// Attaches an exclusion set (an owned set or a shared `Arc` — reuse
    /// the `Arc` across requests to avoid copying a large set).
    pub fn exclude(mut self, exclude: impl Into<Arc<ExclusionSet>>) -> QueryRequest {
        self.exclude = Some(exclude.into());
        self
    }

    /// Validates the request against a model, returning the first problem.
    pub fn validate(&self, model: &MfModel) -> Result<(), MipsError> {
        let (num_users, num_items) = (model.num_users(), model.num_items());
        if num_users == 0 || num_items == 0 {
            return Err(MipsError::EmptyModel);
        }
        if self.k == 0 || self.k > num_items {
            return Err(MipsError::InvalidK {
                k: self.k,
                num_items,
            });
        }
        match &self.users {
            UserSelection::All => {}
            UserSelection::Range(range) => {
                if range.start >= range.end {
                    return Err(MipsError::EmptyUserList);
                }
                if range.end > num_users {
                    return Err(MipsError::UserOutOfRange {
                        // The first requested id that is out of range.
                        user: range.start.max(num_users),
                        num_users,
                    });
                }
            }
            UserSelection::Ids(ids) => {
                if ids.is_empty() {
                    return Err(MipsError::EmptyUserList);
                }
                if let Some(&bad) = ids.iter().find(|&&u| u >= num_users) {
                    return Err(MipsError::UserOutOfRange {
                        user: bad,
                        num_users,
                    });
                }
            }
        }
        if let Some(exclude) = &self.exclude {
            // Only the selected users' exclusions matter (entries for other
            // users are ignored end to end). For `All` every user is
            // selected, so walking the map directly is the cheaper
            // equivalent.
            let check = |items: &HashSet<u32>| -> Result<(), MipsError> {
                match items.iter().find(|&&i| i as usize >= num_items) {
                    Some(&bad) => Err(MipsError::ItemOutOfRange {
                        item: bad,
                        num_items,
                    }),
                    None => Ok(()),
                }
            };
            match &self.users {
                UserSelection::All => {
                    for (_, items) in exclude.iter() {
                        check(items)?;
                    }
                }
                UserSelection::Range(range) => {
                    for u in range.clone() {
                        check(exclude.for_user(u))?;
                    }
                }
                UserSelection::Ids(ids) => {
                    for &u in ids {
                        check(exclude.for_user(u))?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of result lists this request will produce on `model`.
    pub fn result_len(&self, model: &MfModel) -> usize {
        match &self.users {
            UserSelection::All => model.num_users(),
            UserSelection::Range(range) => range.len(),
            UserSelection::Ids(ids) => ids.len(),
        }
    }

    /// Iterates the selected user ids in result order (no materialization
    /// for `All`/`Range` selections).
    pub(crate) fn selected_users_iter<'a>(
        &'a self,
        model: &MfModel,
    ) -> Box<dyn Iterator<Item = usize> + 'a> {
        match &self.users {
            UserSelection::All => Box::new(0..model.num_users()),
            UserSelection::Range(range) => Box::new(range.clone()),
            UserSelection::Ids(ids) => Box::new(ids.iter().copied()),
        }
    }
}

/// The payload of a [`VectorQueryRequest`]: an ad-hoc factor-space vector,
/// dense or sparse.
///
/// Both encodings are scored identically (a sparse payload is densified
/// before validation and serving, bit-for-bit equal to sending the dense
/// form), so the choice is purely a wire-size/convenience one.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryVector {
    /// A dense factor vector of length `num_factors`.
    Dense(Vec<f64>),
    /// A sparse vector over the factor dimensions (`dim` must equal
    /// `num_factors`).
    Sparse(SparseVec),
}

impl QueryVector {
    /// The vector's dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            QueryVector::Dense(v) => v.len(),
            QueryVector::Sparse(v) => v.dim(),
        }
    }

    /// The dense form of the vector (a copy for sparse payloads).
    pub fn densify(&self) -> Vec<f64> {
        match self {
            QueryVector::Dense(v) => v.clone(),
            QueryVector::Sparse(v) => v.densify(),
        }
    }
}

/// An ad-hoc retrieval request: score one query vector against the model's
/// item catalog and return the exact top-k. This is the point-lookup face
/// of the engine — no user id involved, so it serves "users" the model has
/// never seen (fresh embeddings, composed queries, sparse bag-of-words
/// vectors).
#[derive(Debug, Clone, PartialEq)]
pub struct VectorQueryRequest {
    /// Results to return; must be in `1..=num_items`.
    pub k: usize,
    /// The query vector; its dimensionality must equal the model's factor
    /// count.
    pub vector: QueryVector,
}

impl VectorQueryRequest {
    /// Top-`k` for a dense query vector.
    pub fn dense(k: usize, vector: impl Into<Vec<f64>>) -> VectorQueryRequest {
        VectorQueryRequest {
            k,
            vector: QueryVector::Dense(vector.into()),
        }
    }

    /// Top-`k` for a sparse query vector.
    pub fn sparse(k: usize, vector: SparseVec) -> VectorQueryRequest {
        VectorQueryRequest {
            k,
            vector: QueryVector::Sparse(vector),
        }
    }

    /// Validates the request against a model, returning the first problem.
    pub fn validate(&self, model: &MfModel) -> Result<(), MipsError> {
        let (num_items, num_factors) = (model.num_items(), model.num_factors());
        if model.num_users() == 0 || num_items == 0 {
            return Err(MipsError::EmptyModel);
        }
        if self.k == 0 || self.k > num_items {
            return Err(MipsError::InvalidK {
                k: self.k,
                num_items,
            });
        }
        if self.vector.dim() != num_factors {
            return Err(MipsError::InvalidVector(format!(
                "dimensionality {} does not match the model's {num_factors} factors",
                self.vector.dim()
            )));
        }
        // SparseVec enforces finite values at construction; dense payloads
        // arrive unchecked.
        if let QueryVector::Dense(v) = &self.vector {
            if let Some(pos) = v.iter().position(|x| !x.is_finite()) {
                return Err(MipsError::InvalidVector(format!(
                    "non-finite value at dimension {pos}"
                )));
            }
        }
        Ok(())
    }
}

/// The engine's answer to one [`QueryRequest`].
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// One top-k list per requested user, in request order.
    pub results: Vec<TopKList>,
    /// Display name of the backend that served the request.
    pub backend: String,
    /// The numeric path the serving solver ran: `f64` (direct) or
    /// `f32-rescore` (f32 screen + exact f64 rescore — see
    /// [`crate::precision::Precision`]). Results are bit-identical either
    /// way; this annotates how they were computed, never what they are.
    pub precision: crate::precision::Precision,
    /// `true` when the backend was chosen by a cached query plan rather
    /// than named explicitly.
    pub planned: bool,
    /// The model epoch the request was served from. Under
    /// [`swap_model`](super::Engine::swap_model) every request is served
    /// end to end on exactly one epoch — the one current when it entered
    /// the engine (or was admitted by the server) — and this field reports
    /// which.
    pub epoch: u64,
    /// Wall-clock seconds spent serving (excludes planning).
    pub serve_seconds: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mips_data::synth::{synth_model, SynthConfig};

    fn model() -> MfModel {
        synth_model(&SynthConfig {
            num_users: 10,
            num_items: 20,
            num_factors: 4,
            ..SynthConfig::default()
        })
    }

    #[test]
    fn validation_catches_each_malformed_shape() {
        let m = model();
        assert_eq!(
            QueryRequest::top_k(0).validate(&m),
            Err(MipsError::InvalidK {
                k: 0,
                num_items: 20
            })
        );
        assert_eq!(
            QueryRequest::top_k(21).validate(&m),
            Err(MipsError::InvalidK {
                k: 21,
                num_items: 20
            })
        );
        assert_eq!(
            QueryRequest::top_k(3).users(vec![0, 10]).validate(&m),
            Err(MipsError::UserOutOfRange {
                user: 10,
                num_users: 10
            })
        );
        assert_eq!(
            QueryRequest::top_k(3).users(Vec::new()).validate(&m),
            Err(MipsError::EmptyUserList)
        );
        assert_eq!(
            QueryRequest::top_k(3).users_range(4..4).validate(&m),
            Err(MipsError::EmptyUserList)
        );
        assert_eq!(
            QueryRequest::top_k(3).users_range(5..11).validate(&m),
            Err(MipsError::UserOutOfRange {
                user: 10,
                num_users: 10
            })
        );
        let excl = ExclusionSet::from_pairs([(0, 99u32)]);
        assert_eq!(
            QueryRequest::top_k(3).exclude(excl).validate(&m),
            Err(MipsError::ItemOutOfRange {
                item: 99,
                num_items: 20
            })
        );
        assert_eq!(QueryRequest::top_k(3).validate(&m), Ok(()));
        assert_eq!(QueryRequest::top_k(20).validate(&m), Ok(()));
    }

    #[test]
    fn exclusion_set_dedupes_and_reports_counts() {
        let mut e = ExclusionSet::new();
        e.insert(3, 7);
        e.insert(3, 7);
        e.insert(3, 9);
        assert!(e.for_user(3).contains(&7) && e.for_user(3).contains(&9));
        assert_eq!(e.count_for(3), 2);
        assert_eq!(e.count_for(4), 0);
        assert!(!e.is_empty());
        assert!(ExclusionSet::new().is_empty());
    }

    #[test]
    fn result_len_matches_selection() {
        let m = model();
        assert_eq!(QueryRequest::top_k(1).result_len(&m), 10);
        assert_eq!(QueryRequest::top_k(1).users_range(2..5).result_len(&m), 3);
        assert_eq!(
            QueryRequest::top_k(1).users(vec![1, 1, 2]).result_len(&m),
            3
        );
    }
}
