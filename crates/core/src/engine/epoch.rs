//! Epoch-versioned engine state: the mechanism behind hot model swap.
//!
//! Everything derived from a model — built solver indexes, cached
//! [`PreparedPlan`]s — lives inside one [`ModelEpoch`]. The engine holds the
//! current epoch behind an [`ArcCell`] and replaces the whole epoch
//! atomically on [`swap_model`](super::Engine::swap_model): a request
//! snapshots the epoch `Arc` once on entry and runs against that snapshot
//! end to end, so it can never observe a half-swapped mixture of old model
//! and new caches. Old epochs are reclaimed by reference counting — the
//! last in-flight request holding the snapshot drops it, which frees the
//! model, every built index, and every cached plan of that epoch.

use super::lock_recovering;
use super::plan::PreparedPlan;
use crate::solver::MipsSolver;
use crate::sync::{Arc, Mutex, PoisonError, RwLock};
use mips_data::MfModel;
use std::collections::HashMap;

/// One lazily-filled cache slot. The outer map lock is held only long
/// enough to fetch the cell; expensive work (index construction, planning)
/// happens **outside** any lock and is installed through
/// [`get_or_build`] — compare-and-swap semantics, not hold-the-lock-while-
/// building.
pub type CacheCell<T> = Arc<Mutex<Option<T>>>;

/// Returns the cached value of `cell`, or builds one and installs it.
///
/// The build runs outside the cell lock: a slow first-touch build (a
/// shard-local MAXIMUS over millions of users, a long OPTIMUS sampling
/// run) never convoys other first-touch builders behind a held mutex —
/// each racer builds concurrently, the first to finish installs, and a
/// loser discards its redundant value and adopts the installed one, so
/// every caller still observes a single canonical instance. The loser's
/// work is wasted only in the rare first-touch race, which is the price of
/// never serializing construction; steady state is a lock-free-in-spirit
/// read (one mutex acquisition, no contention).
pub fn get_or_build<T: Clone, E>(
    cell: &CacheCell<T>,
    build: impl FnOnce() -> Result<T, E>,
) -> Result<T, E> {
    if let Some(value) = lock_recovering(cell).as_ref() {
        return Ok(value.clone());
    }
    let built = build()?;
    let mut slot = lock_recovering(cell);
    Ok(slot.get_or_insert(built).clone())
}

/// A shard's identity inside one epoch: its contiguous user bounds. Two
/// servers (or two topologies of one server) with identical bounds share
/// the epoch's shard-local state, exactly like the global tier is shared
/// across callers.
pub(crate) type ShardKey = (usize, usize);

/// A keyed map of lazily-filled cache cells (one tier of an epoch's
/// derived state).
pub(crate) type CacheTier<K, T> = Mutex<HashMap<K, CacheCell<T>>>;

/// One model generation and every piece of state derived from it.
///
/// Epoch ids are assigned by the engine, strictly increasing, never reused;
/// `id` therefore identifies a model generation across the whole serving
/// stack (responses, metrics, the micro-batcher's coalescing key).
///
/// Derived state comes in two tiers, both epoch-scoped and reclaimed
/// together by refcount when the last in-flight request drops the epoch:
///
/// * the **global tier** (`solvers`, `plans`) — whole-model indexes and
///   per-`k` plans, shared by every shard under
///   [`IndexScope::Global`](super::IndexScope::Global);
/// * the **per-shard tier** (`shard_solvers`, `shard_plans`) — solvers
///   built over a user-range [`ModelView`](mips_data::ModelView) keyed by
///   `(shard_bounds, backend)`, and per-shard planning decisions keyed by
///   `(shard_bounds, k)` (with the scope's auto flag), used by
///   `PerShard`/`Auto` scopes. Keying by bounds rather than by shard index
///   means a swap that re-chunks the topology can never alias stale state,
///   and same-bounds topologies (including rebuilt ones) share it.
pub(crate) struct ModelEpoch {
    /// The strictly increasing generation number (the builder starts at 0).
    pub(crate) id: u64,
    /// The model this epoch serves.
    pub(crate) model: Arc<MfModel>,
    /// Built solvers, keyed by registry key — derived from `model`, so the
    /// cache lives and dies with the epoch.
    pub(crate) solvers: CacheTier<String, Arc<dyn MipsSolver>>,
    /// Cached planning decisions per `k` — likewise epoch-scoped, because a
    /// plan pins the model and solver it was sampled on.
    pub(crate) plans: CacheTier<usize, Arc<PreparedPlan>>,
    /// Shard-local solvers, keyed by `(shard bounds, backend key)`. The
    /// stored solver speaks global user ids (a
    /// [`ShardScopedSolver`](super::scope::ShardScopedSolver) over the
    /// view-built index).
    pub(crate) shard_solvers: CacheTier<(ShardKey, String), Arc<dyn MipsSolver>>,
    /// Shard-local plans, keyed by `(shard bounds, k, auto)` — the `auto`
    /// flag separates `PerShard` decisions from `Auto` ones so two servers
    /// with different scopes fronting one engine never alias plans.
    pub(crate) shard_plans: CacheTier<(ShardKey, usize, bool), Arc<PreparedPlan>>,
}

impl ModelEpoch {
    /// A fresh epoch with empty caches.
    pub(crate) fn new(id: u64, model: Arc<MfModel>) -> ModelEpoch {
        ModelEpoch {
            id,
            model,
            solvers: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
            shard_solvers: Mutex::new(HashMap::new()),
            shard_plans: Mutex::new(HashMap::new()),
        }
    }
}

/// A hand-rolled `arc_swap`-style cell: an `Arc<T>` slot with atomic
/// replacement, built on `std` only.
///
/// A truly lock-free pointer swap needs deferred reclamation (hazard
/// pointers or epoch GC) that `std` does not provide, so this cell uses an
/// `RwLock` whose critical sections are a single refcount bump: readers
/// clone the `Arc` under the read lock, writers replace it under the write
/// lock. Readers never block each other, and a writer (one per model swap)
/// holds the lock for nanoseconds — the cost model of `arc_swap`, minus
/// the unsafe code.
pub struct ArcCell<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> ArcCell<T> {
    /// A cell holding `value`.
    pub fn new(value: Arc<T>) -> ArcCell<T> {
        ArcCell {
            inner: RwLock::new(value),
        }
    }

    /// Snapshots the current value (cheap: one refcount bump).
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replaces the value with `replace(current)`, returning the
    /// newly installed `Arc`. The closure runs under the write lock, so
    /// read-modify-write updates (e.g. "next epoch id = current + 1") are
    /// race-free even with concurrent swappers.
    pub fn swap_with(&self, replace: impl FnOnce(&Arc<T>) -> Arc<T>) -> Arc<T> {
        let mut slot = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let next = replace(&slot);
        *slot = Arc::clone(&next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn load_returns_the_installed_value_and_swap_is_read_modify_write() {
        let cell = ArcCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        let installed = cell.swap_with(|old| Arc::new(**old + 1));
        assert_eq!(*installed, 2);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn concurrent_swaps_never_lose_an_increment() {
        let cell = Arc::new(ArcCell::new(Arc::new(0u64)));
        let max_seen = AtomicU64::new(0);
        crate::sync::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let max_seen = &max_seen;
                scope.spawn(move || {
                    for _ in 0..100 {
                        let v = cell.swap_with(|old| Arc::new(**old + 1));
                        max_seen.fetch_max(*v, Ordering::Relaxed);
                    }
                });
            }
        });
        // 400 swaps, each +1 under the write lock: no lost updates.
        assert_eq!(*cell.load(), 400);
        assert_eq!(max_seen.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn get_or_build_installs_first_winner_and_losers_adopt_it() {
        use crate::sync::Barrier;
        let cell: CacheCell<Arc<u64>> = CacheCell::default();
        let built = AtomicU64::new(0);
        let barrier = Barrier::new(4);
        let results: Vec<Arc<u64>> = crate::sync::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let cell = &cell;
                    let built = &built;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        get_or_build(cell, || {
                            built.fetch_add(1, Ordering::SeqCst);
                            Ok::<_, ()>(Arc::new(i as u64))
                        })
                        .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Racers may each have built (no convoy — that is the point), but
        // everyone ends up holding the single installed instance.
        assert!(built.load(Ordering::SeqCst) >= 1);
        for value in &results {
            assert!(Arc::ptr_eq(value, &results[0]), "all adopt the winner");
        }
        // Later callers hit the cache without building.
        let before = built.load(Ordering::SeqCst);
        let again = get_or_build(&cell, || Ok::<_, ()>(Arc::new(99))).unwrap();
        assert!(Arc::ptr_eq(&again, &results[0]));
        assert_eq!(built.load(Ordering::SeqCst), before);
    }

    #[test]
    fn get_or_build_errors_leave_the_cell_empty_for_retry() {
        let cell: CacheCell<u32> = CacheCell::default();
        assert_eq!(
            get_or_build(&cell, || Err::<u32, &str>("boom")),
            Err("boom")
        );
        assert_eq!(get_or_build(&cell, || Ok::<_, &str>(7)), Ok(7));
        assert_eq!(get_or_build(&cell, || Err::<u32, &str>("late")), Ok(7));
    }

    #[test]
    fn old_snapshots_stay_alive_until_their_last_holder_drops() {
        let cell = ArcCell::new(Arc::new(String::from("old")));
        let snapshot = cell.load();
        cell.swap_with(|_| Arc::new(String::from("new")));
        // The swap did not invalidate the in-flight snapshot...
        assert_eq!(*snapshot, "old");
        assert_eq!(*cell.load(), "new");
        // ...and dropping the snapshot releases the last reference.
        let weak = Arc::downgrade(&snapshot);
        drop(snapshot);
        assert!(weak.upgrade().is_none());
    }
}
