//! Epoch-versioned engine state: the mechanism behind hot model swap.
//!
//! Everything derived from a model — built solver indexes, cached
//! [`PreparedPlan`]s — lives inside one [`ModelEpoch`]. The engine holds the
//! current epoch behind an [`ArcCell`] and replaces the whole epoch
//! atomically on [`swap_model`](super::Engine::swap_model): a request
//! snapshots the epoch `Arc` once on entry and runs against that snapshot
//! end to end, so it can never observe a half-swapped mixture of old model
//! and new caches. Old epochs are reclaimed by reference counting — the
//! last in-flight request holding the snapshot drops it, which frees the
//! model, every built index, and every cached plan of that epoch.

use super::plan::PreparedPlan;
use crate::solver::MipsSolver;
use mips_data::MfModel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// One lazily-filled cache slot. The outer map lock is held only long
/// enough to fetch the cell; expensive work (index construction, planning)
/// happens under the cell's own lock, so a slow build for one key never
/// blocks requests that hit other keys — while concurrent requests for the
/// *same* key still wait for the single in-flight build instead of
/// duplicating it.
pub(crate) type CacheCell<T> = Arc<Mutex<Option<T>>>;

/// One model generation and every piece of state derived from it.
///
/// Epoch ids are assigned by the engine, strictly increasing, never reused;
/// `id` therefore identifies a model generation across the whole serving
/// stack (responses, metrics, the micro-batcher's coalescing key).
pub(crate) struct ModelEpoch {
    /// The strictly increasing generation number (the builder starts at 0).
    pub(crate) id: u64,
    /// The model this epoch serves.
    pub(crate) model: Arc<MfModel>,
    /// Built solvers, keyed by registry key — derived from `model`, so the
    /// cache lives and dies with the epoch.
    pub(crate) solvers: Mutex<HashMap<String, CacheCell<Arc<dyn MipsSolver>>>>,
    /// Cached planning decisions per `k` — likewise epoch-scoped, because a
    /// plan pins the model and solver it was sampled on.
    pub(crate) plans: Mutex<HashMap<usize, CacheCell<Arc<PreparedPlan>>>>,
}

impl ModelEpoch {
    /// A fresh epoch with empty caches.
    pub(crate) fn new(id: u64, model: Arc<MfModel>) -> ModelEpoch {
        ModelEpoch {
            id,
            model,
            solvers: Mutex::new(HashMap::new()),
            plans: Mutex::new(HashMap::new()),
        }
    }
}

/// A hand-rolled `arc_swap`-style cell: an `Arc<T>` slot with atomic
/// replacement, built on `std` only.
///
/// A truly lock-free pointer swap needs deferred reclamation (hazard
/// pointers or epoch GC) that `std` does not provide, so this cell uses an
/// `RwLock` whose critical sections are a single refcount bump: readers
/// clone the `Arc` under the read lock, writers replace it under the write
/// lock. Readers never block each other, and a writer (one per model swap)
/// holds the lock for nanoseconds — the cost model of `arc_swap`, minus
/// the unsafe code.
pub(crate) struct ArcCell<T> {
    inner: RwLock<Arc<T>>,
}

impl<T> ArcCell<T> {
    /// A cell holding `value`.
    pub(crate) fn new(value: Arc<T>) -> ArcCell<T> {
        ArcCell {
            inner: RwLock::new(value),
        }
    }

    /// Snapshots the current value (cheap: one refcount bump).
    pub(crate) fn load(&self) -> Arc<T> {
        Arc::clone(&self.inner.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Atomically replaces the value with `replace(current)`, returning the
    /// newly installed `Arc`. The closure runs under the write lock, so
    /// read-modify-write updates (e.g. "next epoch id = current + 1") are
    /// race-free even with concurrent swappers.
    pub(crate) fn swap_with(&self, replace: impl FnOnce(&Arc<T>) -> Arc<T>) -> Arc<T> {
        let mut slot = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        let next = replace(&slot);
        *slot = Arc::clone(&next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn load_returns_the_installed_value_and_swap_is_read_modify_write() {
        let cell = ArcCell::new(Arc::new(1u64));
        assert_eq!(*cell.load(), 1);
        let installed = cell.swap_with(|old| Arc::new(**old + 1));
        assert_eq!(*installed, 2);
        assert_eq!(*cell.load(), 2);
    }

    #[test]
    fn concurrent_swaps_never_lose_an_increment() {
        let cell = Arc::new(ArcCell::new(Arc::new(0u64)));
        let max_seen = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                let max_seen = &max_seen;
                scope.spawn(move || {
                    for _ in 0..100 {
                        let v = cell.swap_with(|old| Arc::new(**old + 1));
                        max_seen.fetch_max(*v, Ordering::Relaxed);
                    }
                });
            }
        });
        // 400 swaps, each +1 under the write lock: no lost updates.
        assert_eq!(*cell.load(), 400);
        assert_eq!(max_seen.load(Ordering::Relaxed), 400);
    }

    #[test]
    fn old_snapshots_stay_alive_until_their_last_holder_drops() {
        let cell = ArcCell::new(Arc::new(String::from("old")));
        let snapshot = cell.load();
        cell.swap_with(|_| Arc::new(String::from("new")));
        // The swap did not invalidate the in-flight snapshot...
        assert_eq!(*snapshot, "old");
        assert_eq!(*cell.load(), "new");
        // ...and dropping the snapshot releases the last reference.
        let weak = Arc::downgrade(&snapshot);
        drop(snapshot);
        assert!(weak.upgrade().is_none());
    }
}
