//! Prepared query plans: OPTIMUS as the engine's query planner.
//!
//! Planning (building candidate backends and timing them on a user sample)
//! is expensive relative to one request, so the engine runs it once per
//! `k` and caches the decision in a [`PreparedPlan`]. Subsequent requests
//! through the plan — or through [`super::Engine::execute`], which caches
//! plans internally — reuse the winning backend without re-sampling.

use super::error::MipsError;
use super::request::{QueryRequest, QueryResponse};
use crate::optimus::StrategyEstimate;
use crate::precision::Precision;
use crate::solver::MipsSolver;
use crate::sync::Arc;
use mips_data::MfModel;
use std::ops::Range;

/// A cached planning decision: the winning backend plus the evidence the
/// planner used to pick it.
///
/// A plan is either **global** (sampled over the whole model, the winner
/// serves any user) or **shard-scoped** ([`PreparedPlan::shard_users`] is
/// set): sampled over one contiguous user range, its winner serves exactly
/// that range — in global user ids — and may be a shard-local index built
/// over a [`ModelView`](mips_data::ModelView) of the range.
pub struct PreparedPlan {
    pub(super) model: Arc<MfModel>,
    pub(super) winner: Arc<dyn MipsSolver>,
    pub(super) backend_key: String,
    pub(super) planned_k: usize,
    pub(super) threads: usize,
    /// The model epoch this plan was sampled on. The plan pins that
    /// epoch's model and solver, so it keeps serving bit-identically after
    /// an [`Engine::swap_model`](super::Engine::swap_model) — new plans are
    /// prepared lazily on the new epoch.
    pub(super) epoch: u64,
    /// Per-candidate estimates, in registry order; empty when only one
    /// backend was registered and no sampling was needed.
    pub(super) estimates: Vec<StrategyEstimate>,
    pub(super) sample_size: usize,
    pub(super) decision_seconds: f64,
    /// The contiguous user range the plan was sampled for, when the plan
    /// is shard-scoped; `None` for whole-model plans.
    pub(super) shard_users: Option<Range<usize>>,
    /// Whether the winning solver is a shard-local index (built over the
    /// shard's view) rather than a shared global one. Always `false` for
    /// global plans; under `IndexScope::Auto` this records the per-shard
    /// decision.
    pub(super) local_index: bool,
    /// The §IV-A analytical prior: predicted seconds for the BMM multiply
    /// stage over the plan's users, from the registry's calibrated FLOP
    /// rate. `0.0` when planning skipped sampling (single candidate).
    pub(super) analytical_bmm_seconds: f64,
    /// The analytical prior for the f32 screen phase of the
    /// mixed-precision path (calibrated single-precision FLOP rate over
    /// the plan's users). `0.0` whenever no screen candidate competed — in
    /// particular always `0.0` under [`Precision::F64`] engines.
    pub(super) analytical_screen_seconds: f64,
    /// The numeric mode the winning solver actually serves through. Under
    /// [`Precision::Auto`] this records the planner's per-plan decision;
    /// under a forced mode it records the effective value (a backend
    /// without a screen path reports [`Precision::F64`] even when
    /// `F32Rescore` was requested).
    pub(super) precision: Precision,
    /// The analytical prior for the sparse inverted-index accumulation
    /// stage: predicted seconds for serving every user the plan covers,
    /// from the calibrated postings-walk rate scaled by sampled nnz/density
    /// statistics. `0.0` when no sparse candidate competed.
    pub(super) analytical_sparse_seconds: f64,
}

impl PreparedPlan {
    /// Registry key of the backend the planner chose.
    pub fn backend_key(&self) -> &str {
        &self.backend_key
    }

    /// Display name of the chosen backend's solver.
    pub fn backend_name(&self) -> &str {
        self.winner.name()
    }

    /// The `k` the plan was sampled at. Requests with other `k` values are
    /// still served (the decision generalizes), but the estimates below
    /// were measured at this `k`.
    pub fn planned_k(&self) -> usize {
        self.planned_k
    }

    /// The planner's per-candidate timing estimates (empty when the
    /// registry held a single backend and sampling was skipped).
    pub fn estimates(&self) -> &[StrategyEstimate] {
        &self.estimates
    }

    /// Users sampled to reach the decision (0 when sampling was skipped).
    pub fn sample_size(&self) -> usize {
        self.sample_size
    }

    /// The model epoch the plan was prepared on (and serves from).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Wall-clock seconds the planning phase took.
    pub fn decision_seconds(&self) -> f64 {
        self.decision_seconds
    }

    /// The contiguous user range a shard-scoped plan covers (`None` for
    /// whole-model plans).
    pub fn shard_users(&self) -> Option<Range<usize>> {
        self.shard_users.clone()
    }

    /// `true` when the winning solver is a shard-local index built over
    /// the shard's user view (as opposed to the shared global solver).
    pub fn uses_local_index(&self) -> bool {
        self.local_index
    }

    /// The analytical BMM prior recorded at planning time: predicted
    /// multiply-stage seconds for serving every user the plan covers, from
    /// the registry's calibrated (per-kernel, cached) FLOP rate. `0.0`
    /// when planning skipped sampling.
    pub fn analytical_bmm_seconds(&self) -> f64 {
        self.analytical_bmm_seconds
    }

    /// The analytical prior for the f32 screen phase, when a
    /// mixed-precision candidate competed in this plan (`0.0` otherwise).
    pub fn analytical_screen_seconds(&self) -> f64 {
        self.analytical_screen_seconds
    }

    /// The analytical prior for the sparse inverted-index accumulation
    /// stage, when a sparse candidate competed in this plan (`0.0`
    /// otherwise): calibrated postings-walk rate × expected touched
    /// postings from sampled nnz/density statistics.
    pub fn analytical_sparse_seconds(&self) -> f64 {
        self.analytical_sparse_seconds
    }

    /// The numeric mode the plan's winner serves through — the effective
    /// (per-plan, under `Auto`) precision decision. Results are
    /// bit-identical across modes; this is a performance annotation.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// The chosen backend's solver, for direct (legacy-style) access.
    pub fn solver(&self) -> &dyn MipsSolver {
        self.winner.as_ref()
    }

    /// The model the plan serves (shared with the engine that prepared it).
    pub(crate) fn model(&self) -> &Arc<MfModel> {
        &self.model
    }

    /// Serves one request with the cached winning backend — no re-planning,
    /// no re-sampling.
    pub fn execute(&self, request: &QueryRequest) -> Result<QueryResponse, MipsError> {
        request.validate(&self.model)?;
        self.execute_prevalidated(request)
    }

    /// [`PreparedPlan::execute`] for callers that already validated the
    /// request against this plan's model (avoids a second validation scan).
    pub(super) fn execute_prevalidated(
        &self,
        request: &QueryRequest,
    ) -> Result<QueryResponse, MipsError> {
        super::serve(
            &self.model,
            self.winner.as_ref(),
            self.threads,
            request,
            true,
            self.epoch,
        )
    }
}

impl std::fmt::Debug for PreparedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedPlan")
            .field("backend_key", &self.backend_key)
            .field("planned_k", &self.planned_k)
            .field("epoch", &self.epoch)
            .field("sample_size", &self.sample_size)
            .field("decision_seconds", &self.decision_seconds)
            .field("shard_users", &self.shard_users)
            .field("local_index", &self.local_index)
            .field("precision", &self.precision)
            .finish()
    }
}
