//! Index scope: whether derived state (solver indexes, plans) is built
//! over the whole model or per user shard.
//!
//! The paper's thesis is that the index-vs-BMM decision depends on the
//! shape of the data — and the serving runtime's shards *are*
//! differently-shaped data: contiguous user slices with their own norm
//! distributions and cluster structure. [`IndexScope`] selects the
//! granularity at which that decision is made:
//!
//! * [`IndexScope::Global`] — one solver set and one plan per `k` for the
//!   whole model, shared by every shard (the pre-existing behaviour).
//! * [`IndexScope::PerShard`] — every shard builds its own solver set over
//!   a [`ModelView`](mips_data::ModelView) of its user range
//!   (shard-clustered MAXIMUS, shard-scoped LEMP/FEXIPRO, zero-copy BMM)
//!   and runs OPTIMUS over those candidates, sampled from the shard's own
//!   users.
//! * [`IndexScope::Auto`] — per-shard OPTIMUS picks shard by shard: the
//!   globally planned winner competes against the shard-local candidates
//!   on the shard's user sample, so a shard only goes local when its slice
//!   actually plans differently.
//!
//! Whatever the scope, results are bit-identical to the global engine:
//! every solver is exact, every built-in backend's shard-local build
//! returns bit-identical lists to its global build for the same users, and
//! the stress suite's comparison mode proves it on the serve corpus.

use crate::solver::MipsSolver;
use mips_topk::TopKList;
use std::ops::Range;

/// Granularity of derived-state construction for the serving runtime:
/// whether solver indexes and plans are built once over the whole model,
/// per user shard, or chosen per shard by OPTIMUS (see the field docs and
/// the serving runtime's `ServerBuilder::index_scope`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexScope {
    /// One global solver set and plan cache shared by all shards.
    #[default]
    Global,
    /// Shard-local solvers and plans, built over each shard's user range.
    PerShard,
    /// Per-shard OPTIMUS chooses between the global plan's winner and the
    /// shard-local candidates, shard by shard.
    Auto,
}

impl IndexScope {
    /// Stable lower-case label (metrics, bench digests).
    pub fn as_str(&self) -> &'static str {
        match self {
            IndexScope::Global => "global",
            IndexScope::PerShard => "per-shard",
            IndexScope::Auto => "auto",
        }
    }

    /// `true` when the scope can build shard-local state.
    pub(crate) fn builds_local(&self) -> bool {
        !matches!(self, IndexScope::Global)
    }
}

impl std::fmt::Display for IndexScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Construction work performed while resolving one shard plan: how many
/// shard-local indexes were built by this call and the wall-clock spent
/// building them. Cache hits contribute nothing; the serving runtime rolls
/// these into its per-shard metrics.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardBuildStats {
    /// Shard-local solver builds performed.
    pub(crate) builds: u64,
    /// Nanoseconds spent inside those builds.
    pub(crate) build_ns: u64,
}

/// Presents a view-built (local-id) solver in the model's **global** user
/// id space: queries offset into the view, so the whole serving stack —
/// requests, exclusion sets, routing, deduplication — keeps speaking
/// global ids and only this boundary translates.
pub(crate) struct ShardScopedSolver {
    inner: Box<dyn MipsSolver>,
    /// First global user id the view covers.
    base: usize,
}

impl ShardScopedSolver {
    /// Wraps `inner` (serving local ids `0..inner.num_users()`) as the
    /// global range starting at `base`.
    pub(crate) fn new(inner: Box<dyn MipsSolver>, base: usize) -> ShardScopedSolver {
        ShardScopedSolver { inner, base }
    }

    fn to_local(&self, user: usize) -> usize {
        assert!(
            user >= self.base && user < self.base + self.inner.num_users(),
            "user {user} outside shard range {}..{}",
            self.base,
            self.base + self.inner.num_users()
        );
        user - self.base
    }
}

impl MipsSolver for ShardScopedSolver {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn build_seconds(&self) -> f64 {
        self.inner.build_seconds()
    }

    fn batches_users(&self) -> bool {
        self.inner.batches_users()
    }

    /// One past the largest servable **global** user id (ids below the
    /// shard base are out of range; `query_*` assert both ends).
    fn num_users(&self) -> usize {
        self.base + self.inner.num_users()
    }

    fn query_range(&self, k: usize, users: Range<usize>) -> Vec<TopKList> {
        if users.is_empty() {
            return Vec::new();
        }
        let start = self.to_local(users.start);
        let end = start + users.len();
        self.inner.query_range(k, start..end)
    }

    fn query_subset(&self, k: usize, users: &[usize]) -> Vec<TopKList> {
        let local: Vec<usize> = users.iter().map(|&u| self.to_local(u)).collect();
        self.inner.query_subset(k, &local)
    }

    fn precision(&self) -> crate::precision::Precision {
        self.inner.precision()
    }

    fn take_screen_stats(&self) -> Option<crate::solver::ScreenTally> {
        self.inner.take_screen_stats()
    }

    fn query_all(&self, _k: usize) -> Vec<TopKList> {
        // No coherent meaning exists: every other MipsSolver returns one
        // list per user id in 0..num_users(), but ids below the shard base
        // are not servable here. The serving runtime never routes an `All`
        // selection to a shard plan (the router splits it into ranges
        // first), so reaching this is a wiring bug — fail loudly instead
        // of silently misattributing results.
        unreachable!(
            "query_all on a shard-scoped solver (range {}..{}): \
             address the shard through query_range/query_subset",
            self.base,
            self.base + self.inner.num_users()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bmm::BmmSolver;
    use crate::sync::Arc;
    use mips_data::synth::{synth_model, SynthConfig};
    use mips_data::ModelView;

    #[test]
    fn scoped_solver_translates_global_ids_onto_the_view() {
        let model = Arc::new(synth_model(&SynthConfig {
            num_users: 30,
            num_items: 40,
            num_factors: 6,
            ..SynthConfig::default()
        }));
        let global = BmmSolver::build(Arc::clone(&model));
        let view = ModelView::of_range(&model, 10..22);
        let scoped = ShardScopedSolver::new(
            Box::new(BmmSolver::build_view(&view)),
            view.user_range().start,
        );
        assert_eq!(scoped.num_users(), 22);
        assert_eq!(scoped.name(), "Blocked MM");
        assert!(scoped.batches_users());
        assert_eq!(scoped.query_range(3, 10..22), global.query_range(3, 10..22));
        assert_eq!(scoped.query_range(3, 15..15), Vec::new());
        assert_eq!(
            scoped.query_subset(2, &[21, 10, 21]),
            global.query_subset(2, &[21, 10, 21])
        );
    }

    #[test]
    #[should_panic(expected = "outside shard range")]
    fn ids_below_the_shard_base_are_rejected() {
        let model = Arc::new(synth_model(&SynthConfig {
            num_users: 20,
            num_items: 10,
            num_factors: 4,
            ..SynthConfig::default()
        }));
        let view = ModelView::of_range(&model, 8..16);
        let scoped = ShardScopedSolver::new(Box::new(BmmSolver::build_view(&view)), 8);
        let _ = scoped.query_subset(1, &[7]);
    }

    #[test]
    fn scope_labels_are_stable() {
        assert_eq!(IndexScope::Global.as_str(), "global");
        assert_eq!(IndexScope::PerShard.as_str(), "per-shard");
        assert_eq!(IndexScope::Auto.as_str(), "auto");
        assert_eq!(IndexScope::default(), IndexScope::Global);
        assert!(!IndexScope::Global.builds_local());
        assert!(IndexScope::PerShard.builds_local());
        assert!(IndexScope::Auto.builds_local());
        assert_eq!(format!("{}", IndexScope::Auto), "auto");
    }
}
